"""Remote quickstart: the networked CryptDB proxy end to end.

Boots a real `repro.server` on an ephemeral loopback port (in a background
thread -- in production you'd run ``python -m repro.server`` as its own
process), then connects to it with ``repro.connect(url=...)`` and runs the
same workload as the in-process quickstart.  Everything on the wire is
protected by the ECDH-negotiated AEAD channel; everything in the DBMS is
onion-encrypted.

Run with::

    PYTHONPATH=src python examples/remote_quickstart.py
"""

from __future__ import annotations

import repro
from repro.server import LoopbackServer

AUTH_KEY = b"demo-pre-shared-key"


def main() -> None:
    # -- the server side -------------------------------------------------
    # paillier_bits=512 keeps the demo snappy; the default is 1024.
    server = LoopbackServer(auth_key=AUTH_KEY, backend="memory", paillier_bits=512)
    print(f"repro.server listening on {server.url}")

    # -- the application side --------------------------------------------
    conn = repro.connect(url=server.url, auth_key=AUTH_KEY)
    cur = conn.cursor()

    cur.execute("CREATE TABLE emp (id int, name varchar(50), salary int)")
    cur.executemany(
        "INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)",
        [(1, "Alice", 70000), (2, "Bob", 50000), (3, "Carol", 90000)],
    )

    cur.execute(
        "SELECT name FROM emp WHERE salary > ? ORDER BY salary DESC", (60000,)
    )
    print("earners over 60k:", cur.fetchall())  # [('Carol',), ('Alice',)]

    cur.execute("SELECT SUM(salary) FROM emp")  # Paillier aggregate at the DBMS
    print("total payroll:", cur.fetchone()[0])  # 210000

    with conn:  # transactions hold the session's server-side context
        cur.execute("UPDATE emp SET salary = salary + ? WHERE id = ?", (1000, 2))
    cur.execute("SELECT salary FROM emp WHERE id = ?", (2,))
    print("Bob after raise:", cur.fetchone()[0])  # 51000

    # The same exception classes cross the wire by name.
    try:
        cur.execute("SELECT salary * name FROM emp")
    except conn.NotSupportedError as exc:
        print("refused as expected:", exc)

    # Operational visibility: counters of the remote server's shared proxy.
    stats = conn.proxy.server_stats()["proxy"]
    print(
        f"server processed {stats['queries_processed']} queries, "
        f"plan cache {stats['plan_cache_hits']} hits"
    )

    conn.close()
    server.stop()  # graceful drain: zero in-flight statements dropped
    print("drained:", server.stats["dropped_inflight"], "statements dropped")


if __name__ == "__main__":
    main()

"""HotCRP with CryptDB: even the PC chair cannot see reviews of her own paper.

Run with:  python examples/hotcrp_conflicts.py

Reproduces the Figure 6 policy: the review key of a paper is delegated to PC
members *except* those in conflict with it (the ``NoConflict`` predicate), so
a conflicted PC chair -- even with full database access -- cannot learn who
reviewed her paper.
"""

from repro import MultiPrincipalProxy
from repro.errors import AccessDeniedError
from repro.workloads.hotcrp import HotCRPApplication


def main() -> None:
    proxy = MultiPrincipalProxy(paillier_bits=512)
    app = HotCRPApplication(proxy)
    app.install()

    app.add_pc_member(1, "chair@conf.org", "chair-password")
    app.add_pc_member(2, "reviewer@conf.org", "reviewer-password")

    # Paper 10 is authored by the chair: a conflict row exists before reviews.
    app.declare_conflict(10, 1)
    app.submit_paper(10, "Encrypted Query Processing", "onions of encryption")
    app.submit_review(100, 10, 2, "Strong accept; thorough evaluation.")

    # The unconflicted reviewer can read reviewer identities and comments.
    proxy.logout("chair@conf.org")
    proxy.end_session()
    rows = proxy.execute(
        "SELECT reviewerId, commentsToPC FROM PaperReview WHERE paperId = 10"
    ).rows
    print("Reviewer (no conflict) sees:", rows)

    # The chair alone -- despite complete database access -- cannot.
    proxy.logout("reviewer@conf.org")
    proxy.login("chair@conf.org", "chair-password")
    proxy.end_session()
    try:
        proxy.execute("SELECT reviewerId FROM PaperReview WHERE paperId = 10")
    except AccessDeniedError:
        print("Conflicted PC chair cannot decrypt the review of her own paper.")
    report = proxy.compromise_report("PaperReview", "reviewerId")
    print(f"Rows decryptable by a compromise while only the chair is logged in: "
          f"{report['readable']} of {report['total']}")


if __name__ == "__main__":
    main()

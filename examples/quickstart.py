"""Quickstart: encrypted query processing with the CryptDB proxy.

Run with:  python examples/quickstart.py

The application talks normal SQL to the proxy; the DBMS server only ever
sees anonymised tables, ciphertexts, and CryptDB's UDFs.
"""

from repro import CryptDBProxy


def main() -> None:
    proxy = CryptDBProxy(paillier_bits=512)

    proxy.execute("CREATE TABLE Employees (ID int, Name varchar(50), salary int, bio text)")
    proxy.execute(
        "INSERT INTO Employees (ID, Name, salary, bio) VALUES "
        "(23, 'Alice', 70000, 'works on encrypted databases'), "
        "(7, 'Bob', 50000, 'enjoys distributed systems'), "
        "(9, 'Carol', 90000, 'writes compilers and databases')"
    )

    print("Equality (DET):",
          proxy.execute("SELECT ID FROM Employees WHERE Name = 'Alice'").rows)
    print("Range + ORDER BY (OPE):",
          proxy.execute("SELECT Name FROM Employees WHERE salary > 60000 ORDER BY salary DESC").rows)
    print("SUM over Paillier (HOM):",
          proxy.execute("SELECT SUM(salary) FROM Employees").scalar())
    print("Keyword search (SEARCH):",
          proxy.execute("SELECT Name FROM Employees WHERE bio LIKE '% databases %'").rows)

    proxy.execute("UPDATE Employees SET salary = salary + 1000 WHERE Name = 'Bob'")
    print("After homomorphic increment:",
          proxy.execute("SELECT salary FROM Employees WHERE Name = 'Bob'").rows)

    # What the DBMS server actually stores:
    server_table = proxy.db.table("table1")
    print("\nServer-side (anonymised) columns:", [c.name for c in server_table.columns])
    sample_row = next(server_table.scan())[1]
    print("Sample ciphertext row keys:", {k: type(v).__name__ for k, v in sample_row.items()})

    report = proxy.report()
    for column in ("Name", "salary", "bio"):
        info = report.column_report("Employees", column)
        print(f"Steady-state onion levels for {column}: {info.onion_levels} "
              f"(MinEnc = {info.min_enc.name})")


if __name__ == "__main__":
    main()

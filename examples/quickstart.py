"""Quickstart: encrypted query processing through the DB-API interface.

Run with:  python examples/quickstart.py

The application talks normal SQL (with ``?`` parameters) to a connection;
behind it the CryptDB proxy rewrites every statement and the DBMS server
only ever sees anonymised tables, ciphertexts, and CryptDB's UDFs.
Parameterized shapes are rewritten once and cached, so repeated queries
only pay for encrypting their bound parameters.
"""

import repro


def main() -> None:
    conn = repro.connect(paillier_bits=512)
    cur = conn.cursor()

    cur.execute("CREATE TABLE Employees (ID int, Name varchar(50), salary int, bio text)")
    with conn:  # transaction: committed on success, rolled back on error
        cur.executemany(
            "INSERT INTO Employees (ID, Name, salary, bio) VALUES (?, ?, ?, ?)",
            [
                (23, "Alice", 70000, "works on encrypted databases"),
                (7, "Bob", 50000, "enjoys distributed systems"),
                (9, "Carol", 90000, "writes compilers and databases"),
            ],
        )

    cur.execute("SELECT ID FROM Employees WHERE Name = ?", ("Alice",))
    print("Equality (DET):", cur.fetchall())
    cur.execute(
        "SELECT Name FROM Employees WHERE salary > ? ORDER BY salary DESC", (60000,)
    )
    print("Range + ORDER BY (OPE):", cur.fetchall())
    cur.execute("SELECT SUM(salary) FROM Employees")
    print("SUM over Paillier (HOM):", cur.fetchone()[0])
    cur.execute("SELECT Name FROM Employees WHERE bio LIKE '% databases %'")
    print("Keyword search (SEARCH):", cur.fetchall())

    cur.execute("UPDATE Employees SET salary = salary + ? WHERE Name = ?", (1000, "Bob"))
    cur.execute("SELECT salary FROM Employees WHERE Name = ?", ("Bob",))
    print("After homomorphic increment:", cur.fetchall())

    # One shape, many executions: rewritten once, then only the bound
    # parameter is encrypted per call.
    for name in ("Alice", "Bob", "Carol"):
        cur.execute("SELECT salary FROM Employees WHERE Name = ?", (name,))
        print(f"  salary({name}) =", cur.fetchone()[0])
    stats = conn.proxy.stats
    print(f"\nPlan cache: {stats.plan_cache_hits} hits, "
          f"{stats.plan_cache_misses} misses, "
          f"{stats.plan_cache_invalidations} invalidations")

    # What the DBMS server actually stores:
    server_table = conn.backend.table("table1")
    print("Server-side (anonymised) columns:", [c.name for c in server_table.columns])
    sample_row = next(server_table.scan())[1]
    print("Sample ciphertext row keys:", {k: type(v).__name__ for k, v in sample_row.items()})

    report = conn.proxy.report()
    for column in ("Name", "salary", "bio"):
        info = report.column_report("Employees", column)
        print(f"Steady-state onion levels for {column}: {info.onion_levels} "
              f"(MinEnc = {info.min_enc.name})")

    # The legacy entry point still works for un-migrated callers:
    legacy_rows = conn.proxy.execute("SELECT ID FROM Employees WHERE Name = 'Alice'").rows
    print("Legacy CryptDBProxy.execute shim:", legacy_rows)


if __name__ == "__main__":
    main()

"""TPC-C under CryptDB with training mode and the storage/overhead analyses.

Run with:  python examples/tpcc_training_mode.py

Loads a small TPC-C database fully encrypted (single-principal mode, as in
§8.4.1), uses training mode (§3.5.1) to pre-adjust onions for the known query
mix, then reports steady-state onion levels, query overhead versus an
unencrypted engine, and the storage expansion of §8.4.3.
"""

import time

from repro import CryptDBProxy, Database
from repro.workloads.tpcc import QUERY_TYPES, TPCCWorkload

SCALE = dict(
    warehouses=1, districts_per_warehouse=1, customers_per_district=5,
    items=6, orders_per_district=5,
)


def main() -> None:
    workload = TPCCWorkload(**SCALE)

    plain = Database()
    workload.load_into(plain)

    proxy = CryptDBProxy(paillier_bits=512)
    print("Loading encrypted TPC-C ...")
    workload.load_into(proxy)

    # Training mode: replay one query of each type so onions reach their
    # steady-state levels before measurement (the "known query set"
    # optimisation the paper uses for its TPC-C runs).
    report = proxy.train(workload.training_queries())
    print("\nSteady-state onion levels (sample):")
    for table, column in [("customer", "c_id"), ("customer", "c_data"),
                          ("orders", "o_id"), ("order_line", "ol_amount")]:
        info = report.column_report(table, column)
        print(f"  {table}.{column:<12} {info.onion_levels}  MinEnc={info.min_enc.name}")

    print("\nPer-query-type latency (encrypted vs plain):")
    for query_type in QUERY_TYPES:
        queries = workload.queries_of_type(query_type, 5)
        start = time.perf_counter()
        for query in queries:
            proxy.execute(query)
        encrypted_ms = (time.perf_counter() - start) / len(queries) * 1000
        start = time.perf_counter()
        for query in queries:
            plain.execute(query)
        plain_ms = (time.perf_counter() - start) / len(queries) * 1000
        print(f"  {query_type:<9} plain {plain_ms:7.2f} ms   encrypted {encrypted_ms:7.2f} ms")

    expansion = proxy.storage_bytes() / plain.storage_bytes()
    print(f"\nStorage expansion (paper reports 3.76x for TPC-C): {expansion:.2f}x")
    print(f"Onion adjustments performed: {proxy.stats.onion_adjustments}")


if __name__ == "__main__":
    main()

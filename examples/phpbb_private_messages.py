"""Multi-principal phpBB: private messages protected by key chaining (§4, §5).

Run with:  python examples/phpbb_private_messages.py

Bob sends Alice a private message.  While either of them is logged in, the
proxy can follow a key chain from their password to the message key and
decrypt it.  Once both log out, even an attacker with *complete* access to
the DBMS and the proxy cannot decrypt the message.
"""

from repro import MultiPrincipalProxy
from repro.errors import AccessDeniedError

SCHEMA = """
PRINCTYPE physical_user EXTERNAL;
PRINCTYPE user, msg;

CREATE TABLE users (
  userid int, username varchar(255),
  (username physical_user) SPEAKS_FOR (userid user) );

CREATE TABLE privmsgs (
  msgid int,
  subject varchar(255) ENC_FOR (msgid msg),
  msgtext text ENC_FOR (msgid msg) );

CREATE TABLE privmsgs_to (
  msgid int, rcpt_id int, sender_id int,
  (sender_id user) SPEAKS_FOR (msgid msg),
  (rcpt_id user) SPEAKS_FOR (msgid msg) );
"""


def main() -> None:
    proxy = MultiPrincipalProxy(paillier_bits=512)
    proxy.load_schema(SCHEMA)

    # Application login hooks (2-7 lines of code changes in the paper).
    proxy.login("alice", "alice-password")
    proxy.login("bob", "bob-password")

    proxy.execute("INSERT INTO users (userid, username) VALUES (1, 'alice'), (2, 'bob')")
    proxy.execute(
        "INSERT INTO privmsgs (msgid, subject, msgtext) VALUES "
        "(5, 'dinner?', 'meet at 7pm at the usual place')"
    )
    proxy.execute("INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (5, 1, 2)")

    print("Alice (logged in) reads the message:",
          proxy.execute("SELECT msgtext FROM privmsgs WHERE msgid = 5").rows)

    # Both users log out; an adversary then compromises every server.
    proxy.logout("alice")
    proxy.logout("bob")
    proxy.end_session()

    print("\nAdversary compromises DBMS + proxy with no user logged in...")
    report = proxy.compromise_report("privmsgs", "msgtext")
    print(f"Messages the adversary can decrypt: {report['readable']} of {report['total']}")
    try:
        proxy.execute("SELECT msgtext FROM privmsgs WHERE msgid = 5")
    except AccessDeniedError as exc:
        print("Direct read fails as expected:", exc)

    # Alice logs back in: her chain unlocks the message again.
    proxy.login("alice", "alice-password")
    print("\nAfter Alice logs back in:",
          proxy.execute("SELECT msgtext FROM privmsgs WHERE msgid = 5").rows)


if __name__ == "__main__":
    main()

"""A sqlite3-backed :class:`BackendAdapter`: a *real* second DBMS behind the proxy.

CryptDB's server is an unmodified DBMS plus UDF shared objects (§5).  This
adapter plays that role with the Python standard library's ``sqlite3``:
statements arrive as SQL text or as the AST nodes the proxy's rewriter
produces, are rendered to parameterized SQLite SQL, and CryptDB's UDFs are
registered through ``Connection.create_function`` / ``create_aggregate`` --
no engine code from :mod:`repro.sql` executes on this path, which is what
makes the backend a useful *independent oracle* for the differential
conformance harness in :mod:`repro.testing`.

Value encoding
==============

SQLite integers are signed 64-bit, but CryptDB stores values outside that
range: OPE and RND-Ord ciphertexts are *unsigned* 64-bit and Paillier
ciphertexts run to thousands of bits.  The codec maps Python values onto
SQLite storage classes so that equality and -- for the order-sensitive Ord
onion -- relative order survive the round trip:

* ``None`` / ``int`` in the signed-64 range / ``float`` / ``str`` are stored
  natively (``bool`` as ``0``/``1``, as the in-memory engine coerces it).
* ``bytes`` are stored as a BLOB behind a one-byte tag so they can be told
  apart from encoded big integers when read back.
* Integers at or above ``2**63`` become tagged 8-byte-or-wider big-endian
  BLOBs.  SQLite orders every BLOB after every INTEGER and compares BLOBs
  bytewise, so for the Ord onion's ``[0, 2**64)`` domain the encoding is
  order-preserving: native-range values sort first (numerically), tagged
  values sort after them (lexicographically on fixed 8-byte payloads).
  Paillier ciphertexts ride the same tag with wider payloads; they are only
  ever compared for equality, fed to the HOM UDFs, or decrypted.
* Integers below ``-2**63`` round-trip through a third tag (no ordering
  guarantee; no encryption scheme emits them).

UDF arguments and return values cross the same codec, so the very same
functions :func:`repro.core.udfs.install_udfs` registers against the
in-memory engine run unchanged against SQLite.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Callable, Optional, Union

from repro import faults
from repro.api.backends import fire_backend_fault
from repro.errors import SQLExecutionError
from repro.sql import ast_nodes as ast
from repro.sql.engine import split_statements
from repro.sql.executor import ResultSet
from repro.sql.expressions import like_to_regex
from repro.sql.parser import parse_sql
from repro.sql.types import ColumnDef

StatementLike = Union[str, ast.Statement]

# Storage tags for BLOB-encoded values (see module docstring).
_TAG_BYTES = 0x00
_TAG_BIG_INT = 0x01
_TAG_BIG_NEG_INT = 0x02

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def encode_value(value: Any) -> Any:
    """Encode a Python value into a sqlite3-bindable storage value."""
    if value is None or isinstance(value, (float, str)):
        return value
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            return value
        if value > 0:
            payload = value.to_bytes(max(8, (value.bit_length() + 7) // 8), "big")
            return bytes([_TAG_BIG_INT]) + payload
        magnitude = -value
        payload = magnitude.to_bytes(max(8, (magnitude.bit_length() + 7) // 8), "big")
        return bytes([_TAG_BIG_NEG_INT]) + payload
    if isinstance(value, (bytes, bytearray)):
        return bytes([_TAG_BYTES]) + bytes(value)
    raise SQLExecutionError(
        f"cannot store a value of type {type(value).__name__} in the SQLite backend"
    )


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` for a value read back from sqlite3."""
    if isinstance(value, bytes):
        if not value:
            return value
        tag, payload = value[0], value[1:]
        if tag == _TAG_BYTES:
            return payload
        if tag == _TAG_BIG_INT:
            return int.from_bytes(payload, "big")
        if tag == _TAG_BIG_NEG_INT:
            return -int.from_bytes(payload, "big")
        # Unknown tag: a foreign blob written outside the adapter.
        return value
    return value


def _decode_row(row: tuple) -> tuple:
    return tuple(decode_value(value) for value in row)


# ---------------------------------------------------------------------------
# AST -> SQLite SQL rendering
# ---------------------------------------------------------------------------
def _quote_identifier(name: str) -> str:
    return '"%s"' % name.replace('"', '""')


class _Renderer:
    """Renders one statement to (sql, params); literals become ``?`` binds.

    Binding every literal as a parameter side-steps SQL-literal syntax for
    bytes/bigint ciphertexts entirely and funnels each value through the
    storage codec exactly once.
    """

    def __init__(self) -> None:
        self.params: list[Any] = []

    # -- statements -----------------------------------------------------
    def statement(self, node: ast.Statement) -> str:
        if isinstance(node, ast.Select):
            return self._select(node)
        if isinstance(node, ast.Insert):
            return self._insert(node)
        if isinstance(node, ast.Update):
            return self._update(node)
        if isinstance(node, ast.Delete):
            return self._delete(node)
        raise SQLExecutionError(
            f"unsupported statement type {type(node).__name__} for the SQLite backend"
        )

    def _select(self, node: ast.Select) -> str:
        parts = ["SELECT"]
        if node.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self._select_item(item) for item in node.items))
        if node.from_clause is not None:
            parts.append("FROM " + self._from(node.from_clause))
        if node.where is not None:
            parts.append("WHERE " + self.expr(node.where))
        if node.group_by:
            parts.append("GROUP BY " + ", ".join(self.expr(g) for g in node.group_by))
        if node.having is not None:
            parts.append("HAVING " + self.expr(node.having))
        if node.order_by:
            parts.append(
                "ORDER BY "
                + ", ".join(
                    f"{self._order_expr(o.expr)} {'ASC' if o.ascending else 'DESC'}"
                    for o in node.order_by
                )
            )
        if node.limit is not None:
            parts.append(f"LIMIT {int(node.limit)}")
            if node.offset is not None:
                parts.append(f"OFFSET {int(node.offset)}")
        elif node.offset is not None:
            # SQLite requires a LIMIT clause to attach an OFFSET to.
            parts.append(f"LIMIT -1 OFFSET {int(node.offset)}")
        return " ".join(parts)

    def _select_item(self, item: ast.SelectItem) -> str:
        rendered = self.expr(item.expr)
        if item.alias:
            rendered += f" AS {_quote_identifier(item.alias)}"
        return rendered

    def _order_expr(self, expr: ast.Expression) -> str:
        # ORDER BY <integer literal> is positional in both engines; keep it
        # inline, a ? parameter would sort by the constant instead.
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            return str(expr.value)
        return self.expr(expr)

    def _from(self, clause: ast.FromClause) -> str:
        if isinstance(clause, ast.TableRef):
            rendered = _quote_identifier(clause.name)
            if clause.alias:
                rendered += f" AS {_quote_identifier(clause.alias)}"
            return rendered
        if isinstance(clause, ast.Join):
            left = self._from(clause.left)
            right = self._from(clause.right)
            join = "LEFT JOIN" if clause.join_type == "LEFT" else "INNER JOIN"
            on = f" ON {self.expr(clause.condition)}" if clause.condition is not None else ""
            return f"{left} {join} {right}{on}"
        raise SQLExecutionError(f"unsupported FROM clause {clause!r}")

    def _insert(self, node: ast.Insert) -> str:
        columns = ""
        if node.columns:
            columns = " (" + ", ".join(_quote_identifier(c) for c in node.columns) + ")"
        rows = ", ".join(
            "(" + ", ".join(self.expr(value) for value in row) + ")" for row in node.rows
        )
        return f"INSERT INTO {_quote_identifier(node.table)}{columns} VALUES {rows}"

    def _update(self, node: ast.Update) -> str:
        sets = ", ".join(
            f"{_quote_identifier(column)} = {self.expr(expr)}"
            for column, expr in node.assignments
        )
        where = f" WHERE {self.expr(node.where)}" if node.where is not None else ""
        return f"UPDATE {_quote_identifier(node.table)} SET {sets}{where}"

    def _delete(self, node: ast.Delete) -> str:
        where = f" WHERE {self.expr(node.where)}" if node.where is not None else ""
        return f"DELETE FROM {_quote_identifier(node.table)}{where}"

    # -- expressions ----------------------------------------------------
    def expr(self, node: ast.Expression) -> str:
        if isinstance(node, ast.Literal):
            self.params.append(encode_value(node.value))
            return "?"
        if isinstance(node, ast.Placeholder):
            raise SQLExecutionError(
                "unbound ? placeholder reached the SQLite backend; bind parameters first"
            )
        if isinstance(node, ast.ColumnRef):
            if node.table:
                return f"{_quote_identifier(node.table)}.{_quote_identifier(node.name)}"
            return _quote_identifier(node.name)
        if isinstance(node, ast.Star):
            return f"{_quote_identifier(node.table)}.*" if node.table else "*"
        if isinstance(node, ast.BinaryOp):
            return f"({self.expr(node.left)} {node.op} {self.expr(node.right)})"
        if isinstance(node, ast.UnaryOp):
            return f"({node.op} {self.expr(node.operand)})"
        if isinstance(node, ast.FunctionCall):
            inner = ", ".join(self.expr(a) for a in node.args)
            if node.distinct:
                inner = "DISTINCT " + inner
            return f"{node.name.upper()}({inner})"
        if isinstance(node, ast.InList):
            op = "NOT IN" if node.negated else "IN"
            items = ", ".join(self.expr(i) for i in node.items)
            return f"({self.expr(node.expr)} {op} ({items}))"
        if isinstance(node, ast.Between):
            op = "NOT BETWEEN" if node.negated else "BETWEEN"
            return (
                f"({self.expr(node.expr)} {op} "
                f"{self.expr(node.low)} AND {self.expr(node.high)})"
            )
        if isinstance(node, ast.Like):
            op = "NOT LIKE" if node.negated else "LIKE"
            return f"({self.expr(node.expr)} {op} {self.expr(node.pattern)})"
        if isinstance(node, ast.IsNull):
            op = "IS NOT NULL" if node.negated else "IS NULL"
            return f"({self.expr(node.expr)} {op})"
        raise SQLExecutionError(f"cannot render expression {node!r} for SQLite")


def _sqlite_column_type(column: ColumnDef) -> str:
    """Map an engine type to the SQLite type name carrying the right affinity.

    BLOB columns must keep BLOB (no-conversion) affinity so tagged ciphertext
    encodings are stored verbatim; numeric affinities mirror the coercions
    :meth:`repro.sql.types.DataType.coerce` applies in the in-memory engine.
    """
    return column.data_type.sqlite_affinity()


def _render_create_table(node: ast.CreateTable) -> str:
    # PRIMARY KEY / NOT NULL are deliberately not forwarded: the in-memory
    # engine does not enforce them, and "INTEGER PRIMARY KEY" would alias
    # SQLite's rowid (NULL inserts would auto-number instead of storing NULL).
    columns = ", ".join(
        f"{_quote_identifier(c.name)} {_sqlite_column_type(c)}" for c in node.columns
    )
    exists = "IF NOT EXISTS " if node.if_not_exists else ""
    return f"CREATE TABLE {exists}{_quote_identifier(node.table)} ({columns})"


# ---------------------------------------------------------------------------
# UDF bridging
# ---------------------------------------------------------------------------
def _wrap_scalar(func: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        return encode_value(func(*(decode_value(a) for a in args)))

    return wrapper


def _make_aggregate_class(
    initial: Callable[[], Any],
    step: Callable[[Any, Any], Any],
    finalize: Callable[[Any], Any],
):
    class _Aggregate:
        def __init__(self) -> None:
            self.state = initial()

        def step(self, *args: Any) -> None:
            value = decode_value(args[0]) if args else None
            if value is None:
                # SQL aggregates skip NULLs; matches FunctionRegistry's
                # skip_nulls=True default used by every CryptDB UDF.
                return
            self.state = step(self.state, value)

        def finalize(self) -> Any:
            return encode_value(finalize(self.state))

    return _Aggregate


def _unicode_like(pattern: Any, value: Any) -> Any:
    """``value LIKE pattern`` with the engine's Unicode-aware case folding.

    SQLite calls the registered like() as ``like(pattern, value)``.  NULL on
    either side yields NULL, as in standard SQL.
    """
    if pattern is None or value is None:
        return None
    return 1 if like_to_regex(str(pattern)).match(str(value)) else 0


# ---------------------------------------------------------------------------
# Transactions / table shims
# ---------------------------------------------------------------------------
class _SQLiteTransactions:
    """The ``transactions.in_transaction`` surface the proxy relies on."""

    def __init__(self, connection: sqlite3.Connection):
        self._connection = connection

    @property
    def in_transaction(self) -> bool:
        return self._connection.in_transaction


class SQLiteTable:
    """Per-table handle: index creation and row counts, sqlite3-backed."""

    def __init__(self, backend: "SQLiteBackend", name: str):
        self._backend = backend
        self.name = name

    def create_index(self, column: str, ordered: bool = False) -> None:
        # SQLite b-tree indexes serve both equality and range scans, so the
        # engine's hash/ordered distinction collapses to one index kind.
        index_name = f"idx_{self.name}_{column}"
        self._backend.connection.execute(
            f"CREATE INDEX IF NOT EXISTS {_quote_identifier(index_name)} "
            f"ON {_quote_identifier(self.name)} ({_quote_identifier(column)})"
        )

    def row_count(self) -> int:
        cursor = self._backend.connection.execute(
            f"SELECT COUNT(*) FROM {_quote_identifier(self.name)}"
        )
        return int(cursor.fetchone()[0])

    @property
    def column_names(self) -> list[str]:
        cursor = self._backend.connection.execute(
            f"PRAGMA table_info({_quote_identifier(self.name)})"
        )
        return [row[1] for row in cursor.fetchall()]

    def has_column(self, name: str) -> bool:
        return name in self.column_names

    def storage_bytes(self) -> int:
        """Approximate payload bytes, mirroring the engine's estimate."""
        columns = self.column_names
        if not columns:
            return 0
        parts = " + ".join(
            f"COALESCE(LENGTH({_quote_identifier(c)}), 1)" for c in columns
        )
        cursor = self._backend.connection.execute(
            f"SELECT COALESCE(SUM({parts}), 0) FROM {_quote_identifier(self.name)}"
        )
        return int(cursor.fetchone()[0])


# ---------------------------------------------------------------------------
# The adapter
# ---------------------------------------------------------------------------
class SQLiteBackend:
    """Backend adapter over a ``sqlite3`` database (in-memory by default)."""

    def __init__(self, path: str = ":memory:", allow_existing: bool = False):
        self.path = path
        # isolation_level=None turns off the driver's implicit transaction
        # management: BEGIN/COMMIT/ROLLBACK pass through exactly as issued,
        # matching how the proxy drives the in-memory engine.
        self.connection = sqlite3.connect(path, isolation_level=None)
        if not allow_existing and path != ":memory:" and self.table_names():
            # A populated database file holds ciphertexts written under
            # metadata (onion levels, anonymised names, schema version) that
            # only the proxy's durable catalog records.  Silently reattaching
            # with a fresh proxy would read them as garbage -- refuse unless
            # the caller explicitly opted in (the catalog recovery path does).
            self.connection.close()
            from repro.api.exceptions import OperationalError

            raise OperationalError(
                f"existing encrypted database at {path!r} requires catalog=... "
                "(recover the proxy metadata from its write-ahead log, or pass "
                "allow_existing=True to take responsibility for the mismatch)"
            )
        # SQLite's built-in LIKE folds case for ASCII only; the in-memory
        # engine (like MySQL's ci collations) folds the full Unicode range.
        # Overriding the like() function keeps the two backends transparent
        # to each other for non-ASCII text.
        self.connection.create_function("like", 2, _unicode_like)
        self.transactions = _SQLiteTransactions(self.connection)
        self._statements_executed = 0

    # -- BackendAdapter protocol ----------------------------------------
    def execute(self, statement: StatementLike) -> ResultSet:
        if isinstance(statement, str):
            statement = parse_sql(statement)
        if faults.INJECTOR is not None:
            fire_backend_fault(self, statement)
        self._statements_executed += 1
        try:
            return self._execute_node(statement)
        except sqlite3.Error as exc:
            raise SQLExecutionError(f"sqlite backend: {exc}") from exc

    def execute_script(self, script: str) -> list[ResultSet]:
        return [self.execute(part) for part in split_statements(script)]

    def _execute_node(self, statement: ast.Statement) -> ResultSet:
        if isinstance(statement, ast.CreateTable):
            self.connection.execute(_render_create_table(statement))
            return ResultSet([], [], 0)
        if isinstance(statement, ast.DropTable):
            exists = "IF EXISTS " if statement.if_exists else ""
            self.connection.execute(
                f"DROP TABLE {exists}{_quote_identifier(statement.table)}"
            )
            return ResultSet([], [], 0)
        if isinstance(statement, ast.CreateIndex):
            table = self.table(statement.table)
            for column in statement.columns:
                table.create_index(column)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.Begin):
            if self.connection.in_transaction:
                raise SQLExecutionError("a transaction is already in progress")
            self.connection.execute("BEGIN")
            return ResultSet([], [], 0)
        if isinstance(statement, ast.Commit):
            if self.connection.in_transaction:
                self.connection.execute("COMMIT")
            return ResultSet([], [], 0)
        if isinstance(statement, ast.Rollback):
            if self.connection.in_transaction:
                self.connection.execute("ROLLBACK")
            return ResultSet([], [], 0)

        renderer = _Renderer()
        sql = renderer.statement(statement)
        cursor = self.connection.execute(sql, renderer.params)
        if isinstance(statement, ast.Select):
            rows = [_decode_row(row) for row in cursor.fetchall()]
            columns = (
                [entry[0] for entry in cursor.description] if cursor.description else []
            )
            return ResultSet(columns, rows)
        return ResultSet([], [], cursor.rowcount if cursor.rowcount > 0 else 0)

    def table(self, name: str) -> SQLiteTable:
        if not self.has_table(name):
            raise SQLExecutionError(f"no such table: {name}")
        return SQLiteTable(self, name)

    def has_table(self, name: str) -> bool:
        cursor = self.connection.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?", (name,)
        )
        return cursor.fetchone() is not None

    def table_names(self) -> list[str]:
        cursor = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name NOT LIKE 'sqlite_%' ORDER BY rowid"
        )
        return [row[0] for row in cursor.fetchall()]

    def register_scalar_udf(
        self,
        name: str,
        func: Callable[..., Any],
        batch: Optional[Callable[..., list]] = None,
    ) -> None:
        # SQLite applies scalar functions row-at-a-time; the vectorized
        # variant has no hook here and is accepted only for signature parity.
        del batch
        self.connection.create_function(name, -1, _wrap_scalar(func))

    def register_aggregate_udf(
        self,
        name: str,
        initial: Callable[[], Any],
        step: Callable[[Any, Any], Any],
        finalize: Callable[[Any], Any],
    ) -> None:
        self.connection.create_aggregate(
            name, 1, _make_aggregate_class(initial, step, finalize)
        )

    def storage_bytes(self) -> int:
        page_size = self.connection.execute("PRAGMA page_size").fetchone()[0]
        page_count = self.connection.execute("PRAGMA page_count").fetchone()[0]
        freelist = self.connection.execute("PRAGMA freelist_count").fetchone()[0]
        return int(page_size) * (int(page_count) - int(freelist))

    # -- statistics ------------------------------------------------------
    @property
    def statements_executed(self) -> int:
        return self._statements_executed

    def row_counts(self) -> dict[str, int]:
        return {name: self.table(name).row_count() for name in self.table_names()}

    def insert_row(self, table: str, values: dict[str, Any]) -> int:
        """Insert a row bypassing the parser (data-loader parity helper)."""
        self.execute(
            ast.Insert(table, list(values), [[ast.Literal(v) for v in values.values()]])
        )
        return int(self.connection.execute("SELECT last_insert_rowid()").fetchone()[0])

    def close(self) -> None:
        self.connection.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SQLiteBackend({self.path!r})"

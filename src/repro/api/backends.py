"""Backend adapters: what a :class:`~repro.api.connection.Connection` fronts.

The CryptDB proxy is backend-agnostic: it needs a DBMS that can execute
(rewritten) statements, create tables and indexes, register the CryptDB UDFs
and report storage.  :class:`BackendAdapter` captures that contract as a
runtime-checkable protocol; :class:`InMemoryBackend` implements it over the
bundled pure-Python :class:`~repro.sql.engine.Database`.  An adapter for an
external DBMS (MySQL/Postgres with the UDF shared objects of §5) only has to
satisfy the same protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, Union, runtime_checkable

from repro import faults
from repro.sql import ast_nodes as ast
from repro.sql.engine import Database
from repro.sql.executor import ResultSet

StatementLike = Union[str, ast.Statement]

#: Transaction control is exempt from backend fault injection: the proxy's
#: failure recovery *is* a rollback, and a fault schedule that can sabotage
#: recovery mid-recovery proves nothing about the code under test.
_TXN_NODES = (ast.Begin, ast.Commit, ast.Rollback)
_TXN_HEADS = frozenset({"BEGIN", "COMMIT", "ROLLBACK", "START"})


def fire_backend_fault(backend: Any, statement: StatementLike) -> None:
    """The ``backend.execute`` fault hook body (armed path only).

    Fires *before* the statement reaches the engine, so an injected failure
    never leaves partial statement effects behind.  Context: ``target`` is
    the adapter (for scoping), ``head`` the statement kind ("SELECT", ...).
    """
    if isinstance(statement, ast.Statement):
        if isinstance(statement, _TXN_NODES):
            return
        head = type(statement).__name__.upper()
    else:
        head = statement.split(None, 1)[0].upper() if statement.strip() else ""
        if head in _TXN_HEADS:
            return
    faults.INJECTOR.fire("backend.execute", target=backend, head=head)


@runtime_checkable
class BackendAdapter(Protocol):
    """The DBMS-side interface the proxy and connections rely on."""

    def execute(self, statement: StatementLike) -> ResultSet:
        """Execute one statement (SQL text or a parsed AST node)."""
        ...

    def table(self, name: str) -> Any:
        """Access a table's storage (index creation, analyses)."""
        ...

    def has_table(self, name: str) -> bool:
        ...

    def table_names(self) -> list[str]:
        ...

    def register_scalar_udf(
        self,
        name: str,
        func: Callable[..., Any],
        batch: Optional[Callable[..., list]] = None,
    ) -> None:
        ...

    def register_aggregate_udf(
        self,
        name: str,
        initial: Callable[[], Any],
        step: Callable[[Any, Any], Any],
        finalize: Callable[[Any], Any],
    ) -> None:
        ...

    def storage_bytes(self) -> int:
        ...

    @property
    def transactions(self) -> Any:
        """Transaction manager exposing ``in_transaction``."""
        ...


class InMemoryBackend:
    """Adapter over the bundled in-memory :class:`Database` engine."""

    def __init__(self, database: Optional[Database] = None):
        self.database = database if database is not None else Database()

    # -- BackendAdapter protocol ------------------------------------------
    def execute(self, statement: StatementLike) -> ResultSet:
        if faults.INJECTOR is not None:
            fire_backend_fault(self, statement)
        return self.database.execute(statement)

    def table(self, name: str):
        return self.database.table(name)

    def has_table(self, name: str) -> bool:
        return self.database.has_table(name)

    def table_names(self) -> list[str]:
        return self.database.table_names()

    def register_scalar_udf(
        self,
        name: str,
        func: Callable[..., Any],
        batch: Optional[Callable[..., list]] = None,
    ) -> None:
        self.database.register_scalar_udf(name, func, batch=batch)

    def register_aggregate_udf(self, name, initial, step, finalize) -> None:
        self.database.register_aggregate_udf(name, initial, step, finalize)

    def storage_bytes(self) -> int:
        return self.database.storage_bytes()

    @property
    def transactions(self):
        return self.database.transactions

    # -- convenience -------------------------------------------------------
    def __getattr__(self, item: str):
        # Anything beyond the protocol (row_counts, execute_script, ...)
        # falls through to the wrapped engine.
        return getattr(self.database, item)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"InMemoryBackend({self.database.name!r})"


def create_backend(name: str, **kwargs: Any) -> Any:
    """Instantiate a backend by name: ``"memory"``, ``"sqlite"`` or ``"sharded"``.

    ``sqlite`` accepts a ``path=`` keyword (defaults to ``":memory:"``); the
    import is deferred so environments without the stdlib ``sqlite3`` module
    can still use the in-memory engine.  ``sharded`` accepts ``shards=``,
    ``base=`` ("memory"/"sqlite"), ``mode=`` ("det-hash"/"ope-range") and
    for sqlite bases a ``paths=`` list; see
    :class:`~repro.shard.backend.ShardedBackend`.
    """
    normalized = name.lower()
    if normalized in ("memory", "inmemory", "engine"):
        return InMemoryBackend(**kwargs)
    if normalized in ("sqlite", "sqlite3"):
        from repro.api.sqlite_backend import SQLiteBackend

        return SQLiteBackend(**kwargs)
    if normalized in ("sharded", "shard", "shards"):
        from repro.shard.backend import ShardedBackend

        return ShardedBackend(**kwargs)
    raise ValueError(
        f"unknown backend {name!r} (expected 'memory', 'sqlite' or 'sharded')"
    )


#: Backend names resolve_backend recognises; any other string is a path.
_BACKEND_NAMES = frozenset(
    {"memory", "inmemory", "engine", "sqlite", "sqlite3", "sharded", "shard", "shards"}
)


def resolve_backend(target: Any = None, allow_existing: bool = False) -> Any:
    """Coerce ``None`` / a name / a path / a :class:`Database` into a backend.

    A string that is not a recognised backend name is treated as a SQLite
    database *path* (``connect("app.db")``).  ``allow_existing=True`` lets a
    file-backed SQLite database that already contains tables be reattached --
    the catalog recovery path sets it; without a catalog, reopening an
    encrypted database raises ``OperationalError`` (see
    :class:`~repro.api.sqlite_backend.SQLiteBackend`).
    """
    if target is None:
        return InMemoryBackend()
    if isinstance(target, str):
        if target.lower() in _BACKEND_NAMES:
            if target.lower() in ("sqlite", "sqlite3"):
                return create_backend(target, allow_existing=allow_existing)
            return create_backend(target)
        return create_backend("sqlite", path=target, allow_existing=allow_existing)
    if isinstance(target, Database):
        return InMemoryBackend(target)
    return target

"""PEP 249 exception hierarchy, layered onto :mod:`repro.errors`.

Every DB-API exception also subclasses :class:`repro.errors.ReproError`, so
existing ``except ReproError`` call sites keep working, while DB-API clients
can catch the standard ``connection.Error`` / ``ProgrammingError`` /
``NotSupportedError`` classes.  :func:`translate_errors` wraps the internal
exception types raised by the proxy and the SQL engine into their DB-API
counterparts, chaining the original as ``__cause__``.
"""

from __future__ import annotations

import builtins
from contextlib import contextmanager

from repro import errors


class Warning(builtins.Warning):  # noqa: A001 - name mandated by PEP 249
    """Important warnings such as data truncation (PEP 249)."""


class Error(errors.ReproError):
    """Base class of all DB-API errors raised by :mod:`repro.api`."""


class InterfaceError(Error):
    """Misuse of the database interface itself (e.g. a closed cursor)."""


class DatabaseError(Error):
    """Base class for errors related to the database."""


class DataError(DatabaseError):
    """Problems with the processed data (bad values, out of range)."""


class OperationalError(DatabaseError):
    """Errors related to the database's operation, not the programmer."""


class IntegrityError(DatabaseError):
    """The relational integrity of the database was violated."""


class InternalError(DatabaseError):
    """The database (or the proxy's cryptography) hit an internal error."""


class ProgrammingError(DatabaseError):
    """Errors in the application's SQL: syntax, unknown tables, bad params."""


class NotSupportedError(DatabaseError):
    """The query needs a computation CryptDB cannot run over ciphertext."""


#: Most-specific-first mapping from internal errors to DB-API classes.
_TRANSLATION: list[tuple[type, type]] = [
    (errors.SQLSyntaxError, ProgrammingError),
    (errors.UnsupportedQueryError, NotSupportedError),
    (errors.SchemaError, ProgrammingError),
    (errors.SQLExecutionError, OperationalError),
    (errors.CryptoError, InternalError),
    (errors.AccessDeniedError, OperationalError),
    (errors.PolicyError, OperationalError),
    (errors.ProxyError, ProgrammingError),
    (errors.SQLError, DatabaseError),
    (errors.ReproError, DatabaseError),
]


def wrap_error(exc: errors.ReproError) -> Error:
    """The DB-API exception class wrapping an internal error instance."""
    if isinstance(exc, Error):
        return exc
    for internal_type, api_type in _TRANSLATION:
        if isinstance(exc, internal_type):
            return api_type(str(exc))
    return DatabaseError(str(exc))  # pragma: no cover - ReproError catches all


#: DB-API classes that may cross the repro.server wire, keyed by name.
_WIRE_CLASSES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        Error,
        InterfaceError,
        DatabaseError,
        DataError,
        OperationalError,
        IntegrityError,
        InternalError,
        ProgrammingError,
        NotSupportedError,
    )
}


def error_from_wire(name: str, message: str) -> Error:
    """Rebuild a DB-API exception from its wire ``(class name, message)``.

    The server serializes errors by class name (see
    :mod:`repro.server.session`); unknown names collapse to
    :class:`DatabaseError` so a newer server never crashes an older client.
    """
    return _WIRE_CLASSES.get(name, DatabaseError)(message)


@contextmanager
def translate_errors():
    """Re-raise internal errors as their DB-API counterparts."""
    try:
        yield
    except Error:
        raise
    except errors.ReproError as exc:
        raise wrap_error(exc) from exc

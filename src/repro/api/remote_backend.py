"""The remote proxy client: ``repro.connect(url="repro://host:port")``.

:class:`RemoteProxyClient` speaks the :mod:`repro.server` wire protocol over
a blocking socket and presents exactly the surface
:class:`~repro.api.connection.Connection` and
:class:`~repro.api.cursor.Cursor` already drive on an in-process
:class:`~repro.core.proxy.CryptDBProxy` -- ``execute(sql, params)`` /
``executemany(sql, rows)`` returning :class:`~repro.sql.executor.ResultSet`
objects, plus a ``transactions`` view tracking the session's server-side
transaction state.  DB-API exceptions are reconstructed from the wire by
class name, so ``except conn.NotSupportedError`` works identically against
a remote proxy and an in-process one.

A connection whose peer disappears turns every subsequent call into
:class:`~repro.api.exceptions.InterfaceError`; ``close()`` stays safe (and
idempotent) no matter how the server went away.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Iterable, Optional, Sequence
from urllib.parse import urlsplit

from repro.api import exceptions
from repro.errors import ReproError
from repro.sql.executor import ResultSet

#: SQL heads the client routes to dedicated transaction-control frames.
_TXN_FRAMES = {
    "BEGIN": "BEGIN",
    "START TRANSACTION": "BEGIN",
    "COMMIT": "COMMIT",
    "ROLLBACK": "ROLLBACK",
}


def parse_url(url: str) -> tuple[str, int]:
    """Parse ``repro://host:port`` into its address pair."""
    parts = urlsplit(url)
    if parts.scheme != "repro":
        raise exceptions.InterfaceError(
            f"unsupported URL scheme {parts.scheme!r} (expected repro://host:port)"
        )
    if not parts.hostname or not parts.port:
        raise exceptions.InterfaceError(
            f"URL {url!r} must name both a host and a port"
        )
    return parts.hostname, parts.port


class RemoteTransactions:
    """Client-side mirror of the session's server-side transaction state."""

    def __init__(self):
        self.in_transaction = False


class RemoteProxyClient:
    """A proxy-shaped handle whose statements execute across the wire."""

    #: Duck-typing marker checked by Connection (avoids an import cycle).
    is_remote = True

    def __init__(
        self,
        host: str,
        port: int,
        *,
        auth_key: bytes = b"",
        fetch_chunk: int = 512,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
        max_frame_bytes: Optional[int] = None,
    ):
        # Imported here so `import repro.api` stays cheap for local-only use.
        from repro.server import framing, protocol, transport

        self._framing = framing
        self._protocol = protocol
        self._transport = transport
        self.host = host
        self.port = port
        self.fetch_chunk = max(0, fetch_chunk)
        self.max_frame_bytes = max_frame_bytes or framing.DEFAULT_MAX_FRAME_BYTES
        self.transactions = RemoteTransactions()
        #: Called (once) when the client closes; the loopback helper uses it
        #: to tear down an embedded server with its connection.
        self.on_close = None
        self._lock = threading.Lock()
        self._closed = False
        self._dead_reason: Optional[str] = None
        try:
            self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as exc:
            raise exceptions.OperationalError(
                f"cannot connect to repro://{host}:{port}: {exc}"
            ) from exc
        self._sock.settimeout(timeout)
        try:
            self._channel = self._handshake(auth_key)
        except BaseException:
            self._sock.close()
            raise

    @classmethod
    def from_url(cls, url: str, **kwargs: Any) -> "RemoteProxyClient":
        host, port = parse_url(url)
        return cls(host, port, **kwargs)

    # ------------------------------------------------------------------
    # handshake + request plumbing
    # ------------------------------------------------------------------
    def _handshake(self, auth_key: bytes):
        transport, protocol, framing = self._transport, self._protocol, self._framing
        private, public = transport.generate_keypair()
        client_nonce = transport.fresh_nonce()
        framing.send_record(
            self._sock,
            protocol.encode_frame(
                protocol.FrameType.HELLO, transport.build_hello(public, client_nonce)
            ),
        )
        try:
            frame_type, payload = protocol.decode_frame(
                framing.recv_record(self._sock, self.max_frame_bytes)
            )
            if frame_type is not protocol.FrameType.HELLO:
                raise transport.TransportError("server did not answer with HELLO")
            server_pub, server_nonce = transport.parse_hello(payload, "server")
            secret = transport.shared_secret(private, server_pub)
            channel = transport.SecureChannel.for_client(
                secret, client_nonce, server_nonce, auth_key
            )
            confirm = channel.open(framing.recv_record(self._sock, self.max_frame_bytes))
            confirm_type, _ = protocol.decode_frame(confirm)
            if confirm_type is not protocol.FrameType.HELLO_OK:
                raise transport.TransportError("handshake confirmation missing")
            return channel
        except (transport.TransportError, protocol.WireProtocolError,
                framing.ConnectionClosedError) as exc:
            raise exceptions.OperationalError(
                f"repro.server handshake failed: {exc} "
                "(wrong auth key, or the peer is not a repro.server)"
            ) from exc

    def _mark_dead(self, reason: str) -> exceptions.InterfaceError:
        self._dead_reason = reason
        try:
            self._sock.close()
        except OSError:
            pass
        return exceptions.InterfaceError(
            f"connection to repro://{self.host}:{self.port} is gone: {reason}"
        )

    def _check_usable(self) -> None:
        if self._closed:
            raise exceptions.InterfaceError("remote connection is closed")
        if self._dead_reason is not None:
            raise exceptions.InterfaceError(
                f"connection to repro://{self.host}:{self.port} is gone: "
                f"{self._dead_reason}"
            )

    def _request(self, frame_type, payload) -> tuple[Any, dict]:
        """One sealed request/response round trip; maps wire errors back."""
        protocol, framing = self._protocol, self._framing
        with self._lock:
            self._check_usable()
            try:
                framing.send_record(
                    self._sock,
                    self._channel.seal(protocol.encode_frame(frame_type, payload)),
                )
                record = framing.recv_record(self._sock, self.max_frame_bytes)
                response_type, response = protocol.decode_frame(
                    self._channel.open(record)
                )
            except (framing.ConnectionClosedError, OSError) as exc:
                raise self._mark_dead(str(exc) or type(exc).__name__) from exc
            except ReproError as exc:
                # Transport/protocol corruption: the channel state is
                # unrecoverable (sequence numbers no longer line up).
                raise self._mark_dead(f"protocol failure: {exc}") from exc
        if isinstance(response, dict) and "in_txn" in response:
            self.transactions.in_transaction = bool(response["in_txn"])
        if response_type is protocol.FrameType.ERROR:
            raise exceptions.error_from_wire(
                response.get("error", "DatabaseError"),
                response.get("message", "remote error"),
            )
        return response_type, response

    # ------------------------------------------------------------------
    # the proxy-shaped surface Connection/Cursor drive
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Optional[Sequence[Any]] = None) -> ResultSet:
        protocol = self._protocol
        head = sql.strip().rstrip(";").strip().upper() if isinstance(sql, str) else ""
        if params is None and head in _TXN_FRAMES:
            frame = getattr(protocol.FrameType, _TXN_FRAMES[head])
            _, response = self._request(frame, {})
            return ResultSet([], [], 0)
        _, response = self._request(
            protocol.FrameType.EXECUTE,
            {
                "sql": sql,
                "params": list(params) if params is not None else None,
                "fetch": self.fetch_chunk,
            },
        )
        if "columns" not in response:
            return ResultSet([], [], int(response.get("rowcount", 0)))
        rows = [tuple(row) for row in response.get("rows", [])]
        cursor = response.get("cursor")
        while cursor is not None:
            _, chunk = self._request(
                protocol.FrameType.FETCH,
                {"cursor": cursor, "count": self.fetch_chunk},
            )
            rows.extend(tuple(row) for row in chunk.get("rows", []))
            cursor = chunk.get("cursor")
        return ResultSet(
            list(response["columns"]), rows, int(response.get("rowcount", 0))
        )

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence[Any]]) -> int:
        rows = [list(params) for params in seq_of_params]
        if not rows:
            return 0  # PEP 249: nothing is prepared, nothing crosses the wire
        _, response = self._request(
            self._protocol.FrameType.EXECUTEMANY, {"sql": sql, "rows": rows}
        )
        return int(response.get("rowcount", 0))

    def prepare(self, sql: str) -> dict:
        """Prepare a shape server-side; returns its param count and kind."""
        _, response = self._request(self._protocol.FrameType.PREPARE, {"sql": sql})
        return response

    def server_stats(self) -> dict:
        """Operational counters of the remote server and its shared proxy."""
        _, response = self._request(self._protocol.FrameType.STATS, {})
        return response

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent close: best-effort GOODBYE, then release the socket.

        Safe after the server died mid-session -- a dead peer downgrades
        the farewell to a plain socket close instead of raising.
        """
        if self._closed:
            return
        self._closed = True
        protocol, framing = self._protocol, self._framing
        try:
            if self._dead_reason is None:
                with self._lock:
                    framing.send_record(
                        self._sock,
                        self._channel.seal(
                            protocol.encode_frame(protocol.FrameType.GOODBYE, {})
                        ),
                    )
                    framing.recv_record(self._sock, self.max_frame_bytes)
        except (ReproError, OSError):
            pass
        finally:
            try:
                self._sock.close()
            except OSError:
                pass
            self.transactions.in_transaction = False
            hook, self.on_close = self.on_close, None
            if hook is not None:
                hook()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self._closed else ("dead" if self._dead_reason else "open")
        return f"<RemoteProxyClient repro://{self.host}:{self.port} {state}>"

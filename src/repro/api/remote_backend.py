"""The remote proxy client: ``repro.connect(url="repro://host:port")``.

:class:`RemoteProxyClient` speaks the :mod:`repro.server` wire protocol over
a blocking socket and presents exactly the surface
:class:`~repro.api.connection.Connection` and
:class:`~repro.api.cursor.Cursor` already drive on an in-process
:class:`~repro.core.proxy.CryptDBProxy` -- ``execute(sql, params)`` /
``executemany(sql, rows)`` returning :class:`~repro.sql.executor.ResultSet`
objects, plus a ``transactions`` view tracking the session's server-side
transaction state.  DB-API exceptions are reconstructed from the wire by
class name, so ``except conn.NotSupportedError`` works identically against
a remote proxy and an in-process one.

A connection whose peer flakes mid-statement heals itself: the client
re-establishes the session (capped exponential backoff with jitter) and
transparently resends *idempotent, out-of-transaction* requests -- SELECTs,
PREPAREs, STATS.  Anything else surfaces a clean DB-API error instead of
guessing: a statement whose effect is unknown raises ``OperationalError``
("may not have been applied"), and a connection lost inside an explicit
transaction raises ``OperationalError("transaction aborted ...")`` -- the
server rolls the open transaction back when the session drops.  Only after
every reconnect attempt fails does the client go permanently dead
(:class:`~repro.api.exceptions.InterfaceError`); ``close()`` stays safe
(and idempotent) no matter how the server went away.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from typing import Any, Iterable, Optional, Sequence
from urllib.parse import urlsplit

from repro import faults
from repro.api import exceptions
from repro.errors import ReproError
from repro.sql.executor import ResultSet

#: SQL heads the client routes to dedicated transaction-control frames.
_TXN_FRAMES = {
    "BEGIN": "BEGIN",
    "START TRANSACTION": "BEGIN",
    "COMMIT": "COMMIT",
    "ROLLBACK": "ROLLBACK",
}


def parse_url(url: str) -> tuple[str, int]:
    """Parse ``repro://host:port`` into its address pair."""
    parts = urlsplit(url)
    if parts.scheme != "repro":
        raise exceptions.InterfaceError(
            f"unsupported URL scheme {parts.scheme!r} (expected repro://host:port)"
        )
    try:
        # .port raises ValueError on a non-numeric or out-of-range port.
        hostname, port = parts.hostname, parts.port
    except ValueError as exc:
        raise exceptions.InterfaceError(f"invalid URL {url!r}: {exc}") from exc
    if not hostname or not port:
        raise exceptions.InterfaceError(
            f"URL {url!r} must name both a host and a port"
        )
    return hostname, port


class RemoteTransactions:
    """Client-side mirror of the session's server-side transaction state."""

    def __init__(self):
        self.in_transaction = False


class RemoteProxyClient:
    """A proxy-shaped handle whose statements execute across the wire."""

    #: Duck-typing marker checked by Connection (avoids an import cycle).
    is_remote = True

    def __init__(
        self,
        host: str,
        port: int,
        *,
        auth_key: bytes = b"",
        fetch_chunk: int = 512,
        timeout: Optional[float] = 60.0,
        connect_timeout: float = 10.0,
        max_frame_bytes: Optional[int] = None,
        max_retries: int = 2,
        reconnect_attempts: int = 3,
        reconnect_backoff: float = 0.05,
        reconnect_backoff_cap: float = 1.0,
    ):
        # Imported here so `import repro.api` stays cheap for local-only use.
        from repro.server import framing, protocol, transport

        self._framing = framing
        self._protocol = protocol
        self._transport = transport
        self.host = host
        self.port = port
        self.fetch_chunk = max(0, fetch_chunk)
        self.max_frame_bytes = max_frame_bytes or framing.DEFAULT_MAX_FRAME_BYTES
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_retries = max(0, max_retries)
        self.reconnect_attempts = max(1, reconnect_attempts)
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_backoff_cap = reconnect_backoff_cap
        #: Observability: sessions re-established / requests transparently
        #: resent over the connection's lifetime.
        self.reconnects = 0
        self.retries = 0
        self.transactions = RemoteTransactions()
        #: Called (once) when the client closes; the loopback helper uses it
        #: to tear down an embedded server with its connection.
        self.on_close = None
        self._auth_key = auth_key
        self._rng = random.Random()
        self._lock = threading.Lock()
        self._closed = False
        self._dead_reason: Optional[str] = None
        self._sock: Optional[socket.socket] = None
        self._channel = None
        self._connect()

    def _connect(self) -> None:
        """Dial and handshake; on success installs the socket + channel.

        Every connect-phase failure -- refused/unreachable address, timeout,
        a peer that speaks garbage -- surfaces as ``InterfaceError`` naming
        the address, never a raw ``socket.error`` or ``struct.error``.
        """
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise exceptions.InterfaceError(
                f"cannot connect to repro://{self.host}:{self.port}: {exc}"
            ) from exc
        # Handshake reads are connect-phase work: a hung or silent peer must
        # fail within connect_timeout, not the (much longer) read timeout.
        sock.settimeout(self.connect_timeout)
        try:
            channel = self._handshake(sock, self._auth_key)
        except BaseException:
            sock.close()
            raise
        sock.settimeout(self.timeout)
        self._sock = sock
        self._channel = channel

    @classmethod
    def from_url(cls, url: str, **kwargs: Any) -> "RemoteProxyClient":
        host, port = parse_url(url)
        return cls(host, port, **kwargs)

    # ------------------------------------------------------------------
    # handshake + request plumbing
    # ------------------------------------------------------------------
    def _handshake(self, sock: socket.socket, auth_key: bytes):
        transport, protocol, framing = self._transport, self._protocol, self._framing
        try:
            private, public = transport.generate_keypair()
            client_nonce = transport.fresh_nonce()
            framing.send_record(
                sock,
                protocol.encode_frame(
                    protocol.FrameType.HELLO,
                    transport.build_hello(public, client_nonce),
                ),
            )
            frame_type, payload = protocol.decode_frame(
                framing.recv_record(sock, self.max_frame_bytes)
            )
            if frame_type is not protocol.FrameType.HELLO:
                raise transport.TransportError("server did not answer with HELLO")
            server_pub, server_nonce = transport.parse_hello(payload, "server")
            secret = transport.shared_secret(private, server_pub)
            channel = transport.SecureChannel.for_client(
                secret, client_nonce, server_nonce, auth_key
            )
            confirm = channel.open(framing.recv_record(sock, self.max_frame_bytes))
            confirm_type, _ = protocol.decode_frame(confirm)
            if confirm_type is not protocol.FrameType.HELLO_OK:
                raise transport.TransportError("handshake confirmation missing")
            return channel
        except (ReproError, OSError, struct.error) as exc:
            raise exceptions.InterfaceError(
                f"repro.server handshake with repro://{self.host}:{self.port} "
                f"failed: {exc} (wrong auth key, or the peer is not a repro.server)"
            ) from exc

    def _mark_dead(self, reason: str) -> exceptions.InterfaceError:
        self._dead_reason = reason
        # Clear the transaction mirror: a dead session has no server-side
        # transaction (the server rolls it back on disconnect), and a stale
        # mirror would make Connection.close() try a ROLLBACK through the
        # dead socket instead of closing idempotently.
        self.transactions.in_transaction = False
        try:
            self._sock.close()
        except OSError:
            pass
        return exceptions.InterfaceError(
            f"connection to repro://{self.host}:{self.port} is gone: {reason}"
        )

    def _check_usable(self) -> None:
        if self._closed:
            raise exceptions.InterfaceError("remote connection is closed")
        if self._dead_reason is not None:
            raise exceptions.InterfaceError(
                f"connection to repro://{self.host}:{self.port} is gone: "
                f"{self._dead_reason}"
            )

    def _round_trip(self, frame_type, payload, head: Optional[str]) -> tuple[Any, Any]:
        """One sealed request/response exchange on the current channel."""
        protocol, framing = self._protocol, self._framing
        if faults.INJECTOR is not None:
            # Stamp this request's context onto the channel so transport-site
            # fault rules can match on frame type / statement head / txn state
            # and scope by client instance.
            self._channel.fault_context = {
                "frame": frame_type.name,
                "head": head,
                "in_txn": self.transactions.in_transaction,
                "target": self,
            }
        framing.send_record(
            self._sock,
            self._channel.seal(protocol.encode_frame(frame_type, payload)),
        )
        record = framing.recv_record(self._sock, self.max_frame_bytes)
        return protocol.decode_frame(self._channel.open(record))

    def _reconnect_locked(self) -> Optional[str]:
        """Re-establish the session (capped exponential backoff + jitter).

        Returns ``None`` on success, else the last failure's description.
        Called with ``self._lock`` held and the old socket already closed.
        """
        delay = self.reconnect_backoff
        reason = "reconnect disabled"
        for attempt in range(self.reconnect_attempts):
            if attempt:
                time.sleep(
                    min(delay, self.reconnect_backoff_cap)
                    * (0.5 + self._rng.random())
                )
                delay *= 2
            try:
                self._connect()
            except exceptions.Error as exc:
                reason = str(exc)
                continue
            self.reconnects += 1
            return None
        return reason

    def _request(
        self,
        frame_type,
        payload,
        *,
        idempotent: bool = False,
        head: Optional[str] = None,
    ) -> tuple[Any, dict]:
        """One request/response round trip; maps wire errors back.

        A connection failure mid-exchange triggers reconnection.  The
        request itself is resent only when it is ``idempotent`` and the
        session was not inside an explicit transaction -- anything else
        surfaces a clean DB-API error describing what is (not) known about
        the statement's fate.
        """
        protocol = self._protocol
        with self._lock:
            self._check_usable()
            resends = 0
            while True:
                try:
                    response_type, response = self._round_trip(
                        frame_type, payload, head
                    )
                    break
                except (ReproError, OSError) as exc:
                    # The channel is unusable: peer gone, record truncated,
                    # or sequence numbers out of line.  A fresh session is
                    # the only way forward.
                    was_in_txn = self.transactions.in_transaction
                    self.transactions.in_transaction = False
                    try:
                        self._sock.close()
                    except OSError:
                        pass
                    failed = self._reconnect_locked()
                    if was_in_txn:
                        # The server rolls the open transaction back when
                        # the session drops; mirror that verdict cleanly.
                        raise exceptions.OperationalError(
                            "transaction aborted: connection to "
                            f"repro://{self.host}:{self.port} was lost "
                            f"mid-transaction ({exc}); the server rolled the "
                            "transaction back"
                        ) from exc
                    if failed is not None:
                        raise self._mark_dead(
                            str(exc) or type(exc).__name__
                        ) from exc
                    if not idempotent or resends >= self.max_retries:
                        raise exceptions.OperationalError(
                            "connection to "
                            f"repro://{self.host}:{self.port} was lost "
                            f"mid-statement ({exc}); the statement may not "
                            "have been applied (session re-established)"
                        ) from exc
                    resends += 1
                    self.retries += 1
        if isinstance(response, dict) and "in_txn" in response:
            self.transactions.in_transaction = bool(response["in_txn"])
        if response_type is protocol.FrameType.ERROR:
            raise exceptions.error_from_wire(
                response.get("error", "DatabaseError"),
                response.get("message", "remote error"),
            )
        return response_type, response

    # ------------------------------------------------------------------
    # the proxy-shaped surface Connection/Cursor drive
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Optional[Sequence[Any]] = None) -> ResultSet:
        protocol = self._protocol
        normalized = (
            sql.strip().rstrip(";").strip().upper() if isinstance(sql, str) else ""
        )
        head = normalized.split(None, 1)[0] if normalized else ""
        if params is None and normalized in _TXN_FRAMES:
            frame = getattr(protocol.FrameType, _TXN_FRAMES[normalized])
            _, response = self._request(frame, {}, head=_TXN_FRAMES[normalized])
            return ResultSet([], [], 0)
        # A lone SELECT is safe to resend after a connection failure; any
        # write's fate is unknown once the wire drops mid-exchange.
        _, response = self._request(
            protocol.FrameType.EXECUTE,
            {
                "sql": sql,
                "params": list(params) if params is not None else None,
                "fetch": self.fetch_chunk,
            },
            idempotent=head == "SELECT",
            head=head,
        )
        if "columns" not in response:
            return ResultSet([], [], int(response.get("rowcount", 0)))
        rows = [tuple(row) for row in response.get("rows", [])]
        cursor = response.get("cursor")
        while cursor is not None:
            # Never resent: the server-side cursor dies with the session.
            _, chunk = self._request(
                protocol.FrameType.FETCH,
                {"cursor": cursor, "count": self.fetch_chunk},
                head="FETCH",
            )
            rows.extend(tuple(row) for row in chunk.get("rows", []))
            cursor = chunk.get("cursor")
        return ResultSet(
            list(response["columns"]), rows, int(response.get("rowcount", 0))
        )

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence[Any]]) -> int:
        rows = [list(params) for params in seq_of_params]
        if not rows:
            return 0  # PEP 249: nothing is prepared, nothing crosses the wire
        _, response = self._request(
            self._protocol.FrameType.EXECUTEMANY,
            {"sql": sql, "rows": rows},
            head="EXECUTEMANY",
        )
        return int(response.get("rowcount", 0))

    def prepare(self, sql: str) -> dict:
        """Prepare a shape server-side; returns its param count and kind."""
        _, response = self._request(
            self._protocol.FrameType.PREPARE,
            {"sql": sql},
            idempotent=True,
            head="PREPARE",
        )
        return response

    def server_stats(self, reset: bool = False) -> dict:
        """Operational counters of the remote server and its shared proxy.

        ``reset=True`` zeroes the remote counters (proxy, cache, crypto pool,
        shard scatter/merge, server shed/timeout) after snapshotting them,
        and zeroes this client's own ``reconnects``/``retries`` with them --
        a reset must clear the *whole* distributed counter set, not just the
        server half, or post-reset deltas mix epochs.
        """
        payload = {"reset": True} if reset else {}
        _, response = self._request(
            self._protocol.FrameType.STATS, payload, idempotent=True, head="STATS"
        )
        if reset:
            self.reconnects = 0
            self.retries = 0
        return response

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent close: best-effort GOODBYE, then release the socket.

        Safe after the server died mid-session -- a dead peer downgrades
        the farewell to a plain socket close instead of raising.
        """
        if self._closed:
            return
        self._closed = True
        protocol, framing = self._protocol, self._framing
        try:
            if self._dead_reason is None:
                with self._lock:
                    framing.send_record(
                        self._sock,
                        self._channel.seal(
                            protocol.encode_frame(protocol.FrameType.GOODBYE, {})
                        ),
                    )
                    framing.recv_record(self._sock, self.max_frame_bytes)
        except (ReproError, OSError):
            pass
        finally:
            try:
                self._sock.close()
            except OSError:
                pass
            self.transactions.in_transaction = False
            hook, self.on_close = self.on_close, None
            if hook is not None:
                hook()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self._closed else ("dead" if self._dead_reason else "open")
        return f"<RemoteProxyClient repro://{self.host}:{self.port} {state}>"

"""Connections: the PEP 249 entry point to encrypted query processing.

:func:`connect` builds the usual stack -- a backend adapter playing the
unmodified DBMS, fronted by a :class:`~repro.core.proxy.CryptDBProxy` holding
the keys -- and hands back a :class:`Connection`.  A connection can also wrap
an existing proxy (``Connection(proxy)``) or run unencrypted against a bare
backend (``connect(encrypted=False)``), which is how the evaluation
benchmarks drive their "MySQL" baselines through the same API.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.api import exceptions
from repro.api.backends import BackendAdapter, InMemoryBackend, resolve_backend
from repro.api.cursor import Cursor
from repro.api.exceptions import InterfaceError, translate_errors
from repro.core.proxy import CryptDBProxy


class Connection:
    """A DB-API connection over the CryptDB proxy or a plain backend."""

    # PEP 249 suggests exposing the exception classes on the connection so
    # code holding only a connection can catch them.
    Warning = exceptions.Warning
    Error = exceptions.Error
    InterfaceError = exceptions.InterfaceError
    DatabaseError = exceptions.DatabaseError
    DataError = exceptions.DataError
    OperationalError = exceptions.OperationalError
    IntegrityError = exceptions.IntegrityError
    InternalError = exceptions.InternalError
    ProgrammingError = exceptions.ProgrammingError
    NotSupportedError = exceptions.NotSupportedError

    def __init__(
        self, target: Any, owns_backend: bool = False, owns_proxy: bool = False
    ):
        """Wrap an execution target: a CryptDB proxy, backend, or Database.

        ``owns_backend`` marks a backend this connection created itself
        (via :func:`connect` with a name or None); closing the connection
        then also closes the backend, releasing e.g. sqlite3 handles.
        ``owns_proxy`` marks a proxy :func:`connect` built for this
        connection; closing the connection then also closes the proxy,
        which terminates its crypto worker pool (``workers=N``).
        """
        if isinstance(target, CryptDBProxy) or getattr(target, "is_remote", False):
            # A local proxy or a RemoteProxyClient (repro.server wire); both
            # expose execute/executemany/prepare/close and a `transactions`
            # view, which is all Connection and Cursor ever touch.
            self.proxy: Optional[Any] = target
            self.target: Any = target
            self.backend = getattr(target, "db", target)
        else:
            self.proxy = None
            self.target = resolve_backend(target)
            self.backend = self.target
        self._owns_backend = owns_backend
        self._owns_proxy = owns_proxy
        self._closed = False
        # One entry per active `with conn:` scope; True when that scope
        # opened the transaction (and therefore closes it).
        self._txn_scopes: list[bool] = []

    # ------------------------------------------------------------------
    # cursors and convenience execution
    # ------------------------------------------------------------------
    def cursor(self) -> Cursor:
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str, params: Optional[Sequence[Any]] = None) -> Cursor:
        """Shortcut: run one statement on a fresh cursor (sqlite3-style)."""
        return self.cursor().execute(sql, params)

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence[Any]]) -> Cursor:
        return self.cursor().executemany(sql, seq_of_params)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def _in_transaction(self) -> bool:
        transactions = getattr(self.backend, "transactions", None)
        return bool(transactions is not None and transactions.in_transaction)

    def begin(self) -> None:
        """Open a transaction (no-op when one is already active)."""
        self._check_open()
        if not self._in_transaction():
            with translate_errors():
                self.target.execute("BEGIN")

    def commit(self) -> None:
        self._check_open()
        if self._in_transaction():
            with translate_errors():
                self.target.execute("COMMIT")

    def rollback(self) -> None:
        self._check_open()
        if self._in_transaction():
            with translate_errors():
                self.target.execute("ROLLBACK")

    def __enter__(self) -> "Connection":
        """Open a transaction scope: commit on success, roll back on error.

        Scopes nest: only the outermost `with conn:` (the one that issued
        BEGIN) commits or rolls back; inner scopes are no-ops.
        """
        self._check_open()
        owns = not self._in_transaction()
        if owns:
            self.begin()
        self._txn_scopes.append(owns)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        owns = self._txn_scopes.pop() if self._txn_scopes else False
        if not owns:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection, rolling back any open transaction.

        Idempotent, and safe even when the peer is already gone: a rollback
        that fails because the server (or backend) died is swallowed, and
        resource release -- the proxy's crypto worker pool, an owned sqlite3
        handle, a remote socket -- still runs.  A backend this connection
        created (``connect(backend="sqlite")``) is closed with it;
        caller-provided backends are left open.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._in_transaction():
                with translate_errors():
                    self.target.execute("ROLLBACK")
        except exceptions.Error:
            pass  # the peer may already be gone; releasing resources matters more
        finally:
            try:
                # The proxy closes first: it flushes and fsyncs its durable
                # catalog, which must happen before the backend handle is
                # released.  A flush failure still surfaces to the caller --
                # but only after the backend below is closed too, and a
                # repeated close() stays a no-op (the proxy detaches its
                # catalog before flushing).
                if self._owns_proxy and self.proxy is not None:
                    self.proxy.close()
            finally:
                if self._owns_backend and self.backend is not self.proxy:
                    closer = getattr(self.backend, "close", None)
                    if callable(closer):
                        closer()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        mode = "encrypted" if self.proxy is not None else "plain"
        return f"<repro.api.Connection {mode} closed={self._closed}>"


def connect(
    database: Any = None,
    *,
    url: Optional[str] = None,
    encrypted: bool = True,
    backend: Optional[BackendAdapter] = None,
    **proxy_kwargs: Any,
) -> Connection:
    """Open a connection, the PEP 249 module-level entry point.

    With ``url="repro://host:port"`` the connection attaches to a running
    :mod:`repro.server` over its encrypted wire protocol instead of building
    an in-process proxy; remaining keyword arguments (``auth_key``,
    ``fetch_chunk``, ``timeout``, ...) configure the
    :class:`~repro.api.remote_backend.RemoteProxyClient`.  The returned
    connection is a drop-in for the local path -- same cursors, same
    exception classes, same transaction scoping.

    ``database`` may be an existing :class:`~repro.sql.engine.Database`, a
    backend adapter, a backend name (``"memory"`` or ``"sqlite"``), a SQLite
    file path, or None for a fresh in-memory backend.  Passing
    ``catalog="path.wal"`` attaches the proxy's durable metadata catalog: a
    fresh database writes every metadata mutation through to the WAL, and an
    existing database+WAL pair rebuilds the proxy (same ``master_key``
    required -- column keys re-derive from it) with schema, onion levels and
    prepared-plan versioning restored.  With
    ``encrypted=True`` (the default) a :class:`CryptDBProxy` holding a fresh
    master key is placed in front of the backend; keyword arguments
    (``master_key``, ``paillier``, ``paillier_bits``, ``anonymize_names``,
    ``plan_cache_size``, ``workers``, ``parallelism``, ...) are forwarded to
    the proxy -- ``connect(workers=N)`` gives the proxy a persistent pool of
    ``N`` crypto worker processes for its batch kernels (see
    :mod:`repro.parallel`), terminated when the connection closes.  With
    ``encrypted=False`` the connection drives the backend directly --
    the "MySQL without CryptDB" baseline of the evaluation.
    """
    if url is not None:
        if database is not None or backend is not None:
            raise InterfaceError(
                "url= connects to a remote repro.server and cannot be "
                "combined with a local database or backend"
            )
        if not encrypted:
            raise InterfaceError("url= connections are always encrypted")
        from repro.api.remote_backend import RemoteProxyClient

        client = RemoteProxyClient.from_url(url, **proxy_kwargs)
        return Connection(client, owns_proxy=True)
    if not encrypted and proxy_kwargs:
        # Validate before creating a backend, or an owned sqlite3 handle
        # would be abandoned open on this error path.
        raise InterfaceError(
            f"proxy options {sorted(proxy_kwargs)} require encrypted=True"
        )
    target = backend if backend is not None else database
    # A backend named by string (or defaulted) is created here and therefore
    # owned by the connection: close() releases it (sqlite3 handles etc.).
    owns_backend = target is None or isinstance(target, str)
    # ``catalog=`` is the restart path: the proxy rebuilds its metadata from
    # the write-ahead log, so reattaching to an existing encrypted database
    # file is legitimate exactly then (and refused otherwise).
    resolved = resolve_backend(target, allow_existing="catalog" in proxy_kwargs)
    with translate_errors():
        if encrypted:
            proxy = CryptDBProxy(db=resolved, **proxy_kwargs)
            return Connection(proxy, owns_backend=owns_backend, owns_proxy=True)
        return Connection(resolved, owns_backend=owns_backend)


__all__ = ["Connection", "connect", "InMemoryBackend", "BackendAdapter"]

"""PEP 249-flavored public API for the CryptDB reproduction.

Quickstart::

    import repro

    conn = repro.connect()          # in-memory DBMS behind a CryptDB proxy
    cur = conn.cursor()
    cur.execute("CREATE TABLE emp (id int, name varchar(50), salary int)")
    cur.executemany(
        "INSERT INTO emp (id, name, salary) VALUES (?, ?, ?)",
        [(1, "Alice", 70000), (2, "Bob", 50000)],
    )
    cur.execute("SELECT name FROM emp WHERE salary > ?", (60000,))
    print(cur.fetchall())

Parameterized statements are prepared once (parsed, analysed against the
onion schema, anonymised) and cached by shape; re-executions only encrypt
the bound parameters.  See :mod:`repro.core.plan_cache`.
"""

from __future__ import annotations

from repro.api.backends import (
    BackendAdapter,
    InMemoryBackend,
    create_backend,
    resolve_backend,
)
from repro.api.connection import Connection, connect

try:
    from repro.api.sqlite_backend import SQLiteBackend
except ImportError:  # pragma: no cover - Python built without sqlite3
    SQLiteBackend = None  # the in-memory backend remains fully usable
from repro.api.cursor import Cursor
from repro.api.exceptions import (
    DatabaseError,
    DataError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    Warning,
)

#: PEP 249 module globals.
apilevel = "2.0"
threadsafety = 1  # threads may share the module, not connections
paramstyle = "qmark"

__all__ = [
    "apilevel",
    "threadsafety",
    "paramstyle",
    "connect",
    "Connection",
    "Cursor",
    "BackendAdapter",
    "InMemoryBackend",
    "SQLiteBackend",
    "create_backend",
    "resolve_backend",
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
]

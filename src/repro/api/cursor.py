"""PEP 249 cursors over the CryptDB proxy (or a plain backend).

``Cursor.execute`` accepts ``?`` (qmark) placeholders.  Against an encrypted
connection the statement shape is prepared once by the proxy's rewrite-plan
cache and re-executions only encrypt the bound parameters;
``Cursor.executemany`` makes that explicit by preparing the shape a single
time and binding every parameter tuple against it.  Against an unencrypted
backend, parameters are spliced in as safely escaped literals before the
engine parses the text.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.api.exceptions import InterfaceError, ProgrammingError, translate_errors
from repro.sql.executor import ResultSet
from repro.sql.parameters import inline_parameters

#: PEP 249 description entries are 7-tuples; only ``name`` is meaningful for
#: this engine (types are erased by onion encryption anyway).
_DESCRIPTION_PADDING = (None, None, None, None, None, None)


class Cursor:
    """A database cursor, created via :meth:`Connection.cursor`."""

    def __init__(self, connection):
        self._connection = connection
        self._closed = False
        self._rows: list[tuple] = []
        self._index = 0
        self.description: Optional[list[tuple]] = None
        self.rowcount: int = -1
        self.arraysize: int = 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Optional[Sequence[Any]] = None) -> "Cursor":
        """Execute one statement, binding ``?`` placeholders from ``params``."""
        self._check_open()
        proxy = self._connection.proxy
        with translate_errors():
            if proxy is not None:
                result = proxy.execute(sql, params)
            else:
                text = inline_parameters(sql, params) if params else sql
                result = self._connection.target.execute(text)
        self._load(result)
        return self

    def executemany(
        self, sql: str, seq_of_params: Iterable[Sequence[Any]]
    ) -> "Cursor":
        """Execute one statement shape once per parameter tuple.

        On an encrypted connection the shape is rewritten exactly once and
        executed through the proxy's **columnar batch pipeline**: every
        parameter row is validated up front, all rows are encrypted
        column-at-a-time (deduplicating the deterministic DET/JOIN/OPE
        layers through the ciphertext cache, §3.5.2), and a single-row
        INSERT shape reaches the DBMS as one multi-row INSERT.  A row with
        the wrong parameter count therefore fails the whole batch before
        any row is written.  An empty parameter sequence is a pure no-op
        (PEP 249): nothing is prepared and nothing reaches the DBMS.
        """
        self._check_open()
        proxy = self._connection.proxy
        total = 0
        with translate_errors():
            if proxy is not None:
                total = proxy.executemany(sql, seq_of_params)
            else:
                for params in seq_of_params:
                    total += self._connection.target.execute(
                        inline_parameters(sql, params)
                    ).rowcount
        self._rows = []
        self._index = 0
        self.description = None
        self.rowcount = total
        return self

    def _load(self, result: ResultSet) -> None:
        self._rows = list(result.rows)
        self._index = 0
        if result.columns:
            self.description = [
                (name,) + _DESCRIPTION_PADDING for name in result.columns
            ]
        else:
            self.description = None
        self.rowcount = result.rowcount

    # ------------------------------------------------------------------
    # fetching
    # ------------------------------------------------------------------
    def fetchone(self) -> Optional[tuple]:
        self._check_open()
        if self._index >= len(self._rows):
            return None
        row = self._rows[self._index]
        self._index += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        self._check_open()
        count = self.arraysize if size is None else size
        if count < 0:
            raise ProgrammingError("fetchmany size cannot be negative")
        chunk = self._rows[self._index : self._index + count]
        self._index += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple]:
        self._check_open()
        remaining = self._rows[self._index :]
        self._index = len(self._rows)
        return remaining

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # ------------------------------------------------------------------
    # lifecycle / PEP 249 no-ops
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closed = True
        self._rows = []
        self.description = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def setinputsizes(self, sizes) -> None:  # pragma: no cover - PEP 249 no-op
        pass

    def setoutputsize(self, size, column=None) -> None:  # pragma: no cover
        pass

    @property
    def connection(self):
        return self._connection

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self._connection._check_open()

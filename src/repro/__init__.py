"""CryptDB reproduction: encrypted query processing (SOSP 2011).

The package is organised as:

* :mod:`repro.crypto` -- the SQL-aware encryption schemes (RND, DET, OPE,
  HOM/Paillier, SEARCH, JOIN/JOIN-ADJ) and their building blocks.
* :mod:`repro.sql` -- an in-memory relational engine playing the role of the
  unmodified DBMS server (MySQL/Postgres in the paper).
* :mod:`repro.core` -- the CryptDB proxy: onion encryption state, query
  rewriting, onion adjustment, result decryption, training mode.
* :mod:`repro.principals` -- multi-principal mode: schema annotations and
  key chaining to user passwords.
* :mod:`repro.workloads` -- TPC-C, phpBB, HotCRP, grad-apply and the other
  applications used in the paper's evaluation.
* :mod:`repro.analysis` -- functional, security and storage analyses used to
  regenerate the evaluation tables.

The preferred entry point is the PEP 249-style API of :mod:`repro.api`:
``repro.connect()`` returns a :class:`~repro.api.connection.Connection`
whose cursors support ``?`` parameter binding, ``executemany`` batching and
prepared-statement plan caching.  The historical entry points remain:
``CryptDBProxy`` (single-principal proxy, whose ``execute(sql)`` is now a
thin shim over the prepared-statement machinery), ``MultiPrincipalProxy``
(key chaining to user passwords) and ``Database`` (the DBMS substrate).
All are re-exported lazily to keep ``import repro`` cheap.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = [
    "CryptDBProxy",
    "MultiPrincipalProxy",
    "Database",
    "connect",
    "Connection",
    "Cursor",
    "ParallelConfig",
    "apilevel",
    "threadsafety",
    "paramstyle",
    "__version__",
]

apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"

_LAZY_EXPORTS = {
    "CryptDBProxy": ("repro.core.proxy", "CryptDBProxy"),
    "MultiPrincipalProxy": ("repro.principals.multi_proxy", "MultiPrincipalProxy"),
    "Database": ("repro.sql.engine", "Database"),
    "connect": ("repro.api.connection", "connect"),
    "Connection": ("repro.api.connection", "Connection"),
    "Cursor": ("repro.api.cursor", "Cursor"),
    "ParallelConfig": ("repro.parallel.pool", "ParallelConfig"),
}


def __getattr__(name: str):
    """Lazily import the public entry points to keep ``import repro`` cheap."""
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

"""CryptDB reproduction: encrypted query processing (SOSP 2011).

The package is organised as:

* :mod:`repro.crypto` -- the SQL-aware encryption schemes (RND, DET, OPE,
  HOM/Paillier, SEARCH, JOIN/JOIN-ADJ) and their building blocks.
* :mod:`repro.sql` -- an in-memory relational engine playing the role of the
  unmodified DBMS server (MySQL/Postgres in the paper).
* :mod:`repro.core` -- the CryptDB proxy: onion encryption state, query
  rewriting, onion adjustment, result decryption, training mode.
* :mod:`repro.principals` -- multi-principal mode: schema annotations and
  key chaining to user passwords.
* :mod:`repro.workloads` -- TPC-C, phpBB, HotCRP, grad-apply and the other
  applications used in the paper's evaluation.
* :mod:`repro.analysis` -- functional, security and storage analyses used to
  regenerate the evaluation tables.

The three most commonly used entry points are re-exported lazily here:
``CryptDBProxy`` (single-principal proxy), ``MultiPrincipalProxy``
(key chaining to user passwords) and ``Database`` (the DBMS substrate).
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["CryptDBProxy", "MultiPrincipalProxy", "Database", "__version__"]

_LAZY_EXPORTS = {
    "CryptDBProxy": ("repro.core.proxy", "CryptDBProxy"),
    "MultiPrincipalProxy": ("repro.principals.multi_proxy", "MultiPrincipalProxy"),
    "Database": ("repro.sql.engine", "Database"),
}


def __getattr__(name: str):
    """Lazily import the public entry points to keep ``import repro`` cheap."""
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

"""MIT 6.02 class web application (grades database) -- §8's fifth application.

Fifteen columns, thirteen of which are considered for encryption; grades are
only inserted and fetched, user look-ups need equality, and assignment
ordering needs OPE on two mildly sensitive columns.
"""

from __future__ import annotations

MIT602_SCHEMA = [
    "CREATE TABLE students (student_id INT, athena VARCHAR(20), name VARCHAR(60), "
    "year INT, section INT)",
    "CREATE TABLE grades (grade_id INT, student_id INT, assignment VARCHAR(30), "
    "score DECIMAL(5,2), max_score DECIMAL(5,2), graded_on VARCHAR(20), comments TEXT)",
    "CREATE TABLE staff (staff_id INT, athena VARCHAR(20), role VARCHAR(20))",
]

MIT602_SENSITIVE = {
    "students": ["athena", "name"],
    "grades": ["score", "comments"],
}

MIT602_QUERIES = [
    "SELECT name, year, section FROM students WHERE athena = 'alice'",
    "SELECT assignment, score, max_score, comments FROM grades WHERE student_id = 5",
    "SELECT student_id FROM students WHERE section = 2",
    "SELECT AVG(score) FROM grades WHERE assignment = 'ps1'",
    "SELECT assignment FROM grades WHERE student_id = 5 ORDER BY graded_on DESC",
    "SELECT COUNT(*) FROM grades WHERE assignment = 'ps1' AND score > 80",
    "SELECT role FROM staff WHERE athena = 'bob'",
]

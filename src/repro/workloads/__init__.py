"""Workloads used by the paper's evaluation (§8).

* :mod:`repro.workloads.tpcc` -- the TPC-C query mix (single-principal,
  all 92 columns encrypted).
* :mod:`repro.workloads.phpbb` -- the phpBB web forum (multi-principal
  private messages and posts, plus the throughput/latency request mix).
* :mod:`repro.workloads.hotcrp` -- HotCRP conference reviews with the
  PC-chair conflict policy of Figure 6.
* :mod:`repro.workloads.gradapply` -- the MIT EECS admissions system.
* :mod:`repro.workloads.openemr`, :mod:`mit602`, :mod:`phpcalendar` --
  the additional applications of the functional/security evaluation.
* :mod:`repro.workloads.trace` -- a synthetic stand-in for the
  sql.mit.edu production trace (126 M queries, 128,840 columns).
"""

from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.phpbb import PhpBBApplication, PHPBB_ANNOTATED_SCHEMA
from repro.workloads.hotcrp import HotCRPApplication, HOTCRP_ANNOTATED_SCHEMA
from repro.workloads.gradapply import GradApplyApplication, GRADAPPLY_ANNOTATED_SCHEMA

__all__ = [
    "TPCCWorkload",
    "PhpBBApplication",
    "PHPBB_ANNOTATED_SCHEMA",
    "HotCRPApplication",
    "HOTCRP_ANNOTATED_SCHEMA",
    "GradApplyApplication",
    "GRADAPPLY_ANNOTATED_SCHEMA",
]

"""TPC-C workload: schema, data generator and the query mix of §8.4.1.

The paper encrypts *all* columns of the TPC-C schema in single-principal mode
(92 columns over 9 tables) and measures throughput/latency for the query
types that dominate the mix: equality selects, equi-joins, range selects,
SUM aggregates, deletes, inserts, and the two kinds of UPDATE (set to a
constant, and increment).  This module produces the same schema, synthetic
rows, and per-type query generators so the benchmarks can drive an
unmodified :class:`~repro.sql.engine.Database`, the CryptDB proxy and the
strawman identically through ``.execute(sql)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import ClassVar

from repro.sql.parameters import inline_parameters

TPCC_SCHEMA: dict[str, str] = {
    "warehouse": (
        "CREATE TABLE warehouse (w_id INT, w_name VARCHAR(10), w_street_1 VARCHAR(20), "
        "w_street_2 VARCHAR(20), w_city VARCHAR(20), w_state VARCHAR(2), w_zip VARCHAR(9), "
        "w_tax DECIMAL(4,4), w_ytd DECIMAL(12,2))"
    ),
    "district": (
        "CREATE TABLE district (d_id INT, d_w_id INT, d_name VARCHAR(10), d_street_1 VARCHAR(20), "
        "d_street_2 VARCHAR(20), d_city VARCHAR(20), d_state VARCHAR(2), d_zip VARCHAR(9), "
        "d_tax DECIMAL(4,4), d_ytd DECIMAL(12,2), d_next_o_id INT)"
    ),
    "customer": (
        "CREATE TABLE customer (c_id INT, c_d_id INT, c_w_id INT, c_first VARCHAR(16), "
        "c_middle VARCHAR(2), c_last VARCHAR(16), c_street_1 VARCHAR(20), c_street_2 VARCHAR(20), "
        "c_city VARCHAR(20), c_state VARCHAR(2), c_zip VARCHAR(9), c_phone VARCHAR(16), "
        "c_since VARCHAR(20), c_credit VARCHAR(2), c_credit_lim DECIMAL(12,2), "
        "c_discount DECIMAL(4,4), c_balance DECIMAL(12,2), c_ytd_payment DECIMAL(12,2), "
        "c_payment_cnt INT, c_delivery_cnt INT, c_data VARCHAR(500))"
    ),
    "history": (
        "CREATE TABLE history (h_c_id INT, h_c_d_id INT, h_c_w_id INT, h_d_id INT, h_w_id INT, "
        "h_date VARCHAR(20), h_amount DECIMAL(6,2), h_data VARCHAR(24))"
    ),
    "orders": (
        "CREATE TABLE orders (o_id INT, o_d_id INT, o_w_id INT, o_c_id INT, o_entry_d VARCHAR(20), "
        "o_carrier_id INT, o_ol_cnt INT, o_all_local INT)"
    ),
    "new_orders": "CREATE TABLE new_orders (no_o_id INT, no_d_id INT, no_w_id INT)",
    "order_line": (
        "CREATE TABLE order_line (ol_o_id INT, ol_d_id INT, ol_w_id INT, ol_number INT, "
        "ol_i_id INT, ol_supply_w_id INT, ol_delivery_d VARCHAR(20), ol_quantity INT, "
        "ol_amount DECIMAL(6,2), ol_dist_info VARCHAR(24))"
    ),
    "item": (
        "CREATE TABLE item (i_id INT, i_im_id INT, i_name VARCHAR(24), i_price DECIMAL(5,2), "
        "i_data VARCHAR(50))"
    ),
    "stock": (
        "CREATE TABLE stock (s_i_id INT, s_w_id INT, s_quantity INT, s_dist_01 VARCHAR(24), "
        "s_dist_02 VARCHAR(24), s_ytd INT, s_order_cnt INT, s_remote_cnt INT, s_data VARCHAR(50))"
    ),
}

#: Query types reported in Figures 11 and 12.
QUERY_TYPES = (
    "Equality", "Join", "Range", "Sum", "Delete", "Insert", "Upd. set", "Upd. inc",
)

_FIRST_NAMES = ["JAMES", "MARY", "JOHN", "LINDA", "ROBERT", "SUSAN", "DAVID", "KAREN"]
_LAST_NAMES = ["BARBARBAR", "OUGHTPRES", "ABLEPRI", "PRICALLY", "ESEANTI", "CALLYCALLY"]


def _quote(value: object) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


@dataclass
class TPCCWorkload:
    """Synthetic TPC-C data and query-mix generator.

    The scale parameters are deliberately small so the pure-Python crypto
    stays fast; they affect absolute numbers, not the shape of the figures.
    """

    warehouses: int = 1
    districts_per_warehouse: int = 2
    customers_per_district: int = 10
    items: int = 20
    orders_per_district: int = 10
    seed: int = 42
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # schema / data loading
    # ------------------------------------------------------------------
    def schema_statements(self) -> list[str]:
        """CREATE TABLE statements for the full 92-column TPC-C schema."""
        return list(TPCC_SCHEMA.values())

    def column_count(self) -> int:
        """Number of columns across all tables (the paper's mix uses 92)."""
        from repro.sql.parser import parse_sql

        return sum(len(parse_sql(sql).columns) for sql in TPCC_SCHEMA.values())

    #: Column lists of the generated INSERT batches, per table.
    LOAD_COLUMNS: ClassVar[dict[str, tuple[str, ...]]] = {
        "warehouse": ("w_id", "w_name", "w_street_1", "w_street_2", "w_city",
                      "w_state", "w_zip", "w_tax", "w_ytd"),
        "district": ("d_id", "d_w_id", "d_name", "d_street_1", "d_street_2",
                     "d_city", "d_state", "d_zip", "d_tax", "d_ytd", "d_next_o_id"),
        "customer": ("c_id", "c_d_id", "c_w_id", "c_first", "c_middle", "c_last",
                     "c_street_1", "c_street_2", "c_city", "c_state", "c_zip",
                     "c_phone", "c_since", "c_credit", "c_credit_lim", "c_discount",
                     "c_balance", "c_ytd_payment", "c_payment_cnt",
                     "c_delivery_cnt", "c_data"),
        "history": ("h_c_id", "h_c_d_id", "h_c_w_id", "h_d_id", "h_w_id",
                    "h_date", "h_amount", "h_data"),
        "orders": ("o_id", "o_d_id", "o_w_id", "o_c_id", "o_entry_d",
                   "o_carrier_id", "o_ol_cnt", "o_all_local"),
        "new_orders": ("no_o_id", "no_d_id", "no_w_id"),
        "order_line": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_number", "ol_i_id",
                       "ol_supply_w_id", "ol_delivery_d", "ol_quantity",
                       "ol_amount", "ol_dist_info"),
        "item": ("i_id", "i_im_id", "i_name", "i_price", "i_data"),
        "stock": ("s_i_id", "s_w_id", "s_quantity", "s_dist_01", "s_dist_02",
                  "s_ytd", "s_order_cnt", "s_remote_cnt", "s_data"),
    }

    def load_rows(self) -> list[tuple[str, tuple[str, ...], list[tuple]]]:
        """The initial data as ``(table, columns, rows)`` batches.

        This is the single source of truth for the TPC-C data: the
        string-based :meth:`load_statements` formats these rows into SQL, and
        :meth:`load_into` feeds them to ``executemany`` when given a DB-API
        connection.
        """
        rng = random.Random(self.seed)
        batches: dict[str, list[tuple]] = {name: [] for name in self.LOAD_COLUMNS}
        for w_id in range(1, self.warehouses + 1):
            batches["warehouse"].append(
                (w_id, f"W{w_id}", f"Street {w_id}", "Suite 1", "Cambridge", "MA",
                 "021390000", 0.05, 300000.0)
            )
            for d_id in range(1, self.districts_per_warehouse + 1):
                batches["district"].append(
                    (d_id, w_id, f"D{d_id}", "Main St", "Floor 2", "Boston", "MA",
                     "021420000", 0.08, 30000.0, self.orders_per_district + 1)
                )
                for c_id in range(1, self.customers_per_district + 1):
                    first = rng.choice(_FIRST_NAMES)
                    last = rng.choice(_LAST_NAMES)
                    batches["customer"].append(
                        (c_id, d_id, w_id, first, "OE", last, "1 Elm", "2 Oak",
                         "Cambridge", "MA", "021390000", f"555000{c_id:04d}", "2011-01-01",
                         "GC", 50000.0, 0.1, float(rng.randint(-50, 500)), 10.0, 1, 0,
                         f"customer data {c_id}")
                    )
                    batches["history"].append(
                        (c_id, d_id, w_id, d_id, w_id, "2011-01-02", 10.0, "payment")
                    )
                for o_id in range(1, self.orders_per_district + 1):
                    c_id = rng.randint(1, self.customers_per_district)
                    ol_cnt = rng.randint(2, 4)
                    batches["orders"].append(
                        (o_id, d_id, w_id, c_id, f"2011-02-0{1 + o_id % 9}",
                         rng.randint(1, 10), ol_cnt, 1)
                    )
                    if o_id > self.orders_per_district - 3:
                        batches["new_orders"].append((o_id, d_id, w_id))
                    for number in range(1, ol_cnt + 1):
                        i_id = rng.randint(1, self.items)
                        batches["order_line"].append(
                            (o_id, d_id, w_id, number, i_id, w_id, "2011-02-10",
                             rng.randint(1, 10), float(rng.randint(1, 99)), "dist info")
                        )
        for i_id in range(1, self.items + 1):
            batches["item"].append(
                (i_id, i_id * 10, f"item number {i_id}",
                 float(self._rng.randint(1, 100)), f"item data {i_id}")
            )
            for w_id in range(1, self.warehouses + 1):
                batches["stock"].append(
                    (i_id, w_id, self._rng.randint(10, 100), "dist a", "dist b",
                     0, 0, 0, f"stock data {i_id}")
                )
        return [
            (table, self.LOAD_COLUMNS[table], rows)
            for table, rows in batches.items()
            if rows
        ]

    def insert_statement(self, table: str) -> str:
        """The parameterized INSERT shape for one table."""
        columns = self.LOAD_COLUMNS[table]
        values = ", ".join("?" for _ in columns)
        return f"INSERT INTO {table} ({', '.join(columns)}) VALUES ({values})"

    def load_statements(self) -> list[str]:
        """INSERT statements populating every table (string-interpolated)."""
        statements: list[str] = []
        for table, columns, rows in self.load_rows():
            for row in rows:
                values = ", ".join(_quote(value) for value in row)
                statements.append(
                    f"INSERT INTO {table} ({', '.join(columns)}) VALUES ({values})"
                )
        return statements

    def load_into(self, target) -> int:
        """Create the schema and load the data.

        ``target`` is either a DB-API connection (anything with ``cursor()``),
        in which case each table is bulk-loaded through ``executemany`` over
        one prepared INSERT shape, or a bare ``.execute(sql)`` object fed
        interpolated statements one by one.
        """
        count = 0
        if hasattr(target, "cursor"):
            cursor = target.cursor()
            for statement in self.schema_statements():
                cursor.execute(statement)
                count += 1
            for table, _columns, rows in self.load_rows():
                cursor.executemany(self.insert_statement(table), rows)
                count += len(rows)
            return count
        for statement in self.schema_statements():
            target.execute(statement)
            count += 1
        for statement in self.load_statements():
            target.execute(statement)
            count += 1
        return count

    # ------------------------------------------------------------------
    # query mix (Figures 11 and 12)
    # ------------------------------------------------------------------
    def query_params(
        self, query_type: str, rng: random.Random | None = None
    ) -> tuple[str, tuple]:
        """One query of the given Figure-11 type as ``(sql_shape, params)``.

        The SQL shape is constant per query type (``?`` placeholders), so
        driving these through the DB-API cursor reuses one cached rewrite
        plan per type; :meth:`query` inlines the parameters for targets that
        only accept SQL text.
        """
        rng = rng or self._rng
        w_id = rng.randint(1, self.warehouses)
        d_id = rng.randint(1, self.districts_per_warehouse)
        c_id = rng.randint(1, self.customers_per_district)
        o_id = rng.randint(1, self.orders_per_district)
        i_id = rng.randint(1, self.items)
        if query_type == "Equality":
            return (
                "SELECT c_first, c_last, c_balance FROM customer "
                "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                (w_id, d_id, c_id),
            )
        if query_type == "Join":
            return (
                "SELECT c_last, o_id FROM customer JOIN orders ON c_id = o_c_id "
                "WHERE c_w_id = ?",
                (w_id,),
            )
        if query_type == "Range":
            return (
                "SELECT o_id, o_carrier_id FROM orders "
                "WHERE o_d_id = ? AND o_id < ? ORDER BY o_id DESC LIMIT 5",
                (d_id, o_id + 5),
            )
        if query_type == "Sum":
            return (
                "SELECT SUM(ol_amount) FROM order_line WHERE ol_o_id = ? AND ol_d_id = ?",
                (o_id, d_id),
            )
        if query_type == "Delete":
            return (
                "DELETE FROM new_orders WHERE no_o_id = ? AND no_d_id = ?",
                (o_id, d_id),
            )
        if query_type == "Insert":
            return (
                "INSERT INTO history (h_c_id, h_c_d_id, h_c_w_id, h_d_id, h_w_id, "
                "h_date, h_amount, h_data) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (c_id, d_id, w_id, d_id, w_id, "2011-03-01",
                 float(rng.randint(1, 50)), "payment h"),
            )
        if query_type == "Upd. set":
            return (
                "UPDATE customer SET c_credit = ?, c_data = ? "
                "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                ("BC", "updated data", w_id, d_id, c_id),
            )
        if query_type == "Upd. inc":
            return (
                "UPDATE stock SET s_ytd = s_ytd + ?, s_order_cnt = s_order_cnt + 1 "
                "WHERE s_i_id = ? AND s_w_id = ?",
                (rng.randint(1, 10), i_id, w_id),
            )
        raise ValueError(f"unknown TPC-C query type {query_type}")

    def query(self, query_type: str, rng: random.Random | None = None) -> str:
        """One query of the given Figure-11 type with parameters inlined."""
        sql, params = self.query_params(query_type, rng)
        return inline_parameters(sql, params)

    def queries_of_type(self, query_type: str, count: int) -> list[str]:
        rng = random.Random(self.seed + hash(query_type) % 1000)
        return [self.query(query_type, rng) for _ in range(count)]

    def query_params_of_type(
        self, query_type: str, count: int
    ) -> list[tuple[str, tuple]]:
        """Parameterized form of :meth:`queries_of_type` (same RNG stream)."""
        rng = random.Random(self.seed + hash(query_type) % 1000)
        return [self.query_params(query_type, rng) for _ in range(count)]

    def mixed_queries(self, count: int) -> list[str]:
        """A shuffled mix approximating the TPC-C transaction profile."""
        rng = random.Random(self.seed)
        population = self._mix_population()
        return [self.query(rng.choice(population), rng) for _ in range(count)]

    def mixed_query_params(self, count: int) -> list[tuple[str, tuple]]:
        """Parameterized form of :meth:`mixed_queries` (same RNG stream)."""
        rng = random.Random(self.seed)
        population = self._mix_population()
        return [self.query_params(rng.choice(population), rng) for _ in range(count)]

    @staticmethod
    def _mix_population() -> list[str]:
        weights = {
            "Equality": 30, "Join": 8, "Range": 12, "Sum": 8,
            "Delete": 6, "Insert": 14, "Upd. set": 10, "Upd. inc": 12,
        }
        return [t for t, w in weights.items() for _ in range(w)]

    def training_queries(self) -> list[str]:
        """One query of each type, used to pre-adjust onions (§3.5.2)."""
        rng = random.Random(self.seed)
        return [self.query(query_type, rng) for query_type in QUERY_TYPES]

"""Synthetic stand-in for the sql.mit.edu production trace (§8, Figures 7 & 9).

The paper analyses a 10-day trace of ~126 million queries touching 128,840
columns across 1,193 databases hosted on MIT's shared MySQL server.  That
trace is not publicly available, so -- per the substitution rule in
DESIGN.md -- we generate a synthetic population of application schemas and
queries whose *per-column computation-class mix* matches the published
distribution (the bottom rows of Figure 9, with in-proxy processing):

=====================  ==========  =========
column class            paper count  fraction
=====================  ==========  =========
RND (no predicates)        84,008     65.2%
DET (equality only)        35,350     27.4%
OPE (order)                 8,513      6.6%
SEARCH (word search)          398      0.31%
needs plaintext               571      0.44%
needs HOM                   1,016      0.8% (overlaps the above)
=====================  ==========  =========

The generator emits CREATE TABLE statements plus one query per column class
occurrence; the functional analysis then classifies the columns and the
Figure 7/9 benchmarks check that the proportions (not the absolute counts,
which are scaled down) match the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Target fractions of column classes, from Figure 9 ("with in-proxy processing").
TRACE_DISTRIBUTION = {
    "RND": 84_008 / 128_840,
    "DET": 35_350 / 128_840,
    "OPE": 8_513 / 128_840,
    "SEARCH": 398 / 128_840,
    "PLAINTEXT": 571 / 128_840,
}

#: Fraction of columns that additionally need HOM (SUM/increment).
TRACE_HOM_FRACTION = 1_016 / 128_840

#: Schema-size statistics of Figure 7 (used columns / total columns etc.).
FIGURE7_PAPER = {
    "databases_total": 8_548,
    "tables_total": 177_154,
    "columns_total": 1_244_216,
    "databases_used": 1_193,
    "tables_used": 18_162,
    "columns_used": 128_840,
}


@dataclass
class TraceApplication:
    """One synthetic application: a few tables and a query workload."""

    name: str
    schema: list[str] = field(default_factory=list)
    queries: list[str] = field(default_factory=list)
    column_classes: dict[tuple[str, str], str] = field(default_factory=dict)


@dataclass
class SyntheticTrace:
    """A scaled-down synthetic sql.mit.edu trace."""

    applications: list[TraceApplication]
    total_columns: int
    used_columns: int

    def all_schemas(self) -> list[str]:
        return [sql for app in self.applications for sql in app.schema]

    def all_queries(self) -> list[str]:
        return [query for app in self.applications for query in app.queries]

    def class_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for app in self.applications:
            for cls in app.column_classes.values():
                counts[cls] = counts.get(cls, 0) + 1
        return counts


def generate_trace(
    applications: int = 40,
    columns_per_application: int = 25,
    unused_column_factor: float = 8.7,
    seed: int = 2011,
) -> SyntheticTrace:
    """Generate a synthetic trace with the published column-class mix.

    ``unused_column_factor`` reproduces Figure 7's ratio between the complete
    schema (1.24 M columns) and the columns actually used in queries (129 K):
    roughly 8.7 schema columns exist for every column the trace touches.
    """
    rng = random.Random(seed)
    classes = list(TRACE_DISTRIBUTION)
    weights = [TRACE_DISTRIBUTION[c] for c in classes]

    apps: list[TraceApplication] = []
    used_columns = 0
    for app_index in range(applications):
        app = TraceApplication(name=f"app{app_index}")
        tables = max(1, columns_per_application // 10)
        remaining = columns_per_application
        for table_index in range(tables):
            n_columns = remaining if table_index == tables - 1 else min(10, remaining)
            remaining -= n_columns
            table = f"app{app_index}_t{table_index}"
            column_defs = []
            for col_index in range(n_columns):
                cls = rng.choices(classes, weights)[0]
                needs_hom = rng.random() < TRACE_HOM_FRACTION
                column = f"c{col_index}"
                col_type = "INT" if (needs_hom or rng.random() < 0.5) else "VARCHAR(64)"
                if cls == "SEARCH":
                    col_type = "TEXT"
                column_defs.append(f"{column} {col_type}")
                app.column_classes[(table, column)] = cls
                app.queries.extend(
                    _queries_for_class(table, column, cls, needs_hom, col_type, rng)
                )
                used_columns += 1
            app.schema.append(f"CREATE TABLE {table} ({', '.join(column_defs)})")
        apps.append(app)

    total_columns = int(used_columns * unused_column_factor)
    return SyntheticTrace(apps, total_columns=total_columns, used_columns=used_columns)


def _queries_for_class(
    table: str, column: str, cls: str, needs_hom: bool, col_type: str, rng: random.Random
) -> list[str]:
    queries: list[str] = []
    if cls == "RND":
        queries.append(f"SELECT {column} FROM {table}")
    elif cls == "DET":
        literal = rng.randint(1, 100) if col_type == "INT" else "'value'"
        queries.append(f"SELECT {column} FROM {table} WHERE {column} = {literal}")
    elif cls == "OPE":
        if col_type == "INT":
            queries.append(
                f"SELECT {column} FROM {table} WHERE {column} > {rng.randint(1, 100)}"
            )
        else:
            queries.append(f"SELECT {column} FROM {table} ORDER BY {column} LIMIT 10")
    elif cls == "SEARCH":
        queries.append(f"SELECT {column} FROM {table} WHERE {column} LIKE '% keyword %'")
    elif cls == "PLAINTEXT":
        queries.append(f"SELECT {column} FROM {table} WHERE LOWER({column}) = 'x'")
    if needs_hom and col_type == "INT":
        queries.append(f"SELECT SUM({column}) FROM {table}")
    return queries

"""HotCRP conference-review workload (Figure 6, §5).

The key policy: PC members must not learn who reviewed papers they are in
conflict with -- including the PC chair, who in stock HotCRP could simply
read the database.  The annotated schema delegates each paper's review key to
PC members *except* those with a conflict, enforced by the ``NoConflict``
predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

HOTCRP_ANNOTATED_SCHEMA = """
PRINCTYPE physical_user EXTERNAL;
PRINCTYPE contact, review;

CREATE TABLE ContactInfo (
  contactId int, email varchar(120),
  (email physical_user) SPEAKS_FOR (contactId contact) );

CREATE TABLE PCMember ( contactId int, memberSince varchar(20) );

CREATE TABLE PaperConflict ( conflictId int, paperId int, contactId int );

CREATE TABLE Paper (
  paperId int, title varchar(200),
  abstract text ENC_FOR (paperId review) );

CREATE TABLE PaperReview (
  reviewId int, paperId int,
  reviewerId int ENC_FOR (paperId review),
  commentsToPC text ENC_FOR (paperId review),
  (PCMember.contactId contact) SPEAKS_FOR (paperId review) IF NoConflict(paperId, contactId) );
"""


@dataclass
class HotCRPApplication:
    """Sets up the HotCRP scenario on a multi-principal proxy."""

    proxy: object

    def install(self) -> None:
        """Load the annotated schema and register the NoConflict predicate."""
        self.proxy.load_schema(HOTCRP_ANNOTATED_SCHEMA)
        self.proxy.register_predicate("NoConflict", self._no_conflict)

    def _no_conflict(self, paperId=None, contactId=None) -> bool:
        """The SQL function of Figure 6: true when the PC member has no conflict."""
        result = self.proxy.inner.execute(
            "SELECT COUNT(*) FROM PaperConflict WHERE paperId = "
            f"{int(paperId)} AND contactId = {int(contactId)}"
        )
        return result.scalar() == 0

    # -- scenario helpers ---------------------------------------------------
    def add_pc_member(self, contact_id: int, email: str, password: str) -> None:
        self.proxy.login(email, password)
        self.proxy.execute(
            f"INSERT INTO ContactInfo (contactId, email) VALUES ({contact_id}, '{email}')"
        )
        self.proxy.execute(
            f"INSERT INTO PCMember (contactId, memberSince) VALUES ({contact_id}, '2011-01-01')"
        )

    def declare_conflict(self, paper_id: int, contact_id: int) -> None:
        self.proxy.execute(
            "INSERT INTO PaperConflict (conflictId, paperId, contactId) VALUES "
            f"({paper_id * 100 + contact_id}, {paper_id}, {contact_id})"
        )

    def submit_paper(self, paper_id: int, title: str, abstract: str) -> None:
        self.proxy.execute(
            "INSERT INTO Paper (paperId, title, abstract) VALUES "
            f"({paper_id}, '{title}', '{abstract}')"
        )

    def submit_review(self, review_id: int, paper_id: int, reviewer_id: int, comments: str) -> None:
        self.proxy.execute(
            "INSERT INTO PaperReview (reviewId, paperId, reviewerId, commentsToPC) VALUES "
            f"({review_id}, {paper_id}, {reviewer_id}, '{comments}')"
        )

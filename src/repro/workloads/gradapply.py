"""grad-apply: the MIT EECS graduate-admissions workload (§5).

Applicants may see their own folder except recommendation letters; any
reviewer (faculty) may see everything.  The annotations mirror the paper's
description: all reviewers speak for each candidate and each letter, and the
applicant speaks for her own candidate principal but *not* for the letter
principal.
"""

from __future__ import annotations

from dataclasses import dataclass

GRADAPPLY_ANNOTATED_SCHEMA = """
PRINCTYPE physical_user EXTERNAL;
PRINCTYPE applicant, reviewer, candidate, letter;

CREATE TABLE reviewers (
  reviewer_id int, email varchar(120),
  (email physical_user) SPEAKS_FOR (reviewer_id reviewer) );

CREATE TABLE applicants (
  applicant_id int, email varchar(120),
  (email physical_user) SPEAKS_FOR (applicant_id applicant) );

CREATE TABLE candidates (
  candidate_id int, applicant_id int,
  gpa decimal(4,2) ENC_FOR (candidate_id candidate),
  gre_score int ENC_FOR (candidate_id candidate),
  statement text ENC_FOR (candidate_id candidate),
  (applicant_id applicant) SPEAKS_FOR (candidate_id candidate),
  (reviewers.reviewer_id reviewer) SPEAKS_FOR (candidate_id candidate) );

CREATE TABLE letters (
  letter_id int, candidate_id int, writer varchar(120),
  letter_text text ENC_FOR (letter_id letter),
  rating int ENC_FOR (letter_id letter),
  (reviewers.reviewer_id reviewer) SPEAKS_FOR (letter_id letter) );

CREATE TABLE reviews (
  review_id int, candidate_id int, reviewer_id int,
  score int ENC_FOR (review_id review_item),
  comments text ENC_FOR (review_id review_item),
  (reviewer_id reviewer) SPEAKS_FOR (review_id review_item) );

PRINCTYPE review_item;
"""

#: The paper reports 103 sensitive fields for grad-apply (61 grades, 17
#: scores, recommendations, reviews); our reduced schema models 7 of them.
SENSITIVE_FIELD_COUNT_PAPER = 103


@dataclass
class GradApplyApplication:
    """Sets up the grad-apply scenario on a multi-principal proxy."""

    proxy: object

    def install(self) -> None:
        self.proxy.load_schema(GRADAPPLY_ANNOTATED_SCHEMA)

    def add_reviewer(self, reviewer_id: int, email: str, password: str) -> None:
        self.proxy.login(email, password)
        self.proxy.execute(
            f"INSERT INTO reviewers (reviewer_id, email) VALUES ({reviewer_id}, '{email}')"
        )

    def add_applicant(self, applicant_id: int, email: str, password: str) -> None:
        self.proxy.login(email, password)
        self.proxy.execute(
            f"INSERT INTO applicants (applicant_id, email) VALUES ({applicant_id}, '{email}')"
        )

    def submit_application(
        self, candidate_id: int, applicant_id: int, gpa: float, gre: int, statement: str
    ) -> None:
        self.proxy.execute(
            "INSERT INTO candidates (candidate_id, applicant_id, gpa, gre_score, statement) "
            f"VALUES ({candidate_id}, {applicant_id}, {gpa}, {gre}, '{statement}')"
        )

    def submit_letter(
        self, letter_id: int, candidate_id: int, writer: str, text: str, rating: int
    ) -> None:
        self.proxy.execute(
            "INSERT INTO letters (letter_id, candidate_id, writer, letter_text, rating) "
            f"VALUES ({letter_id}, {candidate_id}, '{writer}', '{text}', {rating})"
        )

"""phpBB web forum workload (§5, §8.4.2).

Includes the annotated schema of Figures 4 and 5 (private messages, posts,
forums, groups) and an application simulator that issues, for each HTTP
request type of Figure 15 (Login, Read post, Write post, Read message, Write
message), the same kind of SQL batch the PHP application would.  The
simulator can run against an unencrypted :class:`~repro.sql.engine.Database`,
a :class:`~repro.core.passthrough.PassthroughProxy`, a single-principal
:class:`~repro.core.proxy.CryptDBProxy` (Figure 14's configuration, with only
the notably sensitive fields encrypted) or the multi-principal proxy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sql.parameters import inline_parameters

PHPBB_ANNOTATED_SCHEMA = """
PRINCTYPE physical_user EXTERNAL;
PRINCTYPE user, group_p, msg, forum_post, forum_name;

CREATE TABLE users (
  userid int, username varchar(255), user_password varchar(255),
  (username physical_user) SPEAKS_FOR (userid user) );

CREATE TABLE usergroup (
  userid int, groupid int,
  (userid user) SPEAKS_FOR (groupid group_p) );

CREATE TABLE aclgroups (
  groupid int, forumid int, optionid int,
  (groupid group_p) SPEAKS_FOR (forumid forum_post) IF optionid=20,
  (groupid group_p) SPEAKS_FOR (forumid forum_name) IF optionid=14 );

CREATE TABLE privmsgs (
  msgid int, author_id int, created varchar(20),
  subject varchar(255) ENC_FOR (msgid msg),
  msgtext text ENC_FOR (msgid msg) );

CREATE TABLE privmsgs_to (
  msgid int, rcpt_id int, sender_id int,
  (sender_id user) SPEAKS_FOR (msgid msg),
  (rcpt_id user) SPEAKS_FOR (msgid msg) );

CREATE TABLE posts (
  postid int, forumid int, poster_id int, post_time varchar(20),
  post_text text ENC_FOR (forumid forum_post) );

CREATE TABLE forum (
  forumid int,
  name varchar(255) ENC_FOR (forumid forum_name) );
"""

#: Plain (un-annotated) schema used for the performance comparison, where
#: only the notably sensitive fields are encrypted by the single-principal
#: proxy (Figure 14's configuration).
PHPBB_PLAIN_SCHEMA = [
    "CREATE TABLE users (userid int, username varchar(255), user_password varchar(255))",
    "CREATE TABLE usergroup (userid int, groupid int)",
    "CREATE TABLE aclgroups (groupid int, forumid int, optionid int)",
    "CREATE TABLE privmsgs (msgid int, author_id int, created varchar(20), "
    "subject varchar(255), msgtext text)",
    "CREATE TABLE privmsgs_to (msgid int, rcpt_id int, sender_id int)",
    "CREATE TABLE posts (postid int, forumid int, poster_id int, post_time varchar(20), "
    "post_text text)",
    "CREATE TABLE forum (forumid int, name varchar(255))",
]

#: The 23 sensitive fields the paper secures in phpBB (we model the subset
#: present in our reduced schema).
PHPBB_SENSITIVE_FIELDS = {
    "users": ["user_password"],
    "privmsgs": ["subject", "msgtext"],
    "posts": ["post_text"],
    "forum": ["name"],
}

REQUEST_TYPES = ("Login", "R post", "W post", "R msg", "W msg")


@dataclass
class PhpBBApplication:
    """Drives a phpBB-like SQL workload against any execution target.

    ``target`` is either a DB-API connection (anything with ``cursor()``),
    in which case every request runs parameterized through a cursor -- so
    the CryptDB proxy's rewrite-plan cache sees one shape per request kind
    and batch preloads go through ``executemany`` -- or a bare
    ``.execute(sql)`` object fed interpolated SQL text.
    """

    target: object
    users: int = 10
    forums: int = 3
    seed: int = 7
    _rng: random.Random = field(init=False, repr=False)
    _next_post: int = field(init=False, default=1)
    _next_msg: int = field(init=False, default=1)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._cursor = self.target.cursor() if hasattr(self.target, "cursor") else None

    # ------------------------------------------------------------------
    # execution plumbing
    # ------------------------------------------------------------------
    def _run(self, pairs: list[tuple[str, tuple]]) -> list[str]:
        """Execute a request's SQL batch; returns the issued statements."""
        issued = []
        for sql, params in pairs:
            if self._cursor is not None:
                self._cursor.execute(sql, params or None)
                issued.append(sql)
            else:
                text = inline_parameters(sql, params) if params else sql
                self.target.execute(text)
                issued.append(text)
        return issued

    def _run_batch(self, sql: str, rows: list[tuple]) -> None:
        """Bulk-insert rows: one prepared shape via executemany, or a loop."""
        if self._cursor is not None:
            self._cursor.executemany(sql, rows)
            return
        for row in rows:
            self.target.execute(inline_parameters(sql, row))

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def create_schema(self) -> None:
        for statement in PHPBB_PLAIN_SCHEMA:
            if self._cursor is not None:
                self._cursor.execute(statement)
            else:
                self.target.execute(statement)

    def load_initial_data(self, messages: int = 20, posts: int = 20) -> None:
        """Pre-load forums, users, group ACLs, messages and posts."""
        self._run_batch(
            "INSERT INTO forum (forumid, name) VALUES (?, ?)",
            [(forum_id, f"Forum {forum_id}") for forum_id in range(1, self.forums + 1)],
        )
        self._run_batch(
            "INSERT INTO aclgroups (groupid, forumid, optionid) VALUES (?, ?, ?)",
            [(1, forum_id, option)
             for forum_id in range(1, self.forums + 1)
             for option in (20, 14)],
        )
        self._run_batch(
            "INSERT INTO users (userid, username, user_password) VALUES (?, ?, ?)",
            [(user_id, f"user{user_id}", f"password{user_id}")
             for user_id in range(1, self.users + 1)],
        )
        self._run_batch(
            "INSERT INTO usergroup (userid, groupid) VALUES (?, ?)",
            [(user_id, 1) for user_id in range(1, self.users + 1)],
        )
        for _ in range(posts):
            self.write_post()
        for _ in range(messages):
            self.write_message()

    # ------------------------------------------------------------------
    # the HTTP request types of Figure 15
    # ------------------------------------------------------------------
    def login(self) -> list[str]:
        """SQL issued by a login request."""
        user_id = self._rng.randint(1, self.users)
        return self._run([
            ("SELECT userid, user_password FROM users WHERE username = ?",
             (f"user{user_id}",)),
            ("SELECT groupid FROM usergroup WHERE userid = ?", (user_id,)),
            ("SELECT forumid FROM aclgroups WHERE groupid = 1 AND optionid = 14", ()),
        ])

    def read_post(self) -> list[str]:
        forum_id = self._rng.randint(1, self.forums)
        return self._run([
            ("SELECT name FROM forum WHERE forumid = ?", (forum_id,)),
            ("SELECT postid, poster_id, post_text FROM posts WHERE forumid = ? "
             "ORDER BY postid DESC LIMIT 10", (forum_id,)),
            ("SELECT COUNT(*) FROM posts WHERE forumid = ?", (forum_id,)),
        ])

    def write_post(self) -> list[str]:
        post_id = self._next_post
        self._next_post += 1
        forum_id = self._rng.randint(1, self.forums)
        user_id = self._rng.randint(1, self.users)
        return self._run([
            ("SELECT name FROM forum WHERE forumid = ?", (forum_id,)),
            ("INSERT INTO posts (postid, forumid, poster_id, post_time, post_text) "
             "VALUES (?, ?, ?, ?, ?)",
             (post_id, forum_id, user_id, f"2011-10-0{1 + post_id % 9}",
              f"forum post number {post_id} about systems security")),
        ])

    def read_message(self) -> list[str]:
        user_id = self._rng.randint(1, self.users)
        return self._run([
            ("SELECT msgid FROM privmsgs_to WHERE rcpt_id = ?", (user_id,)),
            ("SELECT msgid, subject, msgtext FROM privmsgs "
             "WHERE author_id = ? ORDER BY msgid DESC LIMIT 10", (user_id,)),
        ])

    def write_message(self) -> list[str]:
        msg_id = self._next_msg
        self._next_msg += 1
        sender = self._rng.randint(1, self.users)
        recipient = self._rng.randint(1, self.users)
        return self._run([
            ("INSERT INTO privmsgs (msgid, author_id, created, subject, msgtext) "
             "VALUES (?, ?, ?, ?, ?)",
             (msg_id, sender, "2011-10-10", f"subject {msg_id}",
              f"private message body {msg_id} with confidential text")),
            ("INSERT INTO privmsgs_to (msgid, rcpt_id, sender_id) VALUES (?, ?, ?)",
             (msg_id, recipient, sender)),
        ])

    def request(self, request_type: str) -> list[str]:
        """Issue one HTTP-request-equivalent SQL batch."""
        handlers = {
            "Login": self.login,
            "R post": self.read_post,
            "W post": self.write_post,
            "R msg": self.read_message,
            "W msg": self.write_message,
        }
        if request_type not in handlers:
            raise ValueError(f"unknown phpBB request type {request_type}")
        return handlers[request_type]()

    def mixed_requests(self, count: int) -> list[str]:
        """A browse-heavy request mix, as in the Figure 14 experiment."""
        weights = {"Login": 1, "R post": 4, "W post": 2, "R msg": 2, "W msg": 1}
        population = [t for t, w in weights.items() for _ in range(w)]
        issued = []
        for _ in range(count):
            request_type = self._rng.choice(population)
            self.request(request_type)
            issued.append(request_type)
        return issued


def sensitive_field_count() -> int:
    """Number of phpBB fields the paper's annotations protect (23)."""
    return 23

"""PHP-calendar workload -- §8's sixth application (people's schedules).

Twelve of twenty-five columns are sensitive.  Two columns perform date
manipulation in the WHERE clause that CryptDB cannot run over ciphertext
(the paper's "needs plaintext" category for this application), and event
descriptions are keyword-searched.
"""

from __future__ import annotations

PHPCALENDAR_SCHEMA = [
    "CREATE TABLE events (eid INT, cid INT, owner INT, subject VARCHAR(255), "
    "description TEXT, startdate VARCHAR(20), enddate VARCHAR(20), starttime VARCHAR(8), "
    "duration INT, typeofevent INT)",
    "CREATE TABLE calendars (cid INT, title VARCHAR(100), owner INT, timezone VARCHAR(40))",
    "CREATE TABLE occurrences (oid INT, eid INT, odate VARCHAR(20), otime VARCHAR(8))",
]

PHPCALENDAR_SENSITIVE = {
    "events": ["subject", "description", "startdate", "starttime"],
    "calendars": ["title"],
}

PHPCALENDAR_QUERIES = [
    "SELECT subject, description FROM events WHERE eid = 9",
    "SELECT eid, subject FROM events WHERE cid = 2 AND owner = 4",
    "SELECT eid FROM events WHERE startdate >= '2011-10-01' AND startdate <= '2011-10-31'",
    "SELECT title FROM calendars WHERE owner = 4",
    "SELECT eid FROM events WHERE description LIKE '% standup %'",
    "SELECT COUNT(*) FROM occurrences WHERE eid = 9",
    "SELECT oid FROM occurrences WHERE eid = 9 ORDER BY odate",
    # Date manipulation in WHERE: needs plaintext (as in the paper).
    "SELECT eid FROM events WHERE SUBSTRING(startdate, 6, 2) = '10'",
    "SELECT eid FROM events WHERE LOWER(subject) = 'meeting'",
]

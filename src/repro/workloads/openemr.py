"""OpenEMR electronic-medical-records workload (functional/security evaluation).

The paper analyses 566 sensitive OpenEMR columns; most hold medical history
that is only inserted and fetched (so it stays at RND), a handful are used in
key look-ups (DET), a few in date ordering (OPE), and seven perform string or
date manipulation that CryptDB cannot evaluate over ciphertext ("needs
plaintext").  We model a representative subset of the schema and a query set
that reproduces those column classes proportionally.
"""

from __future__ import annotations

OPENEMR_SCHEMA = [
    "CREATE TABLE patient_data (pid INT, fname VARCHAR(60), lname VARCHAR(60), "
    "dob VARCHAR(20), ss VARCHAR(11), street VARCHAR(60), city VARCHAR(30), "
    "state VARCHAR(2), phone_home VARCHAR(20), email VARCHAR(60), "
    "race VARCHAR(20), ethnicity VARCHAR(20), status VARCHAR(20), "
    "genericname1 VARCHAR(60), genericval1 VARCHAR(60))",
    "CREATE TABLE form_encounter (encounter INT, pid INT, date VARCHAR(20), "
    "reason TEXT, facility VARCHAR(60), onset_date VARCHAR(20))",
    "CREATE TABLE lists (id INT, pid INT, type VARCHAR(20), title VARCHAR(100), "
    "begdate VARCHAR(20), enddate VARCHAR(20), diagnosis VARCHAR(60), comments TEXT)",
    "CREATE TABLE prescriptions (id INT, patient_id INT, drug VARCHAR(150), "
    "dosage VARCHAR(100), quantity INT, note TEXT, date_added VARCHAR(20))",
    "CREATE TABLE billing (id INT, pid INT, code VARCHAR(20), fee DECIMAL(12,2), "
    "bill_date VARCHAR(20), justify VARCHAR(255))",
]

#: Columns a clinician marks as definitely sensitive (medical content).
OPENEMR_SENSITIVE = {
    "patient_data": ["fname", "lname", "dob", "ss", "street", "phone_home", "email",
                     "race", "ethnicity", "genericname1", "genericval1"],
    "form_encounter": ["reason", "onset_date"],
    "lists": ["title", "diagnosis", "comments"],
    "prescriptions": ["drug", "dosage", "note"],
    "billing": ["code", "justify"],
}

#: A representative query set.  Most sensitive fields are only inserted and
#: fetched; pid/id key columns need equality; visit dates are ordered; two
#: queries perform string/date manipulation that needs plaintext.
OPENEMR_QUERIES = [
    "SELECT fname, lname, dob, ss, street, phone_home, email FROM patient_data WHERE pid = 17",
    "SELECT race, ethnicity, genericname1, genericval1 FROM patient_data WHERE pid = 17",
    "SELECT reason, onset_date FROM form_encounter WHERE pid = 17 AND encounter = 3",
    "SELECT title, diagnosis, comments FROM lists WHERE pid = 17 AND type = 'medical_problem'",
    "SELECT drug, dosage, note FROM prescriptions WHERE patient_id = 17",
    "SELECT code, fee, justify FROM billing WHERE pid = 17",
    "SELECT encounter FROM form_encounter WHERE pid = 17 ORDER BY date DESC LIMIT 1",
    "SELECT id FROM prescriptions WHERE patient_id = 17 ORDER BY date_added DESC LIMIT 5",
    "SELECT pid FROM patient_data WHERE lname = 'Smith' AND fname = 'John'",
    "SELECT COUNT(*) FROM lists WHERE pid = 17 AND type = 'allergy'",
    "SELECT SUM(fee) FROM billing WHERE pid = 17",
    # String/date manipulation CryptDB cannot evaluate over ciphertext:
    "SELECT pid FROM patient_data WHERE LOWER(lname) = 'smith'",
    "SELECT id FROM lists WHERE SUBSTRING(begdate, 1, 4) = '2011'",
]

"""Exception hierarchy shared across the CryptDB reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class CryptoError(ReproError):
    """A cryptographic operation failed or was mis-used."""


class SQLError(ReproError):
    """Base class for errors raised by the SQL substrate."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenised or parsed."""


class SQLExecutionError(SQLError):
    """A well-formed statement failed during execution."""


class SchemaError(SQLError):
    """A statement referenced tables/columns inconsistently with the schema."""


class ProxyError(ReproError):
    """The CryptDB proxy could not rewrite or process a query."""


class UnsupportedQueryError(ProxyError):
    """The query requires a computation class CryptDB cannot run on ciphertext.

    This corresponds to the "needs plaintext" columns of Figure 9.
    """


class CatalogError(ReproError):
    """The durable metadata catalog is corrupt or inconsistent with the DBMS."""


class SimulatedCrash(ReproError):
    """An injected process death at a named crash point (``repro.faults``).

    Unlike every other injected fault, handlers must *not* treat this as a
    recoverable error: the contract is that the process is gone, so no
    rollback, cleanup or metadata rewind runs.  The recovery harness catches
    it at the top level, abandons the proxy, and rebuilds from the catalog.
    """


class PolicyError(ReproError):
    """A multi-principal annotation or access-control operation is invalid."""


class AccessDeniedError(PolicyError):
    """The requesting principal does not hold a key chain to the data."""

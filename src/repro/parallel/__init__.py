"""Multi-core proxy scale-out: process-pool offload for the crypto kernels.

The proxy is a single Python process and the GIL serializes every AES block,
curve multiplication and Paillier exponentiation it performs.  This package
makes core count matter: :class:`~repro.parallel.pool.CryptoWorkerPool`
keeps a persistent pool of worker processes (spawned once, key material and
precomputed ECC comb / AES T-tables warmed in each worker's initializer) to
which the encryptor offloads its batch kernels by chunking each column
across the workers and splicing the results back in order.

Serial fallback semantics: ``workers=0`` (the default), batches below the
chunk threshold, and a broken pool all run the unchanged in-process code --
parallel execution is a pure throughput optimisation and never changes
results (deterministic schemes produce byte-identical ciphertexts; the
probabilistic ones decrypt identically), which the differential conformance
harness checks with a dedicated ``workers=2`` lane.
"""

from repro.parallel.pool import CryptoWorkerPool, ParallelConfig, ParallelUnavailable
from repro.parallel.threads import ThreadFanout

__all__ = ["CryptoWorkerPool", "ParallelConfig", "ParallelUnavailable", "ThreadFanout"]

"""The persistent crypto worker pool: multi-core scale-out for the proxy.

A single Python proxy process is GIL-bound: the per-query crypto breakdown
of the Figure-10 benchmark shows AES and the JOIN-ADJ curve hash dominating,
all serialized on one core.  :class:`CryptoWorkerPool` moves the batch
crypto kernels onto a pool of long-lived worker processes, spawned **once**
per proxy: each worker rebuilds the Paillier key pair and warms the
import-time ECC comb / AES T-tables in its initializer, then serves
:mod:`repro.parallel.jobs` descriptors for the proxy's lifetime.

Batches are *chunked* across the workers and the results spliced back in
input order, so callers observe exactly the semantics of the serial batch
APIs (byte-identical ciphertexts for the deterministic schemes, since jobs
carry the same derived keys and IVs the serial path would use).  Batches
below :attr:`ParallelConfig.chunk_threshold` never touch the pool -- the
IPC round-trip would cost more than the crypto -- and ``workers=0`` disables
the subsystem entirely; both fall back to the unchanged in-process code.

Worker cache counters come back as per-job *deltas* and are absorbed into
the parent's :class:`~repro.core.cache.CryptoCache` through ``stats_sink``.
Delta absorption makes the accounting restart-proof: killing and respawning
the pool (or a worker crash flipping the pool to broken-serial mode) can
never double-count, because nothing is ever re-read from a worker.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro import faults
from repro.errors import ReproError
from repro.parallel import jobs as jobs_mod


class ParallelUnavailable(ReproError):
    """The pool infrastructure failed; callers should fall back to serial.

    Raised for transport-level failures (dead worker, unpicklable payload,
    closed pool) -- never for crypto errors, which propagate unchanged so
    parallel and serial execution refuse identically.
    """


@dataclass(frozen=True)
class ParallelConfig:
    """Tuning knobs for the proxy's crypto worker pool.

    ``workers=0`` (the default) keeps the proxy fully serial.  Batches
    smaller than ``chunk_threshold`` items run serially even with a pool
    attached; larger ones are split into at most ``workers`` chunks of at
    least ``chunk_threshold // 2`` items each.  ``chunk_threshold=None``
    (the default) auto-sizes from the machine: on a box without at least
    two cores the synchronous scatter path can never beat the serial code
    -- the same crypto runs on the same lone core plus IPC -- so it is
    disabled outright (asynchronous HOM refills still run; they overlap
    idle time rather than competing with a query).  ``start_method``
    defaults to ``fork`` where available (workers inherit the warmed
    interpreter) and ``spawn`` elsewhere.  ``hom_low_watermark``/
    ``hom_refill_batch`` govern the asynchronous Paillier randomness
    refill; ``profile_dir`` makes every worker dump a cProfile at exit
    (used by ``profile_hotpaths --workers``).
    """

    #: sync-offload break-even batch size on a machine with real parallelism
    #: (measured on the Figure-10 workload: below ~2 dozen values the IPC
    #: round-trip and chunk splicing cost more than the crypto saved).
    AUTO_CHUNK_THRESHOLD = 24

    workers: int = 0
    chunk_threshold: Optional[int] = None
    start_method: Optional[str] = None
    hom_low_watermark: int = 16
    hom_refill_batch: int = 128
    profile_dir: Optional[str] = None
    #: Ceiling on one scatter round trip; a worker that died mid-batch (the
    #: stdlib Pool loses its in-flight task forever) surfaces as a bounded
    #: ParallelUnavailable instead of a wedged proxy.
    scatter_timeout: Optional[float] = 60.0
    #: Self-healing: a transport failure restarts the workers in place --
    #: unless ``max_pool_failures`` failures land within ``failure_window``
    #: seconds, which opens the circuit breaker: the pool reports unusable
    #: (callers run serial crypto) until ``circuit_cooldown`` elapses, then
    #: the next ``usable()`` probe respawns the workers and closes it.
    auto_restart: bool = True
    max_pool_failures: int = 3
    failure_window: float = 30.0
    circuit_cooldown: float = 5.0
    #: Ceiling on tearing the old workers down during restart()/close().
    #: A worker SIGKILLed while blocked on the task queue dies holding the
    #: queue's reader lock, and ``Pool.terminate()`` deadlocks trying to
    #: drain it -- the teardown runs in a bounded reaper thread instead.
    terminate_timeout: float = 5.0

    @property
    def enabled(self) -> bool:
        return self.workers > 0

    def resolved_chunk_threshold(self) -> int:
        """The effective sync-offload threshold (auto-sized when None)."""
        if self.chunk_threshold is not None:
            return max(1, self.chunk_threshold)
        if (os.cpu_count() or 1) < 2:
            return sys.maxsize
        return self.AUTO_CHUNK_THRESHOLD


class CryptoWorkerPool:
    """A spawn-once pool of crypto worker processes with ordered splicing."""

    def __init__(
        self,
        config: ParallelConfig,
        paillier,
        stats_sink: Optional[Callable[[dict], None]] = None,
    ):
        if config.workers <= 0:
            raise ValueError("CryptoWorkerPool requires workers >= 1")
        self.config = config
        self.workers = config.workers
        self.chunk_threshold = config.resolved_chunk_threshold()
        self.stats_sink = stats_sink
        self._init = jobs_mod.WorkerInit.from_keypair(
            paillier, profile_dir=config.profile_dir
        )
        self._pool = None
        self._broken = False
        self._closed = False
        self._pending_async: list = []
        self.generation = 0
        # Self-healing state: lifetime counters (read by cache_stats()), the
        # rolling failure window, and the circuit-breaker deadline.  The
        # lifecycle lock serialises heal/restart between the executor thread
        # and the pool's result-handler thread marking the pool broken.
        self.restarts = 0
        self.failures = 0
        self.circuit_opens = 0
        self._failure_times: deque = deque()
        self._circuit_open_until = 0.0
        self._lifecycle_lock = threading.Lock()
        self._spawn()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        method = self.config.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        context = multiprocessing.get_context(method)
        self._pool = context.Pool(
            processes=self.workers,
            initializer=jobs_mod.initialize_worker,
            initargs=(self._init,),
        )
        self._broken = False
        # Bumped on every (re)spawn; async submitters record it so a job
        # whose callbacks died with the old workers is recognisably stale.
        self.generation += 1

    def restart(self) -> None:
        """Tear the workers down and respawn them (fresh worker caches).

        Counter accounting survives restarts without double-counting: the
        parent only ever accumulates per-job deltas, never worker totals.
        """
        self._terminate()
        self._spawn()
        self._closed = False
        self.restarts += 1

    def close(self) -> None:
        """Terminate the workers; the pool cannot be used afterwards."""
        self._terminate()
        self._closed = True

    def _terminate(self) -> None:
        pool, self._pool = self._pool, None
        self._pending_async = []
        if pool is None:
            return
        if self.config.profile_dir:
            # Graceful shutdown so each worker's exit finalizer runs and
            # dumps its cProfile (terminate() would kill them first).
            pool.close()
            pool.join()
            return
        # Pool.terminate() drains the task queue under the queue's reader
        # lock -- the very lock a worker holds while blocked waiting for
        # work.  If that worker was SIGKILLed, the (POSIX-semaphore) lock is
        # orphaned in the acquired state and terminate() deadlocks, so the
        # teardown runs in a bounded reaper.  On timeout, kill the remaining
        # workers outright, force-release the orphaned lock to unwedge the
        # drain, and as a last resort abandon the daemonic handler threads:
        # no worker process survives either way.
        reaper = threading.Thread(
            target=self._reap, args=(pool,), daemon=True
        )
        reaper.start()
        reaper.join(self.config.terminate_timeout)
        if not reaper.is_alive():
            return
        for process in list(getattr(pool, "_pool", ()) or ()):
            if process.is_alive():
                try:
                    process.kill()
                except OSError:
                    pass
        try:
            pool._inqueue._rlock.release()
        except Exception:
            pass
        reaper.join(self.config.terminate_timeout)

    @staticmethod
    def _reap(pool) -> None:
        pool.terminate()
        pool.join()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        return self._broken

    @property
    def circuit_open(self) -> bool:
        return time.monotonic() < self._circuit_open_until

    def usable(self, batch_size: int) -> bool:
        """True when a batch of this size should be offloaded.

        A broken pool self-heals here: unless the circuit breaker is open,
        the workers are respawned in place and the batch proceeds parallel.
        While the circuit is open every caller gets ``False`` (serial
        crypto); the first call after the cooldown re-probes by respawning.
        """
        if batch_size < self.chunk_threshold or self._closed:
            return False
        if self._pool is not None and not self._broken:
            return True
        return self._heal()

    def _heal(self) -> bool:
        """Respawn a broken pool unless the circuit breaker says not to."""
        with self._lifecycle_lock:
            if self._closed:
                return False
            if self._pool is not None and not self._broken:
                return True  # another thread healed it first
            if not self.config.auto_restart:
                return False
            if time.monotonic() < self._circuit_open_until:
                return False
            try:
                self.restart()
            except Exception:
                return False
            return True

    def _note_failure(self) -> None:
        """Record one transport failure; open the circuit on a burst."""
        now = time.monotonic()
        with self._lifecycle_lock:
            self.failures += 1
            window = self.config.failure_window
            self._failure_times.append(now)
            while self._failure_times and now - self._failure_times[0] > window:
                self._failure_times.popleft()
            if (
                len(self._failure_times) >= self.config.max_pool_failures
                and now >= self._circuit_open_until
            ):
                self.circuit_opens += 1
                self._circuit_open_until = now + self.config.circuit_cooldown
                self._failure_times.clear()

    def reset_counters(self) -> None:
        self.restarts = 0
        self.failures = 0
        self.circuit_opens = 0

    # ------------------------------------------------------------------
    # synchronous scatter/gather
    # ------------------------------------------------------------------
    def _chunks(self, items: Sequence) -> list[list]:
        min_chunk = max(1, self.chunk_threshold // 2)
        count = min(self.workers, max(1, len(items) // min_chunk))
        base, extra = divmod(len(items), count)
        chunks = []
        start = 0
        for index in range(count):
            size = base + (1 if index < extra else 0)
            chunks.append(list(items[start : start + size]))
            start += size
        return chunks

    def scatter(self, items: Sequence, make_job: Callable[[list], object]) -> list:
        """Run ``make_job(chunk)`` across the workers; splice results in order.

        Crypto errors raised inside a job propagate unchanged.  Transport
        failures mark the pool broken and raise :class:`ParallelUnavailable`
        so the caller can re-run the batch serially.
        """
        if self._pool is None:
            raise ParallelUnavailable("worker pool is closed")
        if faults.INJECTOR is not None:
            faults.INJECTOR.fire("pool.scatter", target=self, items=len(items))
        chunks = self._chunks(items)
        try:
            handle = self._pool.map_async(
                jobs_mod.run_job, [make_job(chunk) for chunk in chunks], chunksize=1
            )
            # A worker that dies mid-batch loses its task forever in the
            # stdlib Pool; the bounded get() turns that hang into a failure.
            results = handle.get(self.config.scatter_timeout)
        except ReproError:
            raise
        except Exception as exc:
            self._broken = True
            self._note_failure()
            raise ParallelUnavailable(f"worker pool failed: {exc}") from exc
        spliced: list = []
        jobs_delta = 0
        merged: dict[str, int] = {}
        for payload, counters in results:
            jobs_delta += 1
            for key, value in counters.items():
                merged[key] = merged.get(key, 0) + value
            spliced.extend(payload)
        merged["jobs"] = jobs_delta
        if self.stats_sink is not None:
            self.stats_sink(merged)
        return spliced

    # ------------------------------------------------------------------
    # asynchronous submission (background HOM refill)
    # ------------------------------------------------------------------
    def submit_async(
        self,
        job,
        callback: Callable[[list], None],
        error_callback: Optional[Callable[[BaseException], None]] = None,
    ):
        """Run one job without blocking; ``callback(payload)`` on completion.

        The callback runs on the pool's result-handler thread; keep it tiny
        (append to a list, bump a counter).  Counter deltas are absorbed
        through ``stats_sink`` exactly like synchronous jobs.
        """
        if self._pool is None or self._broken:
            raise ParallelUnavailable("worker pool is not running")

        def on_done(result):
            payload, counters = result
            if self.stats_sink is not None:
                counters = dict(counters)
                counters["jobs"] = 1
                self.stats_sink(counters)
            callback(payload)

        def on_error(exc):
            # Same contract as scatter(): crypto errors never break the
            # pool, only transport-level failures do.
            if not isinstance(exc, ReproError):
                self._broken = True
                self._note_failure()
            if error_callback is not None:
                error_callback(exc)

        handle = self._pool.apply_async(
            jobs_mod.run_job, (job,), callback=on_done, error_callback=on_error
        )
        # Prune settled handles so a long-lived proxy's background refills
        # don't accumulate result objects for its whole lifetime.
        self._pending_async = [h for h in self._pending_async if not h.ready()]
        self._pending_async.append(handle)
        return handle

    def drain_async(self, timeout: float = 30.0) -> None:
        """Block until every outstanding async job has completed (tests)."""
        pending, self._pending_async = self._pending_async, []
        for handle in pending:
            handle.wait(timeout)

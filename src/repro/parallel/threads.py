"""Thread fan-out: the scatter primitive for in-process backend shards.

The process pool in :mod:`repro.parallel.pool` is the right tool for crypto
kernels (pure-Python math, GIL-bound), but backend shards are a different
shape: each shard holds mutable state (an engine or a sqlite3 handle) that
cannot cross a process boundary, and the per-statement work regularly
releases the GIL (sqlite3) or is small enough that spawn cost dominates.
:class:`ThreadFanout` is the matching scatter primitive -- a lazily created
thread pool that maps one callable over shard indexes, preserves shard
order in the results, and degrades to serial execution when concurrency is
unavailable (single shard, ``threads=False``, or an injected
``pool.scatter`` fault downgrading the scatter path).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional

from repro.parallel.pool import ParallelUnavailable

__all__ = ["ThreadFanout", "ParallelUnavailable"]


class ThreadFanout:
    """Map a callable over N shard indexes, results in shard order.

    The executor is created on first concurrent use and reused for the
    fanout's lifetime (one pool per sharded backend, not per statement).
    Exceptions propagate like serial execution: the failure of the
    lowest-indexed shard is raised, so an error that would hit every shard
    (e.g. a semantically invalid statement) surfaces deterministically.
    """

    def __init__(self, max_workers: int, threads: bool = True):
        self.max_workers = max(1, int(max_workers))
        self.threads = bool(threads) and self.max_workers > 1
        self._executor: Optional[ThreadPoolExecutor] = None

    def map(self, fn: Callable[[int], Any], count: int) -> list:
        """Run ``fn(0) .. fn(count - 1)``, concurrently when possible."""
        if count <= 0:
            return []
        if not self.threads or count == 1:
            return [fn(index) for index in range(count)]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="shard-fanout",
            )
        futures = [self._executor.submit(fn, index) for index in range(count)]
        results: list = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def serial_map(self, fn: Callable[[int], Any], count: int) -> list:
        """The degraded path: same contract, calling thread only."""
        return [fn(index) for index in range(count)]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

"""Picklable crypto job descriptors and the worker-side executor.

The proxy's hot batch kernels -- the Eq onion's JOIN-ADJ elliptic-curve hash
plus CMC-AES layers, the RND CBC layer, and Paillier encryption/decryption --
are pure functions of (key material, input bytes).  That makes them safe to
ship to another process: each job descriptor below carries the *derived*
per-column keys (never the master key) and a column of inputs, and returns a
column of outputs plus a small counter delta that the parent merges into
:meth:`repro.core.cache.CryptoCache` statistics.

Workers are long-lived: :func:`initialize_worker` runs once per process,
rebuilds the Paillier key pair and warms the import-time precomputations
(the ECC fixed-base comb table, the AES T-tables), and sets up the
per-worker ciphertext memos.  Per-worker Eq memos are keyed on the current
JOIN-ADJ scalar, so a server-side re-keying naturally stops hitting stale
entries -- and a transaction rollback that *restores* a previous scalar
starts hitting the old entries again, exactly like the parent-side cache.

Everything here must stay importable without the rest of the proxy loaded:
with the ``spawn`` start method each worker re-imports this module and the
crypto layer from scratch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto import ecc  # noqa: F401  (imported for its comb table)
from repro.crypto.det import DET
from repro.crypto.join_adj import JoinAdj, JoinCiphertext
from repro.crypto.paillier import (
    PaillierKeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from repro.crypto.rnd import RND

#: Per-worker Eq memos are cleared once they exceed this many entries so a
#: long-lived pool cannot grow without bound (the parent-side memos are the
#: primary cache; worker memos only catch re-sent misses).
MEMO_CAP = 1 << 16


@dataclass(frozen=True)
class WorkerInit:
    """Initialization payload sent to every worker exactly once.

    Carries the Paillier key numbers (the proxy trusts its own workers with
    the factors, enabling the CRT fast paths) and optionally a directory
    into which the worker dumps a cProfile at exit
    (``profile_hotpaths.py --workers N``).
    """

    paillier_n: int
    paillier_g: int
    paillier_lam: int = 0
    paillier_mu: int = 0
    paillier_p: int = 0
    paillier_q: int = 0
    profile_dir: Optional[str] = None

    @classmethod
    def from_keypair(
        cls, keypair: PaillierKeyPair, profile_dir: Optional[str] = None
    ) -> "WorkerInit":
        return cls(
            paillier_n=keypair.public.n,
            paillier_g=keypair.public.g,
            paillier_lam=keypair.private.lam,
            paillier_mu=keypair.private.mu,
            paillier_p=keypair.private.p,
            paillier_q=keypair.private.q,
            profile_dir=profile_dir,
        )


class WorkerState:
    """Everything one worker process keeps across jobs."""

    def __init__(self, init: WorkerInit):
        self.paillier = PaillierKeyPair(
            PaillierPublicKey(init.paillier_n, init.paillier_g),
            PaillierPrivateKey(
                init.paillier_lam, init.paillier_mu, init.paillier_p, init.paillier_q
            ),
        )
        self._det: dict[bytes, DET] = {}
        self._rnd: dict[bytes, RND] = {}
        # (table, column, adj_scalar) -> {plaintext: [join_ct, det_ct|None]}
        self.eq_encrypt_memos: dict[tuple, dict] = {}
        # (table, column) -> {det_layer_ct: plaintext}
        self.eq_decrypt_memos: dict[tuple, dict] = {}

    def det(self, key: bytes) -> DET:
        scheme = self._det.get(key)
        if scheme is None:
            scheme = self._det[key] = DET(key)
        return scheme

    def rnd(self, key: bytes) -> RND:
        scheme = self._rnd.get(key)
        if scheme is None:
            scheme = self._rnd[key] = RND(key)
        return scheme

    def memo(self, memos: dict[tuple, dict], key: tuple) -> dict:
        memo = memos.get(key)
        if memo is None:
            memo = memos[key] = {}
        elif len(memo) > MEMO_CAP:
            memo.clear()
        return memo


_STATE: Optional[WorkerState] = None


def initialize_worker(init: WorkerInit) -> None:
    """Pool initializer: build the per-worker state, optionally profiling."""
    global _STATE
    _STATE = WorkerState(init)
    if init.profile_dir:
        import cProfile

        from multiprocessing import util

        profiler = cProfile.Profile()
        profiler.enable()
        # Workers exit through os._exit (atexit never runs); multiprocessing
        # finalizers do run, so the dump is registered as one.
        util.Finalize(None, _dump_profile, args=(profiler, init.profile_dir),
                      exitpriority=10)


def _dump_profile(profiler, profile_dir: str) -> None:  # pragma: no cover - subprocess
    profiler.disable()
    profiler.dump_stats(os.path.join(profile_dir, f"worker-{os.getpid()}.prof"))


def run_job(job) -> tuple[list, dict]:
    """The mapped entry point: execute one job against the worker state."""
    return job.run(_STATE)


# ---------------------------------------------------------------------------
# job descriptors (one per scheme kernel)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EqEncryptJob:
    """Deterministic Eq-onion layers for a column chunk of plaintext bytes.

    Returns ``[(join_ct, det_ct_or_None), ...]`` aligned with ``plaintexts``:
    the serialised ``JOIN-ADJ || DET`` ciphertext (an
    :func:`ecc.scalar_multiply_base_many` batch over the chunk) and, when
    ``want_det``, the DET layer over it.  The worker memo is keyed on the
    current JOIN-ADJ scalar so re-keyed columns never hit stale entries.
    """

    table: str
    column: str
    adj_scalar: int
    adj_prf_key: bytes
    det_join_key: bytes
    det_key: bytes
    want_det: bool
    use_memo: bool
    plaintexts: list = field(hash=False)

    def run(self, state: WorkerState) -> tuple[list, dict]:
        adj = JoinAdj(self.adj_scalar, self.adj_prf_key)
        det_join = state.det(self.det_join_key)
        det = state.det(self.det_key)
        memo = (
            state.memo(state.eq_encrypt_memos, (self.table, self.column, self.adj_scalar))
            if self.use_memo
            else {}
        )
        hits = misses = 0
        missing: list[bytes] = []
        seen: set[bytes] = set()
        for plaintext in self.plaintexts:
            if plaintext not in memo and plaintext not in seen:
                seen.add(plaintext)
                missing.append(plaintext)
        if missing:
            for plaintext, adj_hash in zip(missing, adj.hash_values(missing)):
                memo[plaintext] = [
                    JoinCiphertext(adj_hash, det_join.encrypt_bytes(plaintext)).serialize(),
                    None,
                ]
        misses = len(missing)
        hits = len(self.plaintexts) - misses
        out = []
        for plaintext in self.plaintexts:
            entry = memo[plaintext]
            if self.want_det and entry[1] is None:
                entry[1] = det.encrypt_bytes(entry[0])
            out.append((entry[0], entry[1]))
        counters = {"det_hits": hits, "det_misses": misses} if self.use_memo else {}
        return out, counters


@dataclass(frozen=True)
class EqDecryptJob:
    """Invert the Eq onion for a column chunk of ciphertexts.

    Strips the per-row RND layer first when ``rnd_key`` is given (``ivs``
    aligned with ``ciphertexts``), then the DET layer when ``strip_det``,
    and finally decrypts the JOIN ciphertext's DET component.  Returns
    ``[(det_layer_ct, plaintext_bytes), ...]`` so the parent can key its own
    decrypt memo exactly as the serial path does (on the post-RND bytes).
    """

    table: str
    column: str
    det_key: bytes
    det_join_key: bytes
    strip_det: bool
    use_memo: bool
    ciphertexts: list = field(hash=False)
    rnd_key: Optional[bytes] = None
    ivs: Optional[list] = None

    def run(self, state: WorkerState) -> tuple[list, dict]:
        data = self.ciphertexts
        if self.rnd_key is not None:
            data = state.rnd(self.rnd_key).decrypt_bytes_many(data, self.ivs)
        det = state.det(self.det_key)
        det_join = state.det(self.det_join_key)
        memo = (
            state.memo(state.eq_decrypt_memos, (self.table, self.column))
            if self.use_memo
            else {}
        )
        hits = misses = 0
        out = []
        for ciphertext in data:
            plaintext = memo.get(ciphertext)
            if plaintext is None:
                misses += 1
                inner = det.decrypt_bytes(ciphertext) if self.strip_det else ciphertext
                join_ct = JoinCiphertext.deserialize(inner)
                plaintext = memo[ciphertext] = det_join.decrypt_bytes(join_ct.det)
            else:
                hits += 1
            out.append((ciphertext, plaintext))
        counters = {"det_hits": hits, "det_misses": misses} if self.use_memo else {}
        return out, counters


@dataclass(frozen=True)
class RndEncryptJob:
    """Apply the RND CBC layer to ``[(plaintext, iv), ...]`` pairs."""

    key: bytes
    pairs: list = field(hash=False)

    def run(self, state: WorkerState) -> tuple[list, dict]:
        rnd = state.rnd(self.key)
        return (
            rnd.encrypt_bytes_many([p for p, _ in self.pairs], [iv for _, iv in self.pairs]),
            {},
        )


@dataclass(frozen=True)
class HomEncryptJob:
    """Paillier-encrypt a chunk of integers (randomness computed inline).

    Workers have no pre-computed randomness pool; they pay ``r^n mod n^2``
    per value through the CRT fast path.  The parent only offloads when its
    own pool cannot cover the batch, so the serial warm-pool path stays the
    fast one for small batches.
    """

    values: list = field(hash=False)

    def run(self, state: WorkerState) -> tuple[list, dict]:
        return [state.paillier.encrypt(value) for value in self.values], {}


@dataclass(frozen=True)
class HomDecryptJob:
    """Paillier-decrypt a chunk of ciphertext integers (CRT fast path)."""

    ciphertexts: list = field(hash=False)

    def run(self, state: WorkerState) -> tuple[list, dict]:
        return [state.paillier.decrypt(ct) for ct in self.ciphertexts], {}


@dataclass(frozen=True)
class HomRandomnessJob:
    """Pre-compute ``count`` Paillier ``r^n mod n^2`` factors.

    The asynchronous pool-refill satellite: the parent appends the returned
    factors to its own randomness pool, so an INSERT burst after exhaustion
    pays inline randomness only until the background batch lands.
    """

    count: int

    def run(self, state: WorkerState) -> tuple[list, dict]:
        keypair = state.paillier
        keypair.precompute_randomness(self.count)
        factors = list(keypair._randomness_pool)
        keypair._randomness_pool.clear()
        return factors, {}

"""SEARCH: encrypted keyword search (Song, Wagner, Perrig).

SEARCH supports MySQL's ``LIKE '% word %'`` full-word matching on encrypted
text.  Following section 3.1 of the paper, the proxy splits a text value into
keywords using standard delimiters, removes duplicates, randomly permutes the
word positions and encrypts each word with the SWP scheme padded to a fixed
size.  At query time the proxy hands the server a *token* for the searched
word; a UDF checks every word ciphertext for a match without learning the
word itself, and without learning whether words repeat across rows.

SWP construction per word ``W`` (padded to ``WORD_SIZE`` bytes):

* ``X = DET_k1(W)`` split as ``X = L || R``;
* draw a random ``S`` of ``len(L)`` bytes;
* ``T = F_{k2}(S)`` truncated to ``len(R)``;
* ciphertext ``C = (L xor S) || (R xor T) || S`` (we store ``S`` alongside,
  playing the role of the stream-cipher position in the original paper).

The token for a word is ``(L, R)``; the server recovers ``S = C_left xor L``
and checks ``C_right == R xor F_{k2}(S)``.  The token key ``k2`` is shared
with the server only implicitly through the token, matching the paper's
"server learns only whether a token matched".
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.crypto.det import DET
from repro.crypto.prf import derive_key, expand
from repro.crypto.primitives import random_bytes, xor_bytes
from repro.errors import CryptoError

WORD_SIZE = 16
_SPLIT = WORD_SIZE // 2
# Unicode word semantics (\w covers letters/digits of every script): a word
# like "München" or "東京" must tokenize whole, or encrypted word search could
# never match keywords that plaintext LIKE finds.
_DELIMITERS = re.compile(r"\W+", re.UNICODE)


@dataclass(frozen=True)
class SearchToken:
    """The query token the proxy hands the DBMS server for one keyword."""

    left: bytes
    right: bytes
    prf_key: bytes


@dataclass(frozen=True)
class SearchCiphertext:
    """The SEARCH encryption of one text value: a set of word ciphertexts."""

    words: tuple[bytes, ...]

    def serialize(self) -> bytes:
        """Flatten to bytes for storage in the DBMS."""
        return b"".join(self.words)

    @classmethod
    def deserialize(cls, data: bytes) -> "SearchCiphertext":
        unit = WORD_SIZE + _SPLIT
        if len(data) % unit != 0:
            raise CryptoError("malformed SEARCH ciphertext")
        return cls(tuple(data[i : i + unit] for i in range(0, len(data), unit)))


def extract_keywords(text: str) -> list[str]:
    """Split text into lower-cased keywords using standard delimiters."""
    return [w.lower() for w in _DELIMITERS.split(text) if w]


class SEARCH:
    """Word-search encryption under a fixed column key."""

    def __init__(self, key: bytes, keep_duplicates: bool = False, cache: bool = False):
        if not key:
            raise CryptoError("SEARCH key must be non-empty")
        self.key = key
        self.keep_duplicates = keep_duplicates
        self._det = DET(derive_key(key, "search-det", length=16))
        self._prf_key = derive_key(key, "search-prf", length=16)
        #: memo of the deterministic (DET) word cores; the per-word randomness
        #: S stays fresh on every encryption, so memoising the core leaks
        #: nothing beyond what a single encryption already computes.
        self._cache_enabled = cache
        self._core_cache: dict[str, tuple[bytes, bytes]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- encryption -------------------------------------------------------
    def _pad_word(self, word: str) -> bytes:
        raw = word.encode("utf-8")[: WORD_SIZE - 1]
        return raw + b"\x00" * (WORD_SIZE - len(raw))

    def _word_core(self, word: str) -> tuple[bytes, bytes]:
        padded = self._pad_word(word)
        x = self._det.encrypt_bytes(padded)[:WORD_SIZE]
        return x[:_SPLIT], x[_SPLIT:]

    def encrypt_word(self, word: str) -> bytes:
        """Encrypt a single keyword."""
        left, right = self._word_core(word)
        s = random_bytes(_SPLIT)
        t = expand(self._prf_key, s, WORD_SIZE - _SPLIT)
        return xor_bytes(left, s) + xor_bytes(right, t) + s

    def encrypt(self, text: str) -> SearchCiphertext:
        """Encrypt a full text value: keyword extraction, dedup, permutation."""
        words = extract_keywords(text)
        if not self.keep_duplicates:
            # Deduplicate while discarding order information: sorting the
            # ciphertexts afterwards acts as the random permutation since
            # each word ciphertext is randomised.
            words = list(dict.fromkeys(words))
        ciphertexts = [self.encrypt_word(w) for w in words]
        if not self.keep_duplicates:
            ciphertexts.sort()
        return SearchCiphertext(tuple(ciphertexts))

    # -- memoised batch API (column-at-a-time paths) ----------------------
    def _word_core_cached(self, word: str) -> tuple[bytes, bytes]:
        if not self._cache_enabled:
            return self._word_core(word)
        core = self._core_cache.get(word)
        if core is None:
            self.cache_misses += 1
            core = self._core_cache[word] = self._word_core(word)
        else:
            self.cache_hits += 1
        return core

    def _encrypt_word_cached(self, word: str) -> bytes:
        left, right = self._word_core_cached(word)
        s = random_bytes(_SPLIT)
        t = expand(self._prf_key, s, WORD_SIZE - _SPLIT)
        return xor_bytes(left, s) + xor_bytes(right, t) + s

    def encrypt_many(self, texts: list[str]) -> list[SearchCiphertext]:
        """Encrypt a column of text values, memoising the DET word cores.

        Every word ciphertext still carries fresh randomness; only the
        deterministic inner DET encryption of each keyword is reused.
        """
        out = []
        for text in texts:
            if text is None:
                out.append(None)
                continue
            words = extract_keywords(text)
            if not self.keep_duplicates:
                words = list(dict.fromkeys(words))
            ciphertexts = [self._encrypt_word_cached(w) for w in words]
            if not self.keep_duplicates:
                ciphertexts.sort()
            out.append(SearchCiphertext(tuple(ciphertexts)))
        return out

    @property
    def cache_size(self) -> int:
        """Number of memoised keyword cores."""
        return len(self._core_cache)

    def cache_objects(self) -> tuple:
        """The live memo containers, walked by the cache's byte accounting."""
        return (self._core_cache,)

    def clear_cache(self) -> None:
        self._core_cache.clear()

    def reset_counters(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0

    # -- tokens and matching ----------------------------------------------
    def token(self, word: str) -> SearchToken:
        """Produce the search token for one keyword."""
        left, right = self._word_core(word.lower())
        return SearchToken(left, right, self._prf_key)

    @staticmethod
    def matches(ciphertext: SearchCiphertext, token: SearchToken) -> bool:
        """Server-side match check; uses only the token, never the column key."""
        for word_ct in ciphertext.words:
            masked_left = word_ct[:_SPLIT]
            masked_right = word_ct[_SPLIT:WORD_SIZE]
            s = word_ct[WORD_SIZE:]
            if xor_bytes(masked_left, token.left) != s:
                continue
            t = expand(token.prf_key, s, WORD_SIZE - _SPLIT)
            if xor_bytes(masked_right, t) == token.right:
                return True
        return False

"""HOM: the Paillier additively homomorphic cryptosystem.

Multiplying two Paillier ciphertexts yields an encryption of the sum of the
plaintexts: ``HOM(x) * HOM(y) mod n^2 = HOM(x + y)``.  CryptDB uses this for
``SUM`` aggregates and for in-place increments (``SET id = id + 1``), with
the multiplication performed by a server-side UDF that never sees the secret
key.  The ciphertext is ``2 * key_bits`` long (2048 bits for the paper's
1024-bit modulus).

The proxy can pre-compute the random ``r^n mod n^2`` factors used by
encryption (section 3.5.2); :meth:`PaillierKeyPair.precompute_randomness`
implements that optimisation and the Figure 12 "Proxy*" ablation disables it.
"""

from __future__ import annotations

import secrets
import struct
import sys
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.crypto.numbers import crt_pair, generate_prime, lcm, modinv
from repro.errors import CryptoError

DEFAULT_KEY_BITS = 1024

#: Tag prefixing a multi-partial packed SUM blob (see :class:`PackingConfig`).
PARTIAL_SUM_TAG = b"PSUM"


@dataclass
class PaillierPublicKey:
    """The public part (n, g) of a Paillier key pair."""

    n: int
    g: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def bits(self) -> int:
        return self.n.bit_length()


@dataclass(frozen=True)
class PackingConfig:
    """Slot layout for packing several HOM values into one ciphertext (§8.4).

    The paper keeps ciphertext expansion moderate by packing multiple
    additively-homomorphic values into a single Paillier plaintext; we pack
    one slot per HOM column of a table row.  Each slot is two subfields::

        [ count : headroom_bits + 1 ][ value : value_bits + headroom_bits ]

    * ``value`` holds the offset-encoded value ``v + 2^(value_bits-1)``
      (signed values become non-negative, so slots never borrow from their
      neighbours under homomorphic addition).
    * ``count`` holds the number of non-NULL rows folded into the slot: a
      stored row contributes 1 (or 0 for SQL NULL), and summing ciphertexts
      sums the counts.  The decryptor recovers ``sum = value - count*offset``
      and reports NULL when ``count == 0`` -- which also keeps the
      zero-rows/all-NULL ``SUM -> NULL`` semantics intact.

    ``headroom_bits`` bounds how many rows can be summed into one ciphertext
    before a subfield could overflow: a SUM aggregate closes its running
    chunk every ``chunk_rows`` rows and emits multiple partial ciphertexts
    (see :func:`encode_partial_sums`).  The default 16 bits allows 65536
    rows per chunk; tests use tiny headroom to exercise the chunking path.
    """

    value_bits: int = 64
    headroom_bits: int = 16

    def __post_init__(self):
        if self.value_bits < 2 or self.headroom_bits < 1:
            raise CryptoError("PackingConfig subfields too small")

    @property
    def offset(self) -> int:
        return 1 << (self.value_bits - 1)

    @property
    def value_width(self) -> int:
        return self.value_bits + self.headroom_bits

    @property
    def count_width(self) -> int:
        return self.headroom_bits + 1

    @property
    def slot_width(self) -> int:
        return self.value_width + self.count_width

    @property
    def chunk_rows(self) -> int:
        """Rows a SUM may fold into one ciphertext before closing the chunk."""
        return 1 << self.headroom_bits

    def slots_for(self, modulus: int) -> int:
        """How many slots fit one Paillier plaintext under ``modulus``."""
        slots = (modulus.bit_length() - 1) // self.slot_width
        if slots < 1:
            raise CryptoError(
                "Paillier modulus too small for one %d-bit packed slot"
                % self.slot_width
            )
        return slots

    # -- cell codec (one stored row) --------------------------------------
    def encode_cell(self, values: Sequence[Optional[int]]) -> int:
        """Pack one row's member values (``None`` = SQL NULL) into slots."""
        offset = self.offset
        packed = 0
        for slot, value in enumerate(values):
            if value is None:
                continue
            if not -offset <= value < offset:
                raise CryptoError(
                    "packed HOM value %d outside signed %d-bit range"
                    % (value, self.value_bits)
                )
            raw = ((1 << self.value_width) | (value + offset)) << (
                slot * self.slot_width
            )
            packed |= raw
        return packed

    def decode_slot(self, plaintext: int, slot: int) -> tuple[int, int]:
        """Return ``(count, sum)`` for one slot of a decrypted plaintext."""
        raw = (plaintext >> (slot * self.slot_width)) & (
            (1 << self.slot_width) - 1
        )
        count = raw >> self.value_width
        total = (raw & ((1 << self.value_width) - 1)) - count * self.offset
        return count, total

    def decode_cell(self, plaintext: int, slot: int) -> Optional[int]:
        """Read one *stored-row* slot back: ``None`` when the value was NULL."""
        count, total = self.decode_slot(plaintext, slot)
        return None if count == 0 else total

    def encode_delta(self, delta: int, slot: int, modulus: int) -> int:
        """Plaintext for a homomorphic ``col = col +/- k`` on one slot.

        Negative deltas wrap mod ``modulus``; the offset encoding guarantees
        the target slot's value subfield is at least ``offset > |delta|``, so
        the subtraction never borrows into the count subfield or a
        neighbouring slot.
        """
        if not -self.offset < delta < self.offset:
            raise CryptoError(
                "packed HOM delta %d outside signed %d-bit range"
                % (delta, self.value_bits)
            )
        return (delta << (slot * self.slot_width)) % modulus


# -- multi-chunk SUM partials -----------------------------------------------
def encode_partial_sums(ciphertexts: Sequence[int]) -> bytes:
    """Serialize several packed-SUM partial ciphertexts into one BLOB.

    A packed SUM aggregate that folds more than ``chunk_rows`` rows closes
    its running product and starts a new one; the finalized aggregate is
    then a *list* of ciphertexts.  This tagged encoding crosses the DBMS
    result path (both the in-memory engine and the SQLite codec pass bytes
    through untouched); the proxy decrypts each partial and adds the
    per-slot ``(count, sum)`` pairs in plaintext.
    """
    parts = [PARTIAL_SUM_TAG, struct.pack(">I", len(ciphertexts))]
    for ciphertext in ciphertexts:
        raw = ciphertext.to_bytes((ciphertext.bit_length() + 7) // 8 or 1, "big")
        parts.append(struct.pack(">I", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def is_partial_sum_blob(value) -> bool:
    return isinstance(value, (bytes, bytearray)) and bytes(value[:4]) == PARTIAL_SUM_TAG


def decode_partial_sums(blob: bytes) -> list[int]:
    """Invert :func:`encode_partial_sums`."""
    if not is_partial_sum_blob(blob):
        raise CryptoError("not a packed partial-SUM blob")
    (count,) = struct.unpack_from(">I", blob, 4)
    ciphertexts = []
    cursor = 8
    for _ in range(count):
        (length,) = struct.unpack_from(">I", blob, cursor)
        cursor += 4
        ciphertexts.append(int.from_bytes(blob[cursor : cursor + length], "big"))
        cursor += length
    if cursor != len(blob):
        raise CryptoError("trailing bytes in packed partial-SUM blob")
    return ciphertexts


@dataclass
class PaillierPrivateKey:
    """The secret part of a Paillier key pair.

    ``lam``/``mu`` implement the textbook decryption; when the prime factors
    ``p`` and ``q`` are retained (the generated default), decryption and the
    ``r^n mod n^2`` randomness precomputation run in CRT form -- two
    half-size exponentiations recombined via the Chinese remainder theorem --
    which is several times faster.  Keys deserialised without the factors
    (``p == q == 0``) transparently fall back to the lambda/mu path.
    """

    lam: int
    mu: int
    p: int = 0
    q: int = 0


class _CrtContext:
    """Precomputed CRT constants for one private key (computed once)."""

    __slots__ = ("p", "q", "p_squared", "q_squared", "hp", "hq", "exp_p", "exp_q")

    def __init__(self, n: int, p: int, q: int):
        self.p = p
        self.q = q
        self.p_squared = p * p
        self.q_squared = q * q
        # hp = (L_p(g^(p-1) mod p^2))^-1 mod p with g = n + 1, and likewise
        # for q: the per-prime analogue of mu.
        self.hp = modinv((pow(n + 1, p - 1, self.p_squared) - 1) // p % p, p)
        self.hq = modinv((pow(n + 1, q - 1, self.q_squared) - 1) // q % q, q)
        # r^n mod p^2 only needs the exponent mod the group order p*(p-1)
        # (valid whenever gcd(r, p) == 1, which encryption randomness is).
        self.exp_p = n % (p * (p - 1))
        self.exp_q = n % (q * (q - 1))

    def pow_to_n(self, r: int, n: int, n_squared: int) -> int:
        """``r^n mod n^2`` via two half-size exponentiations."""
        if r % self.p == 0 or r % self.q == 0:  # pragma: no cover - negligible
            return pow(r, n, n_squared)
        rp = pow(r % self.p_squared, self.exp_p, self.p_squared)
        rq = pow(r % self.q_squared, self.exp_q, self.q_squared)
        return crt_pair(rp, self.p_squared, rq, self.q_squared)

    def decrypt(self, ciphertext: int) -> int:
        """CRT decryption: L(c^(p-1)) * hp mod p recombined with the q half."""
        cp = pow(ciphertext % self.p_squared, self.p - 1, self.p_squared)
        mp = (cp - 1) // self.p % self.p * self.hp % self.p
        cq = pow(ciphertext % self.q_squared, self.q - 1, self.q_squared)
        mq = (cq - 1) // self.q % self.q * self.hq % self.q
        return crt_pair(mp, self.p, mq, self.q)


@dataclass
class PaillierKeyPair:
    """A full Paillier key pair plus the optional randomness pool."""

    public: PaillierPublicKey
    private: PaillierPrivateKey
    _randomness_pool: list = field(default_factory=list, repr=False)
    _crt: Optional[_CrtContext] = field(default=None, repr=False, compare=False)
    #: encryptions served from the pre-computed pool vs. paying ``r^n`` inline.
    pool_hits: int = 0
    pool_misses: int = 0
    #: Low-pool callback (§3.5.2's "pre-compute while idle", made literal):
    #: when set, it is invoked -- without blocking encryption -- whenever the
    #: randomness pool drops to ``refill_watermark`` or below, so an owner
    #: (the proxy's crypto worker pool) can refill in the background instead
    #: of stalling the first INSERT burst after exhaustion.
    refill_watermark: int = field(default=0, repr=False, compare=False)
    refill_hook: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )

    def _crt_context(self) -> Optional[_CrtContext]:
        """The CRT fast path, when the private key retains its factors."""
        if self._crt is None and self.private.p:
            self._crt = _CrtContext(self.public.n, self.private.p, self.private.q)
        return self._crt

    @classmethod
    def generate(cls, bits: int = DEFAULT_KEY_BITS) -> "PaillierKeyPair":
        """Generate a fresh key pair with an n of roughly ``bits`` bits."""
        if bits < 64:
            raise CryptoError("Paillier modulus too small")
        half = bits // 2
        while True:
            p = generate_prime(half)
            q = generate_prime(half)
            if p != q:
                n = p * q
                if n.bit_length() >= bits - 1:
                    break
        lam = lcm(p - 1, q - 1)
        g = n + 1  # standard simplification: g = n + 1
        n_sq = n * n
        # mu = (L(g^lambda mod n^2))^-1 mod n, where L(u) = (u - 1) / n
        u = pow(g, lam, n_sq)
        l_value = (u - 1) // n
        mu = modinv(l_value, n)
        return cls(PaillierPublicKey(n, g), PaillierPrivateKey(lam, mu, p, q))

    # -- randomness pre-computation (section 3.5.2) -----------------------
    def precompute_randomness(self, count: int) -> None:
        """Pre-compute ``count`` random ``r^n mod n^2`` factors.

        The proxy holds the secret key, so the pool is filled through the CRT
        fast path when the factors are available.
        """
        n = self.public.n
        n_sq = self.public.n_squared
        crt = self._crt_context()
        for _ in range(count):
            r = secrets.randbelow(n - 2) + 1
            if crt is not None:
                self._randomness_pool.append(crt.pow_to_n(r, n, n_sq))
            else:
                self._randomness_pool.append(pow(r, n, n_sq))

    @property
    def randomness_pool_size(self) -> int:
        """Number of unused pre-computed randomness factors."""
        return len(self._randomness_pool)

    @property
    def randomness_pool_bytes(self) -> int:
        """Heap bytes held by the pool (factors are all ``n^2``-sized)."""
        pool = self._randomness_pool
        size = sys.getsizeof(pool)
        if pool:
            size += len(pool) * sys.getsizeof(pool[0])
        return size

    def trim_randomness_pool(self, keep: int) -> int:
        """Discard pre-computed factors beyond ``keep``; returns how many.

        Used by the cache's byte-budget enforcement: the pool trades memory
        for future encryption latency, so shedding factors is always safe --
        the next encryptions simply pay ``r^n`` inline again.
        """
        keep = max(0, keep)
        dropped = len(self._randomness_pool) - keep
        if dropped > 0:
            del self._randomness_pool[keep:]
            return dropped
        return 0

    def _next_randomness(self) -> int:
        if self._randomness_pool:
            self.pool_hits += 1
            factor = self._randomness_pool.pop()
            if (
                self.refill_hook is not None
                and len(self._randomness_pool) <= self.refill_watermark
            ):
                self.refill_hook()
            return factor
        self.pool_misses += 1
        if self.refill_hook is not None:
            self.refill_hook()
        n = self.public.n
        r = secrets.randbelow(n - 2) + 1
        crt = self._crt_context()
        if crt is not None:
            return crt.pow_to_n(r, n, self.public.n_squared)
        return pow(r, n, self.public.n_squared)

    def reset_counters(self) -> None:
        self.pool_hits = 0
        self.pool_misses = 0

    # -- encryption / decryption ------------------------------------------
    def encrypt(self, plaintext: int) -> int:
        """Encrypt an integer in ``[0, n)``.

        Negative values should be mapped into the modular range by the caller
        (the proxy encodes signed SQL integers with an offset).
        """
        n = self.public.n
        if not 0 <= plaintext < n:
            raise CryptoError("Paillier plaintext out of range")
        n_sq = self.public.n_squared
        # g^m = (1 + n)^m = 1 + n*m mod n^2 for g = n + 1.
        g_m = (1 + n * plaintext) % n_sq
        return (g_m * self._next_randomness()) % n_sq

    def encrypt_many(self, plaintexts: list[int]) -> list[int]:
        """Encrypt a column of integers.

        HOM is probabilistic, so unlike DET/OPE there is nothing to memoise;
        the batch form exists so column encryption drains the pre-computed
        randomness pool in one pass (and so callers have one API shape for
        every scheme).
        """
        return [None if p is None else self.encrypt(p) for p in plaintexts]

    def decrypt(self, ciphertext: int) -> int:
        """Invert :meth:`encrypt` (CRT fast path when the factors are kept)."""
        n = self.public.n
        n_sq = self.public.n_squared
        if not 0 <= ciphertext < n_sq:
            raise CryptoError("Paillier ciphertext out of range")
        crt = self._crt_context()
        if crt is not None:
            return crt.decrypt(ciphertext)
        u = pow(ciphertext, self.private.lam, n_sq)
        l_value = (u - 1) // n
        return (l_value * self.private.mu) % n

    def decrypt_many(self, ciphertexts: list[int]) -> list[int]:
        """Invert :meth:`encrypt_many`."""
        return [None if c is None else self.decrypt(c) for c in ciphertexts]

    # -- packed slots (section 8.4's ciphertext packing) -------------------
    def encrypt_packed(
        self, values: Sequence[Optional[int]], config: PackingConfig
    ) -> int:
        """Encrypt one row's HOM members into a single packed ciphertext.

        ``values`` is slot-ordered; ``None`` marks SQL NULL (count 0).  The
        whole row costs *one* exponentiation instead of ``len(values)``.
        """
        return self.encrypt(config.encode_cell(values))

    def encrypt_packed_many(
        self, rows: Sequence[Sequence[Optional[int]]], config: PackingConfig
    ) -> list[int]:
        """Encrypt a batch of rows, one packed ciphertext per row."""
        return [self.encrypt(config.encode_cell(row)) for row in rows]

    def decrypt_packed(
        self, ciphertext: int, slots: int, config: PackingConfig
    ) -> list[tuple[int, int]]:
        """Decrypt once and shift/mask out every slot as ``(count, sum)``."""
        plaintext = self.decrypt(ciphertext)
        return [config.decode_slot(plaintext, slot) for slot in range(slots)]

    def decrypt_packed_sum(
        self, value, slot: int, config: PackingConfig
    ) -> tuple[int, int]:
        """Decrypt a packed SUM result -- an int ciphertext or a multi-chunk
        :func:`encode_partial_sums` blob -- and return one slot's
        ``(count, sum)``, added across partials."""
        if is_partial_sum_blob(value):
            ciphertexts = decode_partial_sums(bytes(value))
        else:
            ciphertexts = [value]
        count = total = 0
        for ciphertext in ciphertexts:
            part_count, part_total = config.decode_slot(
                self.decrypt(ciphertext), slot
            )
            count += part_count
            total += part_total
        return count, total


class Paillier:
    """Stateless homomorphic operations usable by the DBMS server's UDFs.

    The server holds only the public key; addition of ciphertexts requires no
    secrets, which is what makes the HOM UDF safe to run on the untrusted
    DBMS.
    """

    def __init__(self, public: PaillierPublicKey):
        self.public = public

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphically add two ciphertexts."""
        return (ciphertext_a * ciphertext_b) % self.public.n_squared

    def add_plain(self, ciphertext: int, plaintext: int) -> int:
        """Homomorphically add a plaintext constant to a ciphertext."""
        n = self.public.n
        g_m = (1 + n * (plaintext % n)) % self.public.n_squared
        return (ciphertext * g_m) % self.public.n_squared

    def identity(self) -> int:
        """Encryption of zero with unit randomness, the neutral element for SUM."""
        return 1

    def sum(self, ciphertexts: list[int]) -> int:
        """Homomorphically sum a list of ciphertexts (the SUM aggregate UDF)."""
        total = self.identity()
        for ciphertext in ciphertexts:
            total = self.add(total, ciphertext)
        return total

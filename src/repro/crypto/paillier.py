"""HOM: the Paillier additively homomorphic cryptosystem.

Multiplying two Paillier ciphertexts yields an encryption of the sum of the
plaintexts: ``HOM(x) * HOM(y) mod n^2 = HOM(x + y)``.  CryptDB uses this for
``SUM`` aggregates and for in-place increments (``SET id = id + 1``), with
the multiplication performed by a server-side UDF that never sees the secret
key.  The ciphertext is ``2 * key_bits`` long (2048 bits for the paper's
1024-bit modulus).

The proxy can pre-compute the random ``r^n mod n^2`` factors used by
encryption (section 3.5.2); :meth:`PaillierKeyPair.precompute_randomness`
implements that optimisation and the Figure 12 "Proxy*" ablation disables it.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.crypto.numbers import generate_prime, lcm, modinv
from repro.errors import CryptoError

DEFAULT_KEY_BITS = 1024


@dataclass
class PaillierPublicKey:
    """The public part (n, g) of a Paillier key pair."""

    n: int
    g: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def bits(self) -> int:
        return self.n.bit_length()


@dataclass
class PaillierPrivateKey:
    """The secret part (lambda, mu) of a Paillier key pair."""

    lam: int
    mu: int


@dataclass
class PaillierKeyPair:
    """A full Paillier key pair plus the optional randomness pool."""

    public: PaillierPublicKey
    private: PaillierPrivateKey
    _randomness_pool: list = field(default_factory=list, repr=False)
    #: encryptions served from the pre-computed pool vs. paying ``r^n`` inline.
    pool_hits: int = 0
    pool_misses: int = 0

    @classmethod
    def generate(cls, bits: int = DEFAULT_KEY_BITS) -> "PaillierKeyPair":
        """Generate a fresh key pair with an n of roughly ``bits`` bits."""
        if bits < 64:
            raise CryptoError("Paillier modulus too small")
        half = bits // 2
        while True:
            p = generate_prime(half)
            q = generate_prime(half)
            if p != q:
                n = p * q
                if n.bit_length() >= bits - 1:
                    break
        lam = lcm(p - 1, q - 1)
        g = n + 1  # standard simplification: g = n + 1
        n_sq = n * n
        # mu = (L(g^lambda mod n^2))^-1 mod n, where L(u) = (u - 1) / n
        u = pow(g, lam, n_sq)
        l_value = (u - 1) // n
        mu = modinv(l_value, n)
        return cls(PaillierPublicKey(n, g), PaillierPrivateKey(lam, mu))

    # -- randomness pre-computation (section 3.5.2) -----------------------
    def precompute_randomness(self, count: int) -> None:
        """Pre-compute ``count`` random ``r^n mod n^2`` factors."""
        n = self.public.n
        n_sq = self.public.n_squared
        for _ in range(count):
            r = secrets.randbelow(n - 2) + 1
            self._randomness_pool.append(pow(r, n, n_sq))

    @property
    def randomness_pool_size(self) -> int:
        """Number of unused pre-computed randomness factors."""
        return len(self._randomness_pool)

    def _next_randomness(self) -> int:
        if self._randomness_pool:
            self.pool_hits += 1
            return self._randomness_pool.pop()
        self.pool_misses += 1
        n = self.public.n
        r = secrets.randbelow(n - 2) + 1
        return pow(r, n, self.public.n_squared)

    def reset_counters(self) -> None:
        self.pool_hits = 0
        self.pool_misses = 0

    # -- encryption / decryption ------------------------------------------
    def encrypt(self, plaintext: int) -> int:
        """Encrypt an integer in ``[0, n)``.

        Negative values should be mapped into the modular range by the caller
        (the proxy encodes signed SQL integers with an offset).
        """
        n = self.public.n
        if not 0 <= plaintext < n:
            raise CryptoError("Paillier plaintext out of range")
        n_sq = self.public.n_squared
        # g^m = (1 + n)^m = 1 + n*m mod n^2 for g = n + 1.
        g_m = (1 + n * plaintext) % n_sq
        return (g_m * self._next_randomness()) % n_sq

    def encrypt_many(self, plaintexts: list[int]) -> list[int]:
        """Encrypt a column of integers.

        HOM is probabilistic, so unlike DET/OPE there is nothing to memoise;
        the batch form exists so column encryption drains the pre-computed
        randomness pool in one pass (and so callers have one API shape for
        every scheme).
        """
        return [None if p is None else self.encrypt(p) for p in plaintexts]

    def decrypt(self, ciphertext: int) -> int:
        """Invert :meth:`encrypt`."""
        n = self.public.n
        n_sq = self.public.n_squared
        if not 0 <= ciphertext < n_sq:
            raise CryptoError("Paillier ciphertext out of range")
        u = pow(ciphertext, self.private.lam, n_sq)
        l_value = (u - 1) // n
        return (l_value * self.private.mu) % n

    def decrypt_many(self, ciphertexts: list[int]) -> list[int]:
        """Invert :meth:`encrypt_many`."""
        return [None if c is None else self.decrypt(c) for c in ciphertexts]


class Paillier:
    """Stateless homomorphic operations usable by the DBMS server's UDFs.

    The server holds only the public key; addition of ciphertexts requires no
    secrets, which is what makes the HOM UDF safe to run on the untrusted
    DBMS.
    """

    def __init__(self, public: PaillierPublicKey):
        self.public = public

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphically add two ciphertexts."""
        return (ciphertext_a * ciphertext_b) % self.public.n_squared

    def add_plain(self, ciphertext: int, plaintext: int) -> int:
        """Homomorphically add a plaintext constant to a ciphertext."""
        n = self.public.n
        g_m = (1 + n * (plaintext % n)) % self.public.n_squared
        return (ciphertext * g_m) % self.public.n_squared

    def identity(self) -> int:
        """Encryption of zero with unit randomness, the neutral element for SUM."""
        return 1

    def sum(self, ciphertexts: list[int]) -> int:
        """Homomorphically sum a list of ciphertexts (the SUM aggregate UDF)."""
        total = self.identity()
        for ciphertext in ciphertexts:
            total = self.add(total, ciphertext)
        return total

"""DET: deterministic encryption enabling equality checks.

DET reveals only which values repeat within a column.  The paper builds it
from a pseudo-random permutation: a 64-bit block cipher for integers, and
AES in a CMC-like mode with a zero IV for longer byte strings (so that
equality of long prefixes is not leaked, unlike plain CBC).

Because the scheme is deterministic, ciphertexts of repeated values are
reusable: the batch APIs (:meth:`DET.encrypt_bytes_many` /
:meth:`DET.decrypt_bytes_many`) memoise plaintext/ciphertext pairs, which is
the §3.5.2 "ciphertext caching" optimisation applied to bulk loads and bulk
result decryption.  The scalar methods stay memo-free so single-statement
traffic keeps the paper's per-cell cost profile.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.crypto import modes
from repro.crypto.aes import AES
from repro.crypto.feistel import FeistelPRP
from repro.crypto.rnd import _fit_aes_key
from repro.errors import CryptoError


class DET:
    """Deterministic encryption under a fixed column key."""

    def __init__(self, key: bytes, cache: bool = False):
        if not key:
            raise CryptoError("DET key must be non-empty")
        self.key = key
        self._aes = AES(_fit_aes_key(key))
        self._prp64 = FeistelPRP(key, block_size=8)
        self._cache_enabled = cache
        self._encrypt_cache: dict[bytes, bytes] = {}
        self._decrypt_cache: dict[bytes, bytes] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- byte strings -----------------------------------------------------
    def encrypt_bytes(self, plaintext: bytes) -> bytes:
        """Deterministically encrypt an arbitrary byte string."""
        return modes.cmc_encrypt(self._aes, plaintext)

    def decrypt_bytes(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt_bytes`."""
        return modes.cmc_decrypt(self._aes, ciphertext)

    # -- memoised batch API (column-at-a-time paths) ----------------------
    def encrypt_bytes_many(self, plaintexts: Sequence[Optional[bytes]]) -> list[Optional[bytes]]:
        """Encrypt a column of byte strings, computing each distinct value once.

        The memo persists across batches when the instance was created with
        ``cache=True``; otherwise deduplication is local to this call.  The
        memo maps this key's input bytes to output bytes, so (unlike the
        proxy's composed Eq-onion memos, which embed JOIN-ADJ components) it
        never needs invalidating for the lifetime of the key.
        """
        memo = self._encrypt_cache if self._cache_enabled else {}
        out: list[Optional[bytes]] = []
        for plaintext in plaintexts:
            if plaintext is None:
                out.append(None)
                continue
            cached = memo.get(plaintext)
            if cached is None:
                self.cache_misses += 1
                cached = modes.cmc_encrypt(self._aes, plaintext)
                memo[plaintext] = cached
                if self._cache_enabled:
                    self._decrypt_cache[cached] = plaintext
            else:
                self.cache_hits += 1
            out.append(cached)
        return out

    def decrypt_bytes_many(self, ciphertexts: Sequence[Optional[bytes]]) -> list[Optional[bytes]]:
        """Invert :meth:`encrypt_bytes_many` (deduplicating equal ciphertexts)."""
        memo = self._decrypt_cache if self._cache_enabled else {}
        out: list[Optional[bytes]] = []
        for ciphertext in ciphertexts:
            if ciphertext is None:
                out.append(None)
                continue
            cached = memo.get(ciphertext)
            if cached is None:
                self.cache_misses += 1
                cached = modes.cmc_decrypt(self._aes, ciphertext)
                memo[ciphertext] = cached
                if self._cache_enabled:
                    self._encrypt_cache[cached] = ciphertext
            else:
                self.cache_hits += 1
            out.append(cached)
        return out

    @property
    def cache_size(self) -> int:
        """Number of memoised plaintext/ciphertext pairs."""
        return len(self._encrypt_cache)

    def clear_cache(self) -> None:
        """Drop all memoised ciphertexts (e.g. after a key adjustment)."""
        self._encrypt_cache.clear()
        self._decrypt_cache.clear()

    def reset_counters(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0

    # -- integers ---------------------------------------------------------
    def encrypt_int(self, value: int) -> int:
        """Deterministically encrypt a 64-bit unsigned integer (PRP)."""
        if not 0 <= value < (1 << 64):
            raise CryptoError("DET integer encryption expects a 64-bit value")
        return self._prp64.encrypt_int(value)

    def decrypt_int(self, ciphertext: int) -> int:
        """Invert :meth:`encrypt_int`."""
        if not 0 <= ciphertext < (1 << 64):
            raise CryptoError("DET integer decryption expects a 64-bit value")
        return self._prp64.decrypt_int(ciphertext)

"""DET: deterministic encryption enabling equality checks.

DET reveals only which values repeat within a column.  The paper builds it
from a pseudo-random permutation: a 64-bit block cipher for integers, and
AES in a CMC-like mode with a zero IV for longer byte strings (so that
equality of long prefixes is not leaked, unlike plain CBC).
"""

from __future__ import annotations

from repro.crypto import modes
from repro.crypto.aes import AES
from repro.crypto.feistel import FeistelPRP
from repro.crypto.rnd import _fit_aes_key
from repro.errors import CryptoError


class DET:
    """Deterministic encryption under a fixed column key."""

    def __init__(self, key: bytes):
        if not key:
            raise CryptoError("DET key must be non-empty")
        self.key = key
        self._aes = AES(_fit_aes_key(key))
        self._prp64 = FeistelPRP(key, block_size=8)

    # -- byte strings -----------------------------------------------------
    def encrypt_bytes(self, plaintext: bytes) -> bytes:
        """Deterministically encrypt an arbitrary byte string."""
        return modes.cmc_encrypt(self._aes, plaintext)

    def decrypt_bytes(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt_bytes`."""
        return modes.cmc_decrypt(self._aes, ciphertext)

    # -- integers ---------------------------------------------------------
    def encrypt_int(self, value: int) -> int:
        """Deterministically encrypt a 64-bit unsigned integer (PRP)."""
        if not 0 <= value < (1 << 64):
            raise CryptoError("DET integer encryption expects a 64-bit value")
        return self._prp64.encrypt_int(value)

    def decrypt_int(self, ciphertext: int) -> int:
        """Invert :meth:`encrypt_int`."""
        if not 0 <= ciphertext < (1 << 64):
            raise CryptoError("DET integer decryption expects a 64-bit value")
        return self._prp64.decrypt_int(ciphertext)

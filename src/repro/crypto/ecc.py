"""Prime-field elliptic-curve group used by the adjustable join (JOIN-ADJ).

The paper implements JOIN-ADJ with a NIST-approved curve via NTL; we provide
a self-contained implementation of the NIST P-192 curve: point addition,
doubling, scalar multiplication (double-and-add) and point serialisation.
Security of JOIN-ADJ rests on the Elliptic-Curve Decisional Diffie-Hellman
assumption in this group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.numbers import modinv
from repro.errors import CryptoError

# NIST P-192 domain parameters (FIPS 186-4).
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF
A = -3 % P
B = 0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1
ORDER = 0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831
GX = 0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012
GY = 0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811


@dataclass(frozen=True)
class Point:
    """A point on the curve; ``None`` coordinates encode the point at infinity."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def serialize(self) -> bytes:
        """Uncompressed serialisation (used as the JOIN-ADJ ciphertext)."""
        if self.is_infinity:
            return b"\x00"
        assert self.x is not None and self.y is not None
        return b"\x04" + self.x.to_bytes(24, "big") + self.y.to_bytes(24, "big")

    @classmethod
    def deserialize(cls, data: bytes) -> "Point":
        if data == b"\x00":
            return INFINITY
        if len(data) != 49 or data[0] != 0x04:
            raise CryptoError("malformed curve point")
        x = int.from_bytes(data[1:25], "big")
        y = int.from_bytes(data[25:], "big")
        point = cls(x, y)
        if not is_on_curve(point):
            raise CryptoError("point is not on the curve")
        return point


INFINITY = Point(None, None)
GENERATOR = Point(GX, GY)


def is_on_curve(point: Point) -> bool:
    """Check the curve equation y^2 = x^3 + ax + b (mod p)."""
    if point.is_infinity:
        return True
    assert point.x is not None and point.y is not None
    return (point.y * point.y - (point.x ** 3 + A * point.x + B)) % P == 0


def point_add(p1: Point, p2: Point) -> Point:
    """Add two curve points."""
    if p1.is_infinity:
        return p2
    if p2.is_infinity:
        return p1
    assert p1.x is not None and p1.y is not None
    assert p2.x is not None and p2.y is not None
    if p1.x == p2.x and (p1.y + p2.y) % P == 0:
        return INFINITY
    if p1.x == p2.x and p1.y == p2.y:
        slope = (3 * p1.x * p1.x + A) * modinv(2 * p1.y, P) % P
    else:
        slope = (p2.y - p1.y) * modinv(p2.x - p1.x, P) % P
    x3 = (slope * slope - p1.x - p2.x) % P
    y3 = (slope * (p1.x - x3) - p1.y) % P
    return Point(x3, y3)


def scalar_multiply(scalar: int, point: Point) -> Point:
    """Compute ``scalar * point`` with double-and-add."""
    scalar %= ORDER
    if scalar == 0 or point.is_infinity:
        return INFINITY
    result = INFINITY
    addend = point
    while scalar:
        if scalar & 1:
            result = point_add(result, addend)
        addend = point_add(addend, addend)
        scalar >>= 1
    return result

"""Prime-field elliptic-curve group used by the adjustable join (JOIN-ADJ).

The paper implements JOIN-ADJ with a NIST-approved curve via NTL; we provide
a self-contained implementation of the NIST P-192 curve.  Security of
JOIN-ADJ rests on the Elliptic-Curve Decisional Diffie-Hellman assumption in
this group.

Profiling the TPC-C mix showed the affine textbook arithmetic (one modular
inversion per point addition) dominating proxy time, so the hot paths use:

* **Jacobian projective coordinates** -- additions and doublings are
  inversion-free; a point is converted back to affine with a single inversion
  at the very end of a scalar multiplication.
* **Windowed NAF (w=5) scalar multiplication** for arbitrary points (the
  server-side JOIN-ADJ re-keying), with the eight odd multiples normalised to
  affine via one batched inversion so the main loop uses cheap mixed adds.
* **A precomputed fixed-base comb table for ``GENERATOR``** -- every
  ``JoinAdj.hash_value`` multiplies the fixed base, and the comb turns each
  hash into at most 48 inversion-free mixed additions with no doublings.
* **Montgomery batch inversion** (:func:`batch_modinv`) so whole columns of
  points (the batched re-key UDF) share one inversion when they return to
  affine form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.numbers import modinv
from repro.errors import CryptoError

# NIST P-192 domain parameters (FIPS 186-4).
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF
A = -3 % P
B = 0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1
ORDER = 0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831
GX = 0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012
GY = 0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811


@dataclass(frozen=True)
class Point:
    """A point on the curve; ``None`` coordinates encode the point at infinity."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def serialize(self) -> bytes:
        """Uncompressed serialisation (used as the JOIN-ADJ ciphertext)."""
        if self.is_infinity:
            return b"\x00"
        assert self.x is not None and self.y is not None
        return b"\x04" + self.x.to_bytes(24, "big") + self.y.to_bytes(24, "big")

    @classmethod
    def deserialize(cls, data: bytes) -> "Point":
        if data == b"\x00":
            return INFINITY
        if len(data) != 49 or data[0] != 0x04:
            raise CryptoError("malformed curve point")
        x = int.from_bytes(data[1:25], "big")
        y = int.from_bytes(data[25:], "big")
        point = cls(x, y)
        if not is_on_curve(point):
            raise CryptoError("point is not on the curve")
        return point


INFINITY = Point(None, None)
GENERATOR = Point(GX, GY)


def is_on_curve(point: Point) -> bool:
    """Check the curve equation y^2 = x^3 + ax + b (mod p)."""
    if point.is_infinity:
        return True
    assert point.x is not None and point.y is not None
    return (point.y * point.y - (point.x ** 3 + A * point.x + B)) % P == 0


def batch_modinv(values: list[int], modulus: int) -> list[int]:
    """Invert every value with one modular inversion (Montgomery's trick)."""
    if not values:
        return []
    prefix = []
    acc = 1
    for value in values:
        if value % modulus == 0:
            raise CryptoError("value has no modular inverse")
        acc = acc * value % modulus
        prefix.append(acc)
    inverse = modinv(acc, modulus)
    out = [0] * len(values)
    for i in range(len(values) - 1, 0, -1):
        out[i] = inverse * prefix[i - 1] % modulus
        inverse = inverse * values[i] % modulus
    out[0] = inverse
    return out


# ---------------------------------------------------------------------------
# Jacobian coordinates: (X, Y, Z) with x = X/Z^2, y = Y/Z^3; Z == 0 is the
# point at infinity.  All formulas below are for a = -3 (NIST curves).
# ---------------------------------------------------------------------------

_JAC_INFINITY = (1, 1, 0)


def _jac_double(point: tuple[int, int, int]) -> tuple[int, int, int]:
    X1, Y1, Z1 = point
    if Z1 == 0:
        return _JAC_INFINITY
    delta = Z1 * Z1 % P
    gamma = Y1 * Y1 % P
    beta = X1 * gamma % P
    alpha = 3 * (X1 - delta) * (X1 + delta) % P
    X3 = (alpha * alpha - 8 * beta) % P
    Z3 = ((Y1 + Z1) * (Y1 + Z1) - gamma - delta) % P
    Y3 = (alpha * (4 * beta - X3) - 8 * gamma * gamma) % P
    return (X3, Y3, Z3)


def _jac_add(p1: tuple[int, int, int], p2: tuple[int, int, int]) -> tuple[int, int, int]:
    X1, Y1, Z1 = p1
    X2, Y2, Z2 = p2
    if Z1 == 0:
        return p2
    if Z2 == 0:
        return p1
    Z1Z1 = Z1 * Z1 % P
    Z2Z2 = Z2 * Z2 % P
    U1 = X1 * Z2Z2 % P
    U2 = X2 * Z1Z1 % P
    S1 = Y1 * Z2 % P * Z2Z2 % P
    S2 = Y2 * Z1 % P * Z1Z1 % P
    if U1 == U2:
        if S1 != S2:
            return _JAC_INFINITY
        return _jac_double(p1)
    H = (U2 - U1) % P
    R = (S2 - S1) % P
    HH = H * H % P
    HHH = H * HH % P
    V = U1 * HH % P
    X3 = (R * R - HHH - 2 * V) % P
    Y3 = (R * (V - X3) - S1 * HHH) % P
    Z3 = Z1 * Z2 % P * H % P
    return (X3, Y3, Z3)


def _jac_add_affine(p1: tuple[int, int, int], x2: int, y2: int) -> tuple[int, int, int]:
    """Mixed addition of a Jacobian point and an affine point (Z2 == 1)."""
    X1, Y1, Z1 = p1
    if Z1 == 0:
        return (x2, y2, 1)
    Z1Z1 = Z1 * Z1 % P
    U2 = x2 * Z1Z1 % P
    S2 = y2 * Z1 % P * Z1Z1 % P
    if X1 == U2:
        if Y1 != S2:
            return _JAC_INFINITY
        return _jac_double(p1)
    H = (U2 - X1) % P
    R = (S2 - Y1) % P
    HH = H * H % P
    HHH = H * HH % P
    V = X1 * HH % P
    X3 = (R * R - HHH - 2 * V) % P
    Y3 = (R * (V - X3) - Y1 * HHH) % P
    Z3 = Z1 * H % P
    return (X3, Y3, Z3)


def _jac_to_affine(point: tuple[int, int, int]) -> Point:
    X, Y, Z = point
    if Z == 0:
        return INFINITY
    z_inv = modinv(Z, P)
    z_inv2 = z_inv * z_inv % P
    return Point(X * z_inv2 % P, Y * z_inv2 % P * z_inv % P)


def _jac_to_affine_many(points: list[tuple[int, int, int]]) -> list[Point]:
    """Convert a batch of Jacobian points with a single modular inversion."""
    finite = [(i, pt) for i, pt in enumerate(points) if pt[2] != 0]
    out: list[Point] = [INFINITY] * len(points)
    if not finite:
        return out
    inverses = batch_modinv([pt[2] for _, pt in finite], P)
    for (i, (X, Y, _)), z_inv in zip(finite, inverses):
        z_inv2 = z_inv * z_inv % P
        out[i] = Point(X * z_inv2 % P, Y * z_inv2 % P * z_inv % P)
    return out


# ---------------------------------------------------------------------------
# Fixed-base comb table for GENERATOR.  Window i holds d * 16^i * G in affine
# form for every 4-bit digit d, so a base multiplication is at most 48 mixed
# additions and no doublings (section 3.5.2-style precomputation: the work
# moves to import time and is shared by every JOIN-ADJ hash).
# ---------------------------------------------------------------------------

_COMB_WINDOW = 4
_COMB_DIGITS = 1 << _COMB_WINDOW


def _build_base_table() -> list[list[tuple[int, int]]]:
    windows = (ORDER.bit_length() + _COMB_WINDOW - 1) // _COMB_WINDOW
    jacobian_rows: list[list[tuple[int, int, int]]] = []
    base = (GX, GY, 1)
    for _ in range(windows):
        acc = base
        row = []
        for _digit in range(1, _COMB_DIGITS):
            row.append(acc)
            acc = _jac_add(acc, base)
        jacobian_rows.append(row)
        base = acc  # 16 * previous window base
    flat = [pt for row in jacobian_rows for pt in row]
    affine = _jac_to_affine_many(flat)
    table: list[list[tuple[int, int]]] = []
    position = 0
    for _ in range(windows):
        row = [(0, 0)]  # digit 0 is never looked up
        for _digit in range(1, _COMB_DIGITS):
            point = affine[position]
            position += 1
            assert point.x is not None and point.y is not None
            row.append((point.x, point.y))
        table.append(row)
    return table


_BASE_TABLE = _build_base_table()


def _jac_base_multiply(scalar: int) -> tuple[int, int, int]:
    """``scalar * GENERATOR`` in Jacobian form via the comb table."""
    acc = _JAC_INFINITY
    window = 0
    while scalar:
        digit = scalar & (_COMB_DIGITS - 1)
        if digit:
            x, y = _BASE_TABLE[window][digit]
            acc = _jac_add_affine(acc, x, y)
        scalar >>= _COMB_WINDOW
        window += 1
    return acc


# ---------------------------------------------------------------------------
# Windowed-NAF multiplication for arbitrary points (JOIN-ADJ re-keying,
# per-principal ElGamal).
# ---------------------------------------------------------------------------

_WNAF_WIDTH = 5
_WNAF_MOD = 1 << _WNAF_WIDTH
_WNAF_HALF = 1 << (_WNAF_WIDTH - 1)


def _wnaf_digits(scalar: int) -> list[int]:
    """Width-5 non-adjacent form, least-significant digit first."""
    digits = []
    while scalar:
        if scalar & 1:
            digit = scalar & (_WNAF_MOD - 1)
            if digit >= _WNAF_HALF:
                digit -= _WNAF_MOD
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def _odd_multiples_jacobian(point: Point) -> list[tuple[int, int, int]]:
    """Jacobian [1P, 3P, 5P, ..., 15P] for the wNAF main loop."""
    assert point.x is not None and point.y is not None
    first = (point.x, point.y, 1)
    doubled = _jac_double(first)
    odds = [first]
    for _ in range(_WNAF_HALF // 2 - 1):
        odds.append(_jac_add(odds[-1], doubled))
    return odds


def _jac_wnaf_multiply(
    digits: list[int], odd_multiples: list[tuple[int, int]]
) -> tuple[int, int, int]:
    acc = _JAC_INFINITY
    for digit in reversed(digits):
        acc = _jac_double(acc)
        if digit > 0:
            x, y = odd_multiples[(digit - 1) >> 1]
            acc = _jac_add_affine(acc, x, y)
        elif digit < 0:
            x, y = odd_multiples[(-digit - 1) >> 1]
            acc = _jac_add_affine(acc, x, (P - y) % P)
    return acc


def _affine_pairs(points: list[Point]) -> list[tuple[int, int]]:
    pairs = []
    for point in points:
        assert point.x is not None and point.y is not None
        pairs.append((point.x, point.y))
    return pairs


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def point_add(p1: Point, p2: Point) -> Point:
    """Add two curve points (affine one-shot form; hot paths use Jacobian)."""
    if p1.is_infinity:
        return p2
    if p2.is_infinity:
        return p1
    assert p1.x is not None and p1.y is not None
    assert p2.x is not None and p2.y is not None
    if p1.x == p2.x and (p1.y + p2.y) % P == 0:
        return INFINITY
    if p1.x == p2.x and p1.y == p2.y:
        slope = (3 * p1.x * p1.x + A) * modinv(2 * p1.y, P) % P
    else:
        slope = (p2.y - p1.y) * modinv(p2.x - p1.x, P) % P
    x3 = (slope * slope - p1.x - p2.x) % P
    y3 = (slope * (p1.x - x3) - p1.y) % P
    return Point(x3, y3)


def scalar_multiply_base(scalar: int) -> Point:
    """Compute ``scalar * GENERATOR`` via the fixed-base comb table."""
    scalar %= ORDER
    if scalar == 0:
        return INFINITY
    return _jac_to_affine(_jac_base_multiply(scalar))


def scalar_multiply(scalar: int, point: Point) -> Point:
    """Compute ``scalar * point`` (comb for the base, wNAF otherwise)."""
    scalar %= ORDER
    if scalar == 0 or point.is_infinity:
        return INFINITY
    if point.x == GX and point.y == GY:
        return _jac_to_affine(_jac_base_multiply(scalar))
    digits = _wnaf_digits(scalar)
    odd_multiples = _affine_pairs(_jac_to_affine_many(_odd_multiples_jacobian(point)))
    return _jac_to_affine(_jac_wnaf_multiply(digits, odd_multiples))


def scalar_multiply_base_many(scalars: list[int]) -> list[Point]:
    """``[s * GENERATOR for s in scalars]`` with one batched final inversion."""
    reduced = [s % ORDER for s in scalars]
    return _jac_to_affine_many(
        [_jac_base_multiply(s) if s else _JAC_INFINITY for s in reduced]
    )


def scalar_multiply_many(scalar: int, points: list[Point]) -> list[Point]:
    """Multiply many points by one scalar (the batched re-key UDF shape).

    The wNAF digit expansion is computed once; the per-point odd-multiple
    tables are normalised to affine with one batched inversion across the
    whole input, and the results share a second batched inversion, so the
    entire column costs two modular inversions in total.
    """
    scalar %= ORDER
    if scalar == 0 or not points:
        return [INFINITY] * len(points)
    digits = _wnaf_digits(scalar)
    finite = [(i, pt) for i, pt in enumerate(points) if not pt.is_infinity]
    tables = [_odd_multiples_jacobian(pt) for _, pt in finite]
    flat_affine = _jac_to_affine_many([entry for table in tables for entry in table])
    per_point = len(tables[0]) if tables else 0
    results = [_JAC_INFINITY] * len(points)
    for slot, (i, _point) in enumerate(finite):
        odd_multiples = _affine_pairs(
            flat_affine[slot * per_point : (slot + 1) * per_point]
        )
        results[i] = _jac_wnaf_multiply(digits, odd_multiples)
    return _jac_to_affine_many(results)

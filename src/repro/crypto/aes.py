"""Pure-Python AES block cipher (FIPS-197).

CryptDB uses AES as the workhorse block cipher for the RND and DET layers on
128-bit (and larger) values, and as the PRP underlying key derivation.  This
is a straightforward, table-driven implementation of the forward and inverse
ciphers for 128/192/256-bit keys operating on single 16-byte blocks; the
block modes (CBC, CMC, CTR) live in :mod:`repro.crypto.modes`.
"""

from __future__ import annotations

from repro.errors import CryptoError

BLOCK_SIZE = 16

# The AES S-box and its inverse are generated from the multiplicative inverse
# in GF(2^8) followed by the affine transform, so we do not need to embed the
# 256-entry tables as literals.


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254 in GF(2^8)
    result = 1
    base = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, base)
        base = _gf_mul(base, base)
        exponent >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = _gf_inverse(value)
        transformed = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
            ) & 1
            c = (0x63 >> bit) & 1
            transformed |= (b ^ c) << bit
        sbox[value] = transformed
        inv_sbox[transformed] = value
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()
_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))

# Pre-computed GF(2^8) multiplication tables for the (inverse) MixColumns
# constants, so the hot per-block loops are pure table lookups instead of
# bit-by-bit field multiplications.
_MUL2 = [_gf_mul(x, 2) for x in range(256)]
_MUL3 = [_gf_mul(x, 3) for x in range(256)]
_MUL9 = [_gf_mul(x, 9) for x in range(256)]
_MUL11 = [_gf_mul(x, 11) for x in range(256)]
_MUL13 = [_gf_mul(x, 13) for x in range(256)]
_MUL14 = [_gf_mul(x, 14) for x in range(256)]


class AES:
    """AES block cipher for a fixed key.

    Parameters
    ----------
    key:
        16, 24 or 32 bytes.
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise CryptoError("AES key must be 16, 24 or 32 bytes")
        self.key = key
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    # -- key schedule -----------------------------------------------------
    def _expand_key(self, key: bytes) -> list[list[int]]:
        nk = len(key) // 4
        nr = self._rounds
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([w ^ t for w, t in zip(words[i - nk], temp)])
        # Group into 16-byte round keys laid out column-major like the state.
        round_keys = []
        for r in range(nr + 1):
            rk = []
            for c in range(4):
                rk.extend(words[4 * r + c])
            round_keys.append(rk)
        return round_keys

    # -- state helpers ----------------------------------------------------
    @staticmethod
    def _bytes_to_state(block: bytes) -> list[int]:
        return list(block)

    @staticmethod
    def _state_to_bytes(state: list[int]) -> bytes:
        return bytes(state)

    @staticmethod
    def _add_round_key(state: list[int], round_key: list[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: list[int], box: list[int]) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # state[i] holds column i//4, row i%4 (column-major like FIPS-197).
        for row in range(1, 4):
            column_values = [state[row + 4 * col] for col in range(4)]
            shifted = column_values[row:] + column_values[:row]
            for col in range(4):
                state[row + 4 * col] = shifted[col]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            column_values = [state[row + 4 * col] for col in range(4)]
            shifted = column_values[-row:] + column_values[:-row]
            for col in range(4):
                state[row + 4 * col] = shifted[col]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        mul2, mul3 = _MUL2, _MUL3
        for col in range(0, 16, 4):
            a0, a1, a2, a3 = state[col : col + 4]
            state[col + 0] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3
            state[col + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3
            state[col + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3]
            state[col + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3]

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        mul9, mul11, mul13, mul14 = _MUL9, _MUL11, _MUL13, _MUL14
        for col in range(0, 16, 4):
            a0, a1, a2, a3 = state[col : col + 4]
            state[col + 0] = mul14[a0] ^ mul11[a1] ^ mul13[a2] ^ mul9[a3]
            state[col + 1] = mul9[a0] ^ mul14[a1] ^ mul11[a2] ^ mul13[a3]
            state[col + 2] = mul13[a0] ^ mul9[a1] ^ mul14[a2] ^ mul11[a3]
            state[col + 3] = mul11[a0] ^ mul13[a1] ^ mul9[a2] ^ mul14[a3]

    # -- public API -------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError("AES operates on 16-byte blocks")
        state = self._bytes_to_state(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, self._rounds):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return self._state_to_bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError("AES operates on 16-byte blocks")
        state = self._bytes_to_state(block)
        self._add_round_key(state, self._round_keys[self._rounds])
        for r in range(self._rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[r])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return self._state_to_bytes(state)

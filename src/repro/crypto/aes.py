"""Pure-Python AES block cipher (FIPS-197).

CryptDB uses AES as the workhorse block cipher for the RND and DET layers on
128-bit (and larger) values, and as the PRP underlying key derivation.  The
per-round work dominated proxy profiles, so both directions run as full
T-table ciphers: SubBytes, ShiftRows and MixColumns are fused into four
256-entry 32-bit tables per direction (generated at import time from the
algebraic S-box, like the S-box itself), and the state is four word-packed
columns instead of sixteen bytes.  Decryption uses the equivalent inverse
cipher of FIPS-197 §5.3.5, with InvMixColumns folded into the decryption key
schedule so the inverse rounds are pure table lookups too.  The block modes
(CBC, CMC, CTR) live in :mod:`repro.crypto.modes`.
"""

from __future__ import annotations

from repro.errors import CryptoError

BLOCK_SIZE = 16

# The AES S-box and its inverse are generated from the multiplicative inverse
# in GF(2^8) followed by the affine transform, so we do not need to embed the
# 256-entry tables as literals.


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254 in GF(2^8)
    result = 1
    base = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, base)
        base = _gf_mul(base, base)
        exponent >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = _gf_inverse(value)
        transformed = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
            ) & 1
            c = (0x63 >> bit) & 1
            transformed |= (b ^ c) << bit
        sbox[value] = transformed
        inv_sbox[transformed] = value
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()
_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))

# Pre-computed GF(2^8) multiplication tables for the (inverse) MixColumns
# constants, used to build the T-tables and the decryption key schedule.
_MUL2 = [_gf_mul(x, 2) for x in range(256)]
_MUL3 = [_gf_mul(x, 3) for x in range(256)]
_MUL9 = [_gf_mul(x, 9) for x in range(256)]
_MUL11 = [_gf_mul(x, 11) for x in range(256)]
_MUL13 = [_gf_mul(x, 13) for x in range(256)]
_MUL14 = [_gf_mul(x, 14) for x in range(256)]


def _ror8(word: int) -> int:
    return ((word >> 8) | (word << 24)) & 0xFFFFFFFF


def _build_t_tables() -> tuple[tuple[int, ...], ...]:
    """Fused SubBytes+MixColumns tables for both cipher directions.

    ``T0[x]`` packs the MixColumns image of a row-0 substituted byte into one
    big-endian column word; ``T1..T3`` are its byte rotations (the images of
    rows 1..3).  ``IT0..IT3`` are the same construction over the inverse
    S-box and InvMixColumns matrix.
    """
    t0, it0 = [], []
    for x in range(256):
        s = _SBOX[x]
        t0.append((_MUL2[s] << 24) | (s << 16) | (s << 8) | _MUL3[s])
        s = _INV_SBOX[x]
        it0.append((_MUL14[s] << 24) | (_MUL9[s] << 16) | (_MUL13[s] << 8) | _MUL11[s])
    tables = [tuple(t0)]
    for _ in range(3):
        tables.append(tuple(_ror8(t) for t in tables[-1]))
    inverse_tables = [tuple(it0)]
    for _ in range(3):
        inverse_tables.append(tuple(_ror8(t) for t in inverse_tables[-1]))
    return (*tables, *inverse_tables)


_T0, _T1, _T2, _T3, _IT0, _IT1, _IT2, _IT3 = _build_t_tables()


def _sub_word(word: int) -> int:
    sbox = _SBOX
    return (
        (sbox[(word >> 24) & 0xFF] << 24)
        | (sbox[(word >> 16) & 0xFF] << 16)
        | (sbox[(word >> 8) & 0xFF] << 8)
        | sbox[word & 0xFF]
    )


def _inv_mix_word(word: int) -> int:
    """InvMixColumns on one packed column (decryption key schedule only)."""
    a0 = (word >> 24) & 0xFF
    a1 = (word >> 16) & 0xFF
    a2 = (word >> 8) & 0xFF
    a3 = word & 0xFF
    return (
        ((_MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]) << 24)
        | ((_MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]) << 16)
        | ((_MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]) << 8)
        | (_MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3])
    )


class AES:
    """AES block cipher for a fixed key.

    Parameters
    ----------
    key:
        16, 24 or 32 bytes.
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise CryptoError("AES key must be 16, 24 or 32 bytes")
        self.key = key
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        self._inverse_round_keys = self._inverse_key_schedule(self._round_keys)

    # -- key schedule -----------------------------------------------------
    def _expand_key(self, key: bytes) -> list[tuple[int, int, int, int]]:
        """Round keys as four packed column words each (FIPS-197 §5.2)."""
        nk = len(key) // 4
        nr = self._rounds
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                temp = _sub_word(((temp << 8) | (temp >> 24)) & 0xFFFFFFFF)
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = _sub_word(temp)
            words.append(words[i - nk] ^ temp)
        return [tuple(words[4 * r : 4 * r + 4]) for r in range(nr + 1)]

    @staticmethod
    def _inverse_key_schedule(
        round_keys: list[tuple[int, int, int, int]]
    ) -> list[tuple[int, int, int, int]]:
        """Equivalent-inverse-cipher schedule: reversed, InvMixColumns inside."""
        inverse = [round_keys[-1]]
        for rk in round_keys[-2:0:-1]:
            inverse.append(tuple(_inv_mix_word(w) for w in rk))
        inverse.append(round_keys[0])
        return inverse

    # -- public API -------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError("AES operates on 16-byte blocks")
        round_keys = self._round_keys
        k0, k1, k2, k3 = round_keys[0]
        s0 = int.from_bytes(block[0:4], "big") ^ k0
        s1 = int.from_bytes(block[4:8], "big") ^ k1
        s2 = int.from_bytes(block[8:12], "big") ^ k2
        s3 = int.from_bytes(block[12:16], "big") ^ k3
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        for r in range(1, self._rounds):
            k0, k1, k2, k3 = round_keys[r]
            u0 = t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF] ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ k0
            u1 = t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF] ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ k1
            u2 = t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF] ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ k2
            u3 = t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF] ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ k3
            s0, s1, s2, s3 = u0, u1, u2, u3
        sbox = _SBOX
        k0, k1, k2, k3 = round_keys[self._rounds]
        out0 = (
            (sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]
        ) ^ k0
        out1 = (
            (sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]
        ) ^ k1
        out2 = (
            (sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]
        ) ^ k2
        out3 = (
            (sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]
        ) ^ k3
        return (
            out0.to_bytes(4, "big") + out1.to_bytes(4, "big")
            + out2.to_bytes(4, "big") + out3.to_bytes(4, "big")
        )

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block (equivalent inverse cipher)."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError("AES operates on 16-byte blocks")
        round_keys = self._inverse_round_keys
        k0, k1, k2, k3 = round_keys[0]
        s0 = int.from_bytes(block[0:4], "big") ^ k0
        s1 = int.from_bytes(block[4:8], "big") ^ k1
        s2 = int.from_bytes(block[8:12], "big") ^ k2
        s3 = int.from_bytes(block[12:16], "big") ^ k3
        t0, t1, t2, t3 = _IT0, _IT1, _IT2, _IT3
        for r in range(1, self._rounds):
            k0, k1, k2, k3 = round_keys[r]
            u0 = t0[s0 >> 24] ^ t1[(s3 >> 16) & 0xFF] ^ t2[(s2 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ k0
            u1 = t0[s1 >> 24] ^ t1[(s0 >> 16) & 0xFF] ^ t2[(s3 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ k1
            u2 = t0[s2 >> 24] ^ t1[(s1 >> 16) & 0xFF] ^ t2[(s0 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ k2
            u3 = t0[s3 >> 24] ^ t1[(s2 >> 16) & 0xFF] ^ t2[(s1 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ k3
            s0, s1, s2, s3 = u0, u1, u2, u3
        sbox = _INV_SBOX
        k0, k1, k2, k3 = round_keys[self._rounds]
        out0 = (
            (sbox[s0 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]
        ) ^ k0
        out1 = (
            (sbox[s1 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]
        ) ^ k1
        out2 = (
            (sbox[s2 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]
        ) ^ k2
        out3 = (
            (sbox[s3 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]
        ) ^ k3
        return (
            out0.to_bytes(4, "big") + out1.to_bytes(4, "big")
            + out2.to_bytes(4, "big") + out3.to_bytes(4, "big")
        )

"""JOIN and JOIN-ADJ: the adjustable-join cryptographic primitive (section 3.4).

``JOIN-ADJ_K(v) = (K * PRF_K0(v)) * P`` where ``P`` is a public curve point
and ``K0`` is a PRF key shared across columns (both derived from the master
key).  Two columns with keys ``K`` and ``K'`` can be made joinable by giving
the DBMS server ``delta = K / K' (mod group order)``: the server re-scales
each JOIN-ADJ value of the second column by ``delta`` without ever seeing the
plaintexts, after which equal plaintexts in the two columns have equal
JOIN-ADJ values.

The full JOIN onion layer is ``JOIN(v) = JOIN-ADJ(v) || DET(v)``: the server
compares the JOIN-ADJ component for equality, and the proxy decrypts the DET
component to recover ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import ecc
from repro.crypto.det import DET
from repro.crypto.numbers import modinv
from repro.crypto.prf import derive_key, prf_int
from repro.errors import CryptoError

ADJ_SIZE = 49  # serialised uncompressed P-192 point


@dataclass(frozen=True)
class JoinCiphertext:
    """The JOIN onion-layer ciphertext: adjustable hash plus DET component."""

    adj: bytes
    det: bytes

    def serialize(self) -> bytes:
        return self.adj + self.det

    @classmethod
    def deserialize(cls, data: bytes) -> "JoinCiphertext":
        if len(data) < ADJ_SIZE:
            raise CryptoError("malformed JOIN ciphertext")
        return cls(data[:ADJ_SIZE], data[ADJ_SIZE:])


class JoinAdj:
    """The adjustable keyed hash component of the JOIN layer."""

    def __init__(self, column_key: int, prf_key: bytes):
        if not 1 <= column_key < ecc.ORDER:
            raise CryptoError("JOIN-ADJ column key out of range")
        self.column_key = column_key
        self._prf_key = prf_key

    @classmethod
    def for_column(cls, master: bytes, table: str, column: str) -> "JoinAdj":
        """Derive the per-column scalar key and the shared PRF key."""
        prf_key = derive_key(master, "join-adj-prf", length=32)
        scalar = derive_scalar(master, table, column)
        return cls(scalar, prf_key)

    @property
    def prf_key(self) -> bytes:
        """The shared PRF key (needed to rebuild this hash in a worker)."""
        return self._prf_key

    def _scalar_for(self, value: bytes) -> int:
        exponent = prf_int(self._prf_key, value, 192) % ecc.ORDER
        if exponent == 0:
            exponent = 1
        return self.column_key * exponent % ecc.ORDER

    def hash_value(self, value: bytes) -> bytes:
        """Compute ``JOIN-ADJ_K(v)`` as a serialised curve point.

        The multiplication always targets the public base point, so it runs
        on the precomputed fixed-base comb table (inversion-free adds).
        """
        return ecc.scalar_multiply_base(self._scalar_for(value)).serialize()

    def hash_values(self, values: list[bytes]) -> list[bytes]:
        """Batch :meth:`hash_value`: one final batched inversion per column."""
        scalars = [self._scalar_for(value) for value in values]
        return [point.serialize() for point in ecc.scalar_multiply_base_many(scalars)]

    def delta_to(self, other: "JoinAdj") -> int:
        """Return the key delta that re-bases *this* column onto ``other``.

        Applying :func:`adjust` with the returned delta to values hashed under
        ``self`` yields values hashed under ``other`` (the join-base column).
        """
        return other.column_key * modinv(self.column_key, ecc.ORDER) % ecc.ORDER


def derive_scalar(master: bytes, table: str, column: str) -> int:
    """Derive the initial JOIN-ADJ scalar key for a column."""
    seed = derive_key(master, "join-adj-key", table, column, length=32)
    scalar = int.from_bytes(seed, "big") % (ecc.ORDER - 1) + 1
    return scalar


def adjust(adj_ciphertext: bytes, delta: int) -> bytes:
    """Server-side key adjustment: re-scale a JOIN-ADJ point by ``delta``.

    This is the UDF the proxy invokes with an ``UPDATE`` when a new pair of
    columns must become joinable; it requires no plaintext access.
    """
    point = ecc.Point.deserialize(adj_ciphertext)
    return ecc.scalar_multiply(delta, point).serialize()


def adjust_many(adj_ciphertexts: list[bytes], delta: int) -> list[bytes]:
    """Batch :func:`adjust` over one column's JOIN-ADJ points.

    The wNAF expansion of ``delta`` is shared and the whole column returns to
    affine coordinates through two batched inversions, so re-keying a column
    costs O(1) inversions instead of one (plus hundreds of affine-add
    inversions) per row.
    """
    points = [ecc.Point.deserialize(ciphertext) for ciphertext in adj_ciphertexts]
    return [point.serialize() for point in ecc.scalar_multiply_many(delta, points)]


class JOIN:
    """The complete JOIN encryption scheme (JOIN-ADJ || DET)."""

    def __init__(self, master: bytes, table: str, column: str):
        self.table = table
        self.column = column
        self.adj = JoinAdj.for_column(master, table, column)
        self._det = DET(derive_key(master, "join-det", table, column, length=16))

    def encrypt(self, value: bytes) -> JoinCiphertext:
        """Encrypt a value at the JOIN layer."""
        return JoinCiphertext(self.adj.hash_value(value), self._det.encrypt_bytes(value))

    def decrypt(self, ciphertext: JoinCiphertext) -> bytes:
        """Recover the plaintext from the DET component."""
        return self._det.decrypt_bytes(ciphertext.det)

    def delta_to(self, other: "JOIN") -> int:
        """Key delta making this column's JOIN-ADJ values match ``other``'s."""
        return self.adj.delta_to(other.adj)

"""Cryptographic substrate for CryptDB's SQL-aware encryption.

Each module implements one of the schemes of section 3.1 of the paper:

* :mod:`repro.crypto.rnd` -- RND, probabilistic IND-CPA encryption.
* :mod:`repro.crypto.det` -- DET, deterministic PRP-style encryption
  (equality checks).
* :mod:`repro.crypto.ope` -- OPE, Boldyreva order-preserving encryption
  (range queries, ORDER BY, MIN/MAX).
* :mod:`repro.crypto.paillier` -- HOM, additively homomorphic Paillier
  encryption (SUM, increments).
* :mod:`repro.crypto.search` -- SEARCH, Song-Wagner-Perrig word search.
* :mod:`repro.crypto.join_adj` -- JOIN and JOIN-ADJ, the adjustable join
  primitive built on an elliptic-curve group.
* :mod:`repro.crypto.keys` -- master-key handling and the per
  (table, column, onion, layer) key derivation of Equation (1).

Lower-level building blocks live in :mod:`aes`, :mod:`feistel`,
:mod:`modes`, :mod:`prf`, :mod:`hgd`, :mod:`ecc` and :mod:`numbers`.
"""

from repro.crypto.det import DET
from repro.crypto.join_adj import JOIN, JoinAdj
from repro.crypto.keys import KeyManager, MasterKey
from repro.crypto.ope import OPE
from repro.crypto.paillier import Paillier, PaillierKeyPair
from repro.crypto.rnd import RND
from repro.crypto.search import SEARCH, SearchToken

__all__ = [
    "RND",
    "DET",
    "OPE",
    "Paillier",
    "PaillierKeyPair",
    "SEARCH",
    "SearchToken",
    "JOIN",
    "JoinAdj",
    "MasterKey",
    "KeyManager",
]

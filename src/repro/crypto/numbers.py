"""Number-theoretic helpers for Paillier and the elliptic-curve group."""

from __future__ import annotations

import secrets

from repro.errors import CryptoError

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]


def modinv(a: int, modulus: int) -> int:
    """Return the modular inverse of ``a`` mod ``modulus``."""
    if modulus <= 0:
        raise CryptoError("modulus must be positive")
    try:
        return pow(a, -1, modulus)
    except ValueError as exc:
        raise CryptoError("value has no modular inverse") from exc


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 as d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise CryptoError("prime size too small")
    while True:
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # correct size, odd
        if is_probable_prime(candidate):
            return candidate


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    from math import gcd

    return a // gcd(a, b) * b


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Chinese remainder theorem for two co-prime moduli."""
    inv = modinv(m1, m2)
    return (r1 + ((r2 - r1) * inv % m2) * m1) % (m1 * m2)

"""Byte-level helpers shared by the encryption schemes."""

from __future__ import annotations

import hmac
import os

from repro.errors import CryptoError


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise CryptoError(
            "xor_bytes requires equal lengths, got %d and %d" % (len(a), len(b))
        )
    return bytes(x ^ y for x, y in zip(a, b))


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without leaking where they differ."""
    return hmac.compare_digest(a, b)


def random_bytes(n: int) -> bytes:
    """Return ``n`` cryptographically random bytes."""
    if n < 0:
        raise CryptoError("cannot draw a negative number of random bytes")
    return os.urandom(n)


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` using PKCS#7."""
    if not 1 <= block_size <= 255:
        raise CryptoError("block size must be in [1, 255]")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Remove PKCS#7 padding, validating its structure."""
    if not data or len(data) % block_size != 0:
        raise CryptoError("padded data length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise CryptoError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise CryptoError("invalid padding bytes")
    return data[:-pad_len]


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer big-endian.

    When ``length`` is omitted the minimal length is used (at least one byte).
    """
    if value < 0:
        raise CryptoError("cannot encode a negative integer")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string as a non-negative integer."""
    return int.from_bytes(data, "big")


def split_blocks(data: bytes, block_size: int) -> list[bytes]:
    """Split ``data`` into consecutive ``block_size``-byte blocks."""
    if len(data) % block_size != 0:
        raise CryptoError("data length is not a multiple of the block size")
    return [data[i : i + block_size] for i in range(0, len(data), block_size)]

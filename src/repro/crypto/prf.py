"""Pseudo-random functions and key derivation.

CryptDB derives every onion-layer key from the master key with a PRP/PRF
keyed by the tuple ``(table, column, onion, layer)`` (Equation (1) of the
paper).  We implement the PRF with HMAC-SHA256, and also provide a
deterministic byte stream (used by the OPE sampler) expanded from a PRF in
counter mode.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.primitives import int_to_bytes
from repro.errors import CryptoError

DIGEST_SIZE = hashlib.sha256().digest_size


def prf(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 pseudo-random function."""
    if not key:
        raise CryptoError("PRF key must be non-empty")
    return hmac.new(key, message, hashlib.sha256).digest()


def prf_int(key: bytes, message: bytes, bits: int) -> int:
    """Return a pseudo-random integer of at most ``bits`` bits."""
    if bits <= 0:
        raise CryptoError("bits must be positive")
    n_bytes = (bits + 7) // 8
    stream = expand(key, message, n_bytes)
    value = int.from_bytes(stream, "big")
    return value >> (n_bytes * 8 - bits)


def expand(key: bytes, message: bytes, n_bytes: int) -> bytes:
    """Expand ``(key, message)`` into ``n_bytes`` of pseudo-random output.

    HMAC in counter mode: ``HMAC(key, message || counter)`` concatenated.
    """
    if n_bytes < 0:
        raise CryptoError("cannot expand to a negative length")
    output = bytearray()
    counter = 0
    while len(output) < n_bytes:
        output.extend(prf(key, message + int_to_bytes(counter, 4)))
        counter += 1
    return bytes(output[:n_bytes])


def derive_key(master: bytes, *labels: object, length: int = 16) -> bytes:
    """Derive a sub-key from a master key and a label tuple.

    This is the reproduction of Equation (1),
    ``K_{t,c,o,l} = PRP_MK(table t, column c, onion o, layer l)``: each label
    is length-prefixed so that distinct tuples can never collide, and the
    result is truncated/expanded to ``length`` bytes.
    """
    if length <= 0:
        raise CryptoError("derived key length must be positive")
    encoded = bytearray()
    for label in labels:
        part = str(label).encode("utf-8")
        encoded.extend(int_to_bytes(len(part), 4))
        encoded.extend(part)
    return expand(master, bytes(encoded), length)


class DeterministicStream:
    """A deterministic pseudo-random byte stream seeded by a key and label.

    Used by the OPE hypergeometric sampler, which must draw the *same* random
    coins every time it visits the same domain/range node so that encryption
    is a well-defined (and order-preserving) function.
    """

    def __init__(self, key: bytes, label: bytes):
        if not key:
            raise CryptoError("stream key must be non-empty")
        self._key = key
        self._label = label
        self._counter = 0
        self._buffer = b""

    def read(self, n_bytes: int) -> bytes:
        """Return the next ``n_bytes`` of the stream."""
        while len(self._buffer) < n_bytes:
            block = prf(self._key, self._label + int_to_bytes(self._counter, 8))
            self._buffer += block
            self._counter += 1
        out, self._buffer = self._buffer[:n_bytes], self._buffer[n_bytes:]
        return out

    def uniform_int(self, upper: int) -> int:
        """Return a uniform integer in ``[0, upper)`` via rejection sampling."""
        if upper <= 0:
            raise CryptoError("upper bound must be positive")
        n_bits = upper.bit_length()
        n_bytes = (n_bits + 7) // 8
        while True:
            candidate = int.from_bytes(self.read(n_bytes), "big")
            candidate >>= n_bytes * 8 - n_bits
            if candidate < upper:
                return candidate

    def uniform_float(self) -> float:
        """Return a uniform float in ``[0, 1)`` with 53 bits of precision."""
        return self.uniform_int(1 << 53) / float(1 << 53)

"""64-bit block PRP built as a Feistel network.

The paper uses Blowfish for 64-bit integer values because AES's 128-bit block
would double the ciphertext size.  We keep the same interface (a keyed
pseudo-random permutation over 64-bit blocks) but build it as a Luby-Rackoff
Feistel network with an HMAC-SHA256 round function, which avoids embedding
Blowfish's 4 KB of constant S-boxes while providing the same PRP abstraction.
The substitution is documented in DESIGN.md.

The same construction generalises to arbitrary even block sizes, which the
DET layer uses to encrypt short values without padding them to 16 bytes.
"""

from __future__ import annotations

from repro.crypto import prf
from repro.errors import CryptoError

BLOCK_SIZE = 8
_ROUNDS = 8


class FeistelPRP:
    """A keyed pseudo-random permutation over fixed-size blocks."""

    def __init__(self, key: bytes, block_size: int = BLOCK_SIZE, rounds: int = _ROUNDS):
        if not key:
            raise CryptoError("Feistel key must be non-empty")
        if block_size < 2 or block_size % 2 != 0:
            raise CryptoError("Feistel block size must be an even number of bytes >= 2")
        if rounds < 4:
            raise CryptoError("a strong PRP needs at least 4 Feistel rounds")
        self.key = key
        self.block_size = block_size
        self._half = block_size // 2
        self._round_keys = [
            prf.derive_key(key, "feistel-round", i, length=32) for i in range(rounds)
        ]

    def _round(self, round_key: bytes, half: bytes) -> bytes:
        return prf.expand(round_key, half, self._half)

    def encrypt_block(self, block: bytes) -> bytes:
        """Apply the permutation to one block."""
        if len(block) != self.block_size:
            raise CryptoError(
                "block must be exactly %d bytes, got %d" % (self.block_size, len(block))
            )
        left, right = block[: self._half], block[self._half :]
        for round_key in self._round_keys:
            mixed = bytes(
                l ^ f for l, f in zip(left, self._round(round_key, right))
            )
            left, right = right, mixed
        return left + right

    def decrypt_block(self, block: bytes) -> bytes:
        """Invert the permutation on one block."""
        if len(block) != self.block_size:
            raise CryptoError(
                "block must be exactly %d bytes, got %d" % (self.block_size, len(block))
            )
        left, right = block[: self._half], block[self._half :]
        for round_key in reversed(self._round_keys):
            mixed = bytes(
                r ^ f for r, f in zip(right, self._round(round_key, left))
            )
            left, right = mixed, left
        return left + right

    # Convenience helpers for 64-bit integers, the common CryptDB case.
    def encrypt_int(self, value: int) -> int:
        """Encrypt an unsigned integer that fits in the block size."""
        limit = 1 << (self.block_size * 8)
        if not 0 <= value < limit:
            raise CryptoError("integer does not fit in the PRP block")
        block = value.to_bytes(self.block_size, "big")
        return int.from_bytes(self.encrypt_block(block), "big")

    def decrypt_int(self, value: int) -> int:
        """Decrypt an unsigned integer produced by :meth:`encrypt_int`."""
        limit = 1 << (self.block_size * 8)
        if not 0 <= value < limit:
            raise CryptoError("integer does not fit in the PRP block")
        block = value.to_bytes(self.block_size, "big")
        return int.from_bytes(self.decrypt_block(block), "big")

"""RND: probabilistic encryption, the strongest onion layer.

RND provides IND-CPA security: equal plaintexts map to different ciphertexts
with overwhelming probability, and no computation can be performed on the
ciphertext.  Following the paper we use a block cipher in CBC mode with a
random IV -- AES for byte strings and the 64-bit PRP (the Blowfish stand-in)
for integer values, to keep integer ciphertexts short.

The IV is stored alongside the ciphertext in a separate column on the DBMS
server (the ``C*-IV`` columns of Figure 3), which is why the API takes and
returns the IV explicitly instead of prepending it to the ciphertext.
"""

from __future__ import annotations

from repro.crypto import modes
from repro.crypto.aes import AES
from repro.crypto.feistel import FeistelPRP
from repro.crypto.primitives import random_bytes
from repro.errors import CryptoError


class RND:
    """Probabilistic encryption under a fixed column key."""

    IV_SIZE = 16

    def __init__(self, key: bytes):
        if not key:
            raise CryptoError("RND key must be non-empty")
        self.key = key
        self._aes = AES(_fit_aes_key(key))
        self._prp64 = FeistelPRP(key, block_size=8)

    @staticmethod
    def generate_iv() -> bytes:
        """Draw a fresh random IV."""
        return random_bytes(RND.IV_SIZE)

    @staticmethod
    def generate_ivs(count: int) -> list[bytes]:
        """Draw ``count`` fresh IVs with a single entropy request."""
        pool = random_bytes(RND.IV_SIZE * count)
        return [pool[i : i + RND.IV_SIZE] for i in range(0, len(pool), RND.IV_SIZE)]

    # -- byte strings -----------------------------------------------------
    def encrypt_bytes(self, plaintext: bytes, iv: bytes) -> bytes:
        """Encrypt an arbitrary byte string under the given IV."""
        if len(iv) != self.IV_SIZE:
            raise CryptoError("RND IV must be %d bytes" % self.IV_SIZE)
        return modes.cbc_encrypt(self._aes, iv, plaintext)

    def decrypt_bytes(self, ciphertext: bytes, iv: bytes) -> bytes:
        """Invert :meth:`encrypt_bytes`."""
        if len(iv) != self.IV_SIZE:
            raise CryptoError("RND IV must be %d bytes" % self.IV_SIZE)
        return modes.cbc_decrypt(self._aes, iv, ciphertext)

    def encrypt_bytes_many(
        self, plaintexts: list[bytes], ivs: list[bytes]
    ) -> list[bytes]:
        """Encrypt a column of byte strings, one fresh IV per value."""
        encrypt = modes.cbc_encrypt
        aes = self._aes
        return [
            None if plaintext is None else encrypt(aes, iv, plaintext)
            for plaintext, iv in zip(plaintexts, ivs)
        ]

    def decrypt_bytes_many(
        self, ciphertexts: list[bytes], ivs: list[bytes]
    ) -> list[bytes]:
        """Invert :meth:`encrypt_bytes_many`."""
        decrypt = modes.cbc_decrypt
        aes = self._aes
        return [
            None if ciphertext is None else decrypt(aes, iv, ciphertext)
            for ciphertext, iv in zip(ciphertexts, ivs)
        ]

    # -- integers ---------------------------------------------------------
    def encrypt_int_many(self, values: list[int], ivs: list[bytes]) -> list[int]:
        """Encrypt a column of 64-bit integers, one fresh IV per value."""
        prp = self._prp64
        return [
            None if value is None
            else prp.encrypt_int(value ^ int.from_bytes(iv[:8], "big"))
            for value, iv in zip(values, ivs)
        ]

    def decrypt_int_many(self, ciphertexts: list[int], ivs: list[bytes]) -> list[int]:
        """Invert :meth:`encrypt_int_many`."""
        prp = self._prp64
        return [
            None if ciphertext is None
            else prp.decrypt_int(ciphertext) ^ int.from_bytes(iv[:8], "big")
            for ciphertext, iv in zip(ciphertexts, ivs)
        ]

    def encrypt_int(self, value: int, iv: bytes) -> int:
        """Encrypt a 64-bit unsigned integer; the ciphertext is also 64 bits.

        CBC over a single 8-byte block degenerates to ``PRP(value XOR iv)``,
        which is exactly the construction the paper uses for integer columns
        (Blowfish-CBC with a random IV) to avoid ciphertext expansion.
        """
        if not 0 <= value < (1 << 64):
            raise CryptoError("RND integer encryption expects a 64-bit value")
        iv64 = int.from_bytes(iv[:8], "big")
        return self._prp64.encrypt_int(value ^ iv64)

    def decrypt_int(self, ciphertext: int, iv: bytes) -> int:
        """Invert :meth:`encrypt_int`."""
        if not 0 <= ciphertext < (1 << 64):
            raise CryptoError("RND integer decryption expects a 64-bit value")
        iv64 = int.from_bytes(iv[:8], "big")
        return self._prp64.decrypt_int(ciphertext) ^ iv64


def _fit_aes_key(key: bytes) -> bytes:
    """Stretch or truncate an arbitrary key to a valid AES key length."""
    if len(key) in (16, 24, 32):
        return key
    from repro.crypto.prf import derive_key

    return derive_key(key, "aes-key-fit", length=16)

"""Block-cipher modes of operation used by the RND and DET layers.

* CBC with a random IV implements RND (probabilistic encryption).
* CMC -- one CBC pass followed by a second pass over the blocks in reverse
  order with a zero IV -- implements DET for multi-block values, so that two
  plaintexts sharing a long prefix do not produce ciphertexts with equal
  prefixes (section 3.1 of the paper).
* CTR is provided for completeness and for the key-chaining wrapping of
  principal keys.
"""

from __future__ import annotations

from typing import Protocol

from repro.crypto.primitives import (
    pkcs7_pad,
    pkcs7_unpad,
    split_blocks,
    xor_bytes,
)
from repro.errors import CryptoError


class BlockCipher(Protocol):
    """Anything with encrypt_block/decrypt_block over fixed-size blocks."""

    def encrypt_block(self, block: bytes) -> bytes:  # pragma: no cover - protocol
        ...

    def decrypt_block(self, block: bytes) -> bytes:  # pragma: no cover - protocol
        ...


def _block_size(cipher: BlockCipher) -> int:
    return getattr(cipher, "block_size", 16)


def cbc_encrypt(cipher: BlockCipher, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt ``plaintext`` (PKCS#7 padded) under ``iv``."""
    size = _block_size(cipher)
    if len(iv) != size:
        raise CryptoError("IV must match the cipher block size")
    padded = pkcs7_pad(plaintext, size)
    previous = iv
    out = bytearray()
    for block in split_blocks(padded, size):
        encrypted = cipher.encrypt_block(xor_bytes(block, previous))
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def cbc_decrypt(cipher: BlockCipher, iv: bytes, ciphertext: bytes) -> bytes:
    """Invert :func:`cbc_encrypt`."""
    size = _block_size(cipher)
    if len(iv) != size:
        raise CryptoError("IV must match the cipher block size")
    previous = iv
    out = bytearray()
    for block in split_blocks(ciphertext, size):
        out.extend(xor_bytes(cipher.decrypt_block(block), previous))
        previous = block
    return pkcs7_unpad(bytes(out), size)


def cmc_encrypt(cipher: BlockCipher, plaintext: bytes) -> bytes:
    """CMC-style encryption with a zero tweak, used for DET on long values.

    Approximated as in the paper's description: one round of CBC followed by
    another round of CBC applied to the blocks in reverse order, both with a
    zero IV, so equal plaintexts map to equal ciphertexts but shared prefixes
    do not leak.
    """
    size = _block_size(cipher)
    zero_iv = bytes(size)
    padded = pkcs7_pad(plaintext, size)
    # First CBC pass (forward).
    previous = zero_iv
    first_pass = []
    for block in split_blocks(padded, size):
        encrypted = cipher.encrypt_block(xor_bytes(block, previous))
        first_pass.append(encrypted)
        previous = encrypted
    # Second CBC pass over the reversed block sequence.
    previous = zero_iv
    second_pass = []
    for block in reversed(first_pass):
        encrypted = cipher.encrypt_block(xor_bytes(block, previous))
        second_pass.append(encrypted)
        previous = encrypted
    return b"".join(second_pass)


def cmc_decrypt(cipher: BlockCipher, ciphertext: bytes) -> bytes:
    """Invert :func:`cmc_encrypt`."""
    size = _block_size(cipher)
    zero_iv = bytes(size)
    blocks = split_blocks(ciphertext, size)
    # Undo the second pass.
    previous = zero_iv
    first_pass_reversed = []
    for block in blocks:
        first_pass_reversed.append(xor_bytes(cipher.decrypt_block(block), previous))
        previous = block
    first_pass = list(reversed(first_pass_reversed))
    # Undo the first pass.
    previous = zero_iv
    out = bytearray()
    for block in first_pass:
        out.extend(xor_bytes(cipher.decrypt_block(block), previous))
        previous = block
    return pkcs7_unpad(bytes(out), size)


def ctr_transform(cipher: BlockCipher, nonce: bytes, data: bytes) -> bytes:
    """CTR keystream XOR; encryption and decryption are the same operation."""
    size = _block_size(cipher)
    if len(nonce) > size - 4:
        raise CryptoError("nonce too long for a 32-bit counter")
    out = bytearray()
    counter = 0
    offset = 0
    while offset < len(data):
        counter_block = nonce + counter.to_bytes(size - len(nonce), "big")
        keystream = cipher.encrypt_block(counter_block)
        chunk = data[offset : offset + size]
        out.extend(x ^ k for x, k in zip(chunk, keystream))
        offset += size
        counter += 1
    return bytes(out)

"""Deterministic hypergeometric sampling for the OPE scheme.

The Boldyreva order-preserving encryption scheme recursively splits the
ciphertext range and, at each split, draws from a hypergeometric distribution
how many plaintexts fall below the midpoint.  The draw must be *deterministic*
given the PRF-derived coins, so that encryption and decryption walk the same
tree.  The paper ports the 1988 Kachitvichyanukul-Schmeiser Fortran sampler;
we implement an exact mode-centred inverse-transform sampler for moderate
variance, and a deterministic normal approximation (clamped to the support)
when the variance is large.  Only determinism and staying within the support
are required for correctness of OPE; the approximation affects only how close
the ciphertext distribution is to a truly random order-preserving function.
"""

from __future__ import annotations

import math

from repro.crypto.prf import DeterministicStream
from repro.errors import CryptoError

# Above this standard deviation the exact inverse transform would need too
# many probability-mass evaluations, so we switch to the normal approximation.
_EXACT_STDDEV_LIMIT = 64.0


def _log_choose(n: int, k: int) -> float:
    if k < 0 or k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def _log_pmf(k: int, draws: int, good: int, total: int) -> float:
    bad = total - good
    return (
        _log_choose(good, k)
        + _log_choose(bad, draws - k)
        - _log_choose(total, draws)
    )


def hypergeometric_sample(draws: int, good: int, bad: int, coins: DeterministicStream) -> int:
    """Sample the number of "good" items among ``draws`` draws without
    replacement from an urn of ``good`` + ``bad`` items.

    The result always lies in ``[max(0, draws - bad), min(draws, good)]``.
    """
    if draws < 0 or good < 0 or bad < 0:
        raise CryptoError("hypergeometric parameters must be non-negative")
    total = good + bad
    if draws > total:
        raise CryptoError("cannot draw more items than the urn contains")

    low = max(0, draws - bad)
    high = min(draws, good)
    if low == high:
        return low

    mean = draws * good / total
    variance = (
        draws * (good / total) * (bad / total) * (total - draws) / max(total - 1, 1)
    )
    stddev = math.sqrt(max(variance, 0.0))

    if stddev > _EXACT_STDDEV_LIMIT:
        return _normal_approximation(mean, stddev, low, high, coins)
    return _exact_inverse_transform(draws, good, total, low, high, coins)


def _normal_approximation(
    mean: float, stddev: float, low: int, high: int, coins: DeterministicStream
) -> int:
    """Deterministic Box-Muller normal draw, rounded and clamped to the support."""
    u1 = coins.uniform_float()
    u2 = coins.uniform_float()
    # Guard against log(0).
    u1 = max(u1, 1e-300)
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    value = int(round(mean + stddev * z))
    return min(max(value, low), high)


def _exact_inverse_transform(
    draws: int, good: int, total: int, low: int, high: int, coins: DeterministicStream
) -> int:
    """Mode-centred inverse transform over the exact hypergeometric pmf.

    Expands outwards from the mode, accumulating probability mass until the
    cumulative mass exceeds the target quantile.  Visiting values in a fixed
    (deterministic) order keeps encryption and decryption consistent.  The
    mass of each neighbour follows from the previous one via the pmf
    recurrence, so only the mode pays the log-gamma evaluation.
    """
    target = coins.uniform_float()
    bad = total - good
    mode = int((draws + 1) * (good + 1) / (total + 2))
    mode = min(max(mode, low), high)

    p_mode = math.exp(_log_pmf(mode, draws, good, total))
    cumulative = p_mode
    if cumulative >= target:
        return mode
    # P(k-1) = P(k) * k (bad - draws + k) / ((good - k + 1) (draws - k + 1))
    # P(k+1) = P(k) * (good - k) (draws - k) / ((k + 1) (bad - draws + k + 1))
    p_down = p_up = p_mode
    k_down = k_up = mode
    chosen = mode
    while k_down > low or k_up < high:
        if k_down > low:
            p_down *= (
                k_down * (bad - draws + k_down)
                / ((good - k_down + 1) * (draws - k_down + 1))
            )
            k_down -= 1
            chosen = k_down
            cumulative += p_down
            if cumulative >= target:
                return k_down
        if k_up < high:
            p_up *= (
                (good - k_up) * (draws - k_up)
                / ((k_up + 1) * (bad - draws + k_up + 1))
            )
            k_up += 1
            chosen = k_up
            cumulative += p_up
            if cumulative >= target:
                return k_up
    # Floating-point residue kept the cumulative mass below 1: fall back to
    # the last value visited, exactly like the pre-recurrence implementation.
    return chosen

"""Master key handling and per-layer key derivation.

The proxy stores a single secret master key ``MK``; every onion-layer key is
derived as ``K_{t,c,o,l} = PRP_MK(table, column, onion, layer)``
(Equation (1)).  In multi-principal mode the same derivation is performed
relative to a principal's key instead of the global master key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import prf
from repro.crypto.primitives import random_bytes
from repro.errors import CryptoError

KEY_SIZE = 16


@dataclass(frozen=True)
class MasterKey:
    """The proxy's secret master key."""

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) < 16:
            raise CryptoError("master key must be at least 128 bits")

    @classmethod
    def generate(cls) -> "MasterKey":
        """Draw a fresh random master key."""
        return cls(random_bytes(KEY_SIZE))

    @classmethod
    def from_passphrase(cls, passphrase: str, *, salt: bytes = b"cryptdb-repro") -> "MasterKey":
        """Derive a master key from a passphrase (used by tests and examples)."""
        if not passphrase:
            raise CryptoError("passphrase must be non-empty")
        return cls(prf.derive_key(passphrase.encode("utf-8"), "master", salt, length=KEY_SIZE))


@dataclass
class KeyManager:
    """Derives and caches per (table, column, onion, layer) keys."""

    master: MasterKey
    _cache: dict = field(default_factory=dict, repr=False)

    def key_for(self, table: str, column: str, onion: str, layer: str) -> bytes:
        """Return the key of Equation (1) for the given tuple."""
        cache_key = (table, column, onion, layer)
        if cache_key not in self._cache:
            self._cache[cache_key] = prf.derive_key(
                self.master.material, "layer-key", table, column, onion, layer,
                length=KEY_SIZE,
            )
        return self._cache[cache_key]

    def iv_key(self, table: str, column: str) -> bytes:
        """Key used to derive per-row IV storage (the C*-IV columns)."""
        return prf.derive_key(self.master.material, "iv", table, column, length=KEY_SIZE)

    def subordinate(self, label: str) -> "KeyManager":
        """Derive a key manager rooted at a sub-key (used per principal)."""
        sub = prf.derive_key(self.master.material, "principal", label, length=KEY_SIZE)
        return KeyManager(MasterKey(sub))

"""OPE: Boldyreva order-preserving encryption.

If ``x < y`` then ``OPE_K(x) < OPE_K(y)``, which lets the DBMS server run
range predicates, ``ORDER BY``, ``MIN``/``MAX`` and ``SORT`` directly on
ciphertexts.  The scheme maps a plaintext domain of ``plaintext_bits`` bits
into a larger ciphertext range of ``ciphertext_bits`` bits by lazily sampling
a random order-preserving function: the ciphertext range is split at its
midpoint, a hypergeometric draw decides how many plaintexts map below the
midpoint, and the recursion descends into the half containing the value.
All random draws come from a PRF keyed by the column key and the recursion
node, so the function is deterministic.

The paper reports 25 ms per encryption for the direct implementation and 7 ms
after adding a search-tree cache for batch encryption; we provide the same
kind of cache (a plaintext -> ciphertext dictionary plus the sorted interval
structure implied by already-encrypted values).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hgd import hypergeometric_sample
from repro.crypto.prf import DeterministicStream, derive_key
from repro.errors import CryptoError

DEFAULT_PLAINTEXT_BITS = 32
DEFAULT_CIPHERTEXT_BITS = 64


@dataclass(frozen=True)
class _Node:
    """One node of the lazily sampled order-preserving function."""

    d_lo: int
    d_hi: int
    r_lo: int
    r_hi: int

    @property
    def domain_size(self) -> int:
        return self.d_hi - self.d_lo + 1

    @property
    def range_size(self) -> int:
        return self.r_hi - self.r_lo + 1


class OPE:
    """Order-preserving encryption under a fixed column key."""

    def __init__(
        self,
        key: bytes,
        plaintext_bits: int = DEFAULT_PLAINTEXT_BITS,
        ciphertext_bits: int = DEFAULT_CIPHERTEXT_BITS,
        cache: bool = True,
    ):
        if not key:
            raise CryptoError("OPE key must be non-empty")
        if ciphertext_bits <= plaintext_bits:
            raise CryptoError("ciphertext space must be larger than plaintext space")
        self.key = key
        self.plaintext_bits = plaintext_bits
        self.ciphertext_bits = ciphertext_bits
        self.domain_size = 1 << plaintext_bits
        self.range_size = 1 << ciphertext_bits
        self._coins_key = derive_key(key, "ope-coins", length=32)
        self._cache_enabled = cache
        self._encrypt_cache: dict[int, int] = {}
        self._decrypt_cache: dict[int, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- public API -------------------------------------------------------
    def encrypt(self, plaintext: int) -> int:
        """Encrypt an integer in ``[0, 2^plaintext_bits)``."""
        if not 0 <= plaintext < self.domain_size:
            raise CryptoError(
                "OPE plaintext %d outside [0, %d)" % (plaintext, self.domain_size)
            )
        if self._cache_enabled:
            if plaintext in self._encrypt_cache:
                self.cache_hits += 1
                return self._encrypt_cache[plaintext]
            self.cache_misses += 1
        ciphertext = self._encrypt_recursive(plaintext, self._root())
        if self._cache_enabled:
            self._encrypt_cache[plaintext] = ciphertext
            self._decrypt_cache[ciphertext] = plaintext
        return ciphertext

    def decrypt(self, ciphertext: int) -> int:
        """Invert :meth:`encrypt`."""
        if not 0 <= ciphertext < self.range_size:
            raise CryptoError(
                "OPE ciphertext %d outside [0, %d)" % (ciphertext, self.range_size)
            )
        if self._cache_enabled:
            if ciphertext in self._decrypt_cache:
                self.cache_hits += 1
                return self._decrypt_cache[ciphertext]
            self.cache_misses += 1
        plaintext = self._decrypt_recursive(ciphertext, self._root())
        if self._cache_enabled:
            self._encrypt_cache[plaintext] = ciphertext
            self._decrypt_cache[ciphertext] = plaintext
        return plaintext

    def encrypt_batch(self, plaintexts: list[int]) -> list[int]:
        """Encrypt many values, exploiting the cache (the paper's batch mode)."""
        return self.encrypt_many(plaintexts)

    def encrypt_many(self, plaintexts: list[int]) -> list[int]:
        """Encrypt a column of values, computing each distinct value once.

        With the instance cache enabled the memo persists across batches;
        otherwise deduplication is local to this call.
        """
        if self._cache_enabled:
            return [self.encrypt(p) for p in plaintexts]
        local: dict[int, int] = {}
        out = []
        for plaintext in plaintexts:
            cached = local.get(plaintext)
            if cached is None:
                cached = local[plaintext] = self.encrypt(plaintext)
            out.append(cached)
        return out

    def decrypt_many(self, ciphertexts: list[int]) -> list[int]:
        """Decrypt a column of values, computing each distinct value once."""
        if self._cache_enabled:
            return [self.decrypt(c) for c in ciphertexts]
        local: dict[int, int] = {}
        out = []
        for ciphertext in ciphertexts:
            cached = local.get(ciphertext)
            if cached is None:
                cached = local[ciphertext] = self.decrypt(ciphertext)
            out.append(cached)
        return out

    @property
    def cache_size(self) -> int:
        """Number of cached plaintext/ciphertext pairs."""
        return len(self._encrypt_cache)

    def cache_objects(self) -> tuple:
        """The live memo containers, walked by the cache's byte accounting."""
        return (self._encrypt_cache, self._decrypt_cache)

    def clear_cache(self) -> None:
        """Drop all cached encryptions."""
        self._encrypt_cache.clear()
        self._decrypt_cache.clear()

    def reset_counters(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0

    # -- recursion --------------------------------------------------------
    def _root(self) -> _Node:
        return _Node(0, self.domain_size - 1, 0, self.range_size - 1)

    def _coins(self, node: _Node, label: bytes) -> DeterministicStream:
        node_label = b"%b:%d:%d:%d:%d" % (label, node.d_lo, node.d_hi, node.r_lo, node.r_hi)
        return DeterministicStream(self._coins_key, node_label)

    def _split(self, node: _Node) -> tuple[int, int]:
        """Return (range midpoint, #plaintexts mapped at or below it)."""
        mid_r = node.r_lo + (node.range_size // 2) - 1
        lower_range = mid_r - node.r_lo + 1
        coins = self._coins(node, b"node")
        below = hypergeometric_sample(
            draws=lower_range,
            good=node.domain_size,
            bad=node.range_size - node.domain_size,
            coins=coins,
        )
        return mid_r, below

    def _encrypt_recursive(self, plaintext: int, node: _Node) -> int:
        while True:
            if node.domain_size == 1:
                coins = self._coins(node, b"leaf")
                return node.r_lo + coins.uniform_int(node.range_size)
            mid_r, below = self._split(node)
            if plaintext < node.d_lo + below:
                node = _Node(node.d_lo, node.d_lo + below - 1, node.r_lo, mid_r)
            else:
                node = _Node(node.d_lo + below, node.d_hi, mid_r + 1, node.r_hi)

    def _decrypt_recursive(self, ciphertext: int, node: _Node) -> int:
        while True:
            if node.domain_size == 1:
                coins = self._coins(node, b"leaf")
                expected = node.r_lo + coins.uniform_int(node.range_size)
                if expected != ciphertext:
                    raise CryptoError("ciphertext is not a valid OPE encryption")
                return node.d_lo
            mid_r, below = self._split(node)
            if ciphertext <= mid_r:
                if below == 0:
                    raise CryptoError("ciphertext is not a valid OPE encryption")
                node = _Node(node.d_lo, node.d_lo + below - 1, node.r_lo, mid_r)
            else:
                if below == node.domain_size:
                    raise CryptoError("ciphertext is not a valid OPE encryption")
                node = _Node(node.d_lo + below, node.d_hi, mid_r + 1, node.r_hi)

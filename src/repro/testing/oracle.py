"""The differential oracle: replay one stream over several lanes, compare.

A *lane* is a :class:`repro.api.Connection`: plaintext over the in-memory
engine, plaintext over SQLite, or the encrypted proxy over either backend.
Every statement of a stream runs on every lane and the outcomes must agree:

* identical decrypted rows for SELECTs -- compared as sequences when the
  generator guaranteed a total ORDER BY, as multisets otherwise;
* identical affected-row counts for DML;
* identical error *class* when a statement fails everywhere.

The proxy is allowed one asymmetry, straight from the paper's Figure 9: it
may *refuse* a side-effect-free SELECT (``NotSupportedError``, e.g. an
equality predicate over a HOM-stale onion) that plaintext lanes can answer.
It may never return a different answer.  Refusals must agree across both
encrypted lanes and are counted, not failed.

Floats are compared with a tolerance: the encrypted lane recomputes
DECIMAL aggregates from exactly-scaled integers while plaintext lanes
accumulate IEEE floats, so the two can differ in the last ulps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.api import exceptions
from repro.api.connection import Connection, connect
from repro.testing.generator import GeneratedStatement

LaneFactory = Callable[[], dict[str, Connection]]

#: Lanes whose names start with this prefix hold an encrypting proxy.
ENCRYPTED_PREFIX = "enc-"


def default_lane_factory(
    parallel_workers: int = 0,
    parallel_chunk_threshold: int = 4,
    remote: bool = False,
    remote_fetch_chunk: int = 64,
    packed_off: bool = False,
    **proxy_kwargs: Any,
) -> LaneFactory:
    """Fresh plaintext + encrypted connections over both backends.

    ``proxy_kwargs`` (``paillier``, ``master_key``, ...) are forwarded to the
    encrypted lanes so test suites can share one session key pair.  The
    encrypted lanes all run with HOM slot packing at the proxy's default
    (on); ``packed_off=True`` adds an ``enc-packed-off`` lane with packing
    disabled, so a packed-pipeline divergence bisects cleanly against the
    scalar-HOM code path answering the identical stream.

    ``parallel_workers > 0`` adds a fifth lane, ``enc-parallel``: the same
    encrypted proxy over the in-memory backend but with a crypto worker pool
    of that many processes (and an aggressively low chunk threshold so small
    generated batches actually offload).  The lane must decrypt to
    byte-identical results *and* refuse exactly the statements the serial
    encrypted lanes refuse -- parallel offload may never change behaviour.

    ``remote=True`` adds a sixth lane, ``enc-remote``: every statement of
    the stream crosses a real TCP connection to an embedded
    :class:`~repro.server.loopback.LoopbackServer` -- ECDH handshake, AEAD
    framing, session multiplexing, server-side cursor chunking (a small
    ``remote_fetch_chunk`` so multi-chunk FETCH paths actually run) -- and
    must agree, answer for answer and refusal for refusal, with the
    in-process encrypted lanes.
    """

    def factory() -> dict[str, Connection]:
        lanes = {
            "plain-memory": connect(encrypted=False, backend="memory"),
            "plain-sqlite": connect(encrypted=False, backend="sqlite"),
            "enc-memory": connect(backend="memory", **proxy_kwargs),
            "enc-sqlite": connect(backend="sqlite", **proxy_kwargs),
        }
        if parallel_workers > 0:
            from repro.parallel import ParallelConfig

            lanes["enc-parallel"] = connect(
                backend="memory",
                parallelism=ParallelConfig(
                    workers=parallel_workers,
                    chunk_threshold=parallel_chunk_threshold,
                ),
                **proxy_kwargs,
            )
        if packed_off:
            off_kwargs = {k: v for k, v in proxy_kwargs.items() if k != "hom_packing"}
            lanes["enc-packed-off"] = connect(
                backend="memory", hom_packing=False, **off_kwargs
            )
        if remote:
            from repro.server.loopback import connect_loopback

            lanes["enc-remote"] = connect_loopback(
                fetch_chunk=remote_fetch_chunk, backend="memory", **proxy_kwargs
            )
        return lanes

    return factory


# ---------------------------------------------------------------------------
# outcomes
# ---------------------------------------------------------------------------
@dataclass
class LaneOutcome:
    """What one lane did with one statement."""

    error: Optional[str] = None  # None | "unsupported" | "error"
    error_detail: str = ""
    rows: Optional[list[tuple]] = None
    rowcount: int = 0

    def summary(self) -> str:
        if self.error is not None:
            return f"{self.error}({self.error_detail})"
        if self.rows is not None:
            return f"{len(self.rows)} rows"
        return f"rowcount={self.rowcount}"


@dataclass
class Divergence:
    """The first observed disagreement between lanes."""

    index: int
    statement: GeneratedStatement
    reason: str
    outcomes: dict[str, str]

    def describe(self) -> str:
        lanes = "\n".join(f"    {name}: {out}" for name, out in self.outcomes.items())
        return (
            f"statement #{self.index}: {self.statement.describe()}\n"
            f"  {self.reason}\n{lanes}"
        )


@dataclass
class RunReport:
    """Outcome of one stream replay across all lanes."""

    divergence: Optional[Divergence] = None
    statements_executed: int = 0
    selects_compared: int = 0
    refused_by_proxy: int = 0
    minimized: Optional[list[GeneratedStatement]] = None
    seed: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        if self.ok:
            return (
                f"conformant: {self.statements_executed} statements, "
                f"{self.selects_compared} SELECT comparisons, "
                f"{self.refused_by_proxy} proxy refusals"
            )
        lines = [f"DIVERGENCE after {self.statements_executed} statements"]
        if self.seed is not None:
            lines.append(f"reproduce with --repro-seed={self.seed}")
        lines.append(self.divergence.describe())
        if self.minimized is not None:
            lines.append(f"minimized reproducer ({len(self.minimized)} statements):")
            lines.extend(f"  {s.describe()}" for s in self.minimized)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# normalization / comparison
# ---------------------------------------------------------------------------
def _canonical_cell(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    return value


def _cells_match(a: Any, b: Any) -> bool:
    a, b = _canonical_cell(a), _canonical_cell(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def _rows_match(a: Sequence[tuple], b: Sequence[tuple]) -> bool:
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        if not all(_cells_match(x, y) for x, y in zip(row_a, row_b)):
            return False
    return True


def _sort_key(row: tuple) -> tuple:
    key = []
    for value in row:
        value = _canonical_cell(value)
        if value is None:
            key.append((0, ""))
        elif isinstance(value, (int, float)):
            # Round for ordering only, so float noise cannot interleave rows
            # differently across lanes; equality is checked with isclose.
            key.append((1, "", round(float(value), 7)))
        elif isinstance(value, str):
            key.append((2, value))
        elif isinstance(value, bytes):
            key.append((3, value.hex()))
        else:
            key.append((4, repr(value)))
    return tuple(key)


def _normalize(rows: Sequence[tuple], ordered: bool) -> list[tuple]:
    normalized = [tuple(row) for row in rows]
    if not ordered:
        normalized.sort(key=_sort_key)
    return normalized


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------
class DifferentialRunner:
    """Replays statement streams over fresh lanes and compares outcomes."""

    def __init__(self, lane_factory: LaneFactory):
        self.lane_factory = lane_factory

    # -- execution -------------------------------------------------------
    @staticmethod
    def _run_statement(
        connection: Connection, statement: GeneratedStatement
    ) -> LaneOutcome:
        try:
            cursor = connection.cursor()
            cursor.execute(statement.sql, statement.params)
        except exceptions.NotSupportedError as exc:
            return LaneOutcome(error="unsupported", error_detail=str(exc)[:120])
        except exceptions.Error as exc:
            return LaneOutcome(
                error="error", error_detail=f"{type(exc).__name__}: {str(exc)[:120]}"
            )
        if cursor.description is not None:
            return LaneOutcome(rows=cursor.fetchall())
        return LaneOutcome(rowcount=max(cursor.rowcount, 0))

    def run(self, statements: Sequence[GeneratedStatement]) -> RunReport:
        """Replay one stream on fresh lanes; stop at the first divergence."""
        lanes = self.lane_factory()
        report = RunReport()
        try:
            for index, statement in enumerate(statements):
                outcomes = {
                    name: self._run_statement(conn, statement)
                    for name, conn in lanes.items()
                }
                report.statements_executed += 1
                divergence = self._compare(index, statement, outcomes, report)
                if divergence is not None:
                    report.divergence = divergence
                    return report
        finally:
            for conn in lanes.values():
                conn.close()
        return report

    # -- comparison ------------------------------------------------------
    def _compare(
        self,
        index: int,
        statement: GeneratedStatement,
        outcomes: dict[str, LaneOutcome],
        report: RunReport,
    ) -> Optional[Divergence]:
        def diverge(reason: str) -> Divergence:
            return Divergence(
                index,
                statement,
                reason,
                {name: out.summary() for name, out in outcomes.items()},
            )

        error_classes = {out.error for out in outcomes.values()}
        if error_classes == {None}:
            pass  # all succeeded
        elif len(error_classes) == 1:
            # Everyone failed the same way; statement had no effect anywhere.
            return None
        else:
            encrypted = {
                name: out for name, out in outcomes.items()
                if name.startswith(ENCRYPTED_PREFIX)
            }
            plaintext = {
                name: out for name, out in outcomes.items()
                if not name.startswith(ENCRYPTED_PREFIX)
            }
            proxy_refused = (
                encrypted
                and all(out.error == "unsupported" for out in encrypted.values())
                and all(out.error is None for out in plaintext.values())
            )
            if (
                proxy_refused
                and statement.kind == "select"
                and statement.may_be_unsupported
            ):
                # Figure 9: the proxy may refuse a read it cannot run over
                # ciphertext -- but only where the generator declared the
                # refusal legitimate.  An unflagged refusal is a divergence,
                # so an over-refusing proxy regression cannot hide behind
                # this branch; plaintext lanes must still agree on the answer.
                report.refused_by_proxy += 1
                outcomes = plaintext
            else:
                return diverge("lanes disagree on success/failure")

        successes = {n: o for n, o in outcomes.items() if o.error is None}
        if not successes:
            return None
        reference_name, reference = next(iter(successes.items()))

        if reference.rows is not None:
            report.selects_compared += 1
            expected = _normalize(reference.rows, statement.ordered)
            for name, outcome in successes.items():
                if outcome.rows is None:
                    return diverge(f"{name} returned no result set")
                actual = _normalize(outcome.rows, statement.ordered)
                if not _rows_match(expected, actual):
                    return diverge(
                        f"result rows differ between {reference_name} and {name}: "
                        f"{expected[:5]!r} vs {actual[:5]!r}"
                    )
            return None

        for name, outcome in successes.items():
            if outcome.rows is not None:
                return diverge(f"{name} unexpectedly returned rows")
            if outcome.rowcount != reference.rowcount:
                return diverge(
                    f"rowcount differs between {reference_name} "
                    f"({reference.rowcount}) and {name} ({outcome.rowcount})"
                )
        return None

    # -- entry point with shrinking --------------------------------------
    def run_with_shrinking(
        self,
        statements: Sequence[GeneratedStatement],
        seed: Optional[int] = None,
        max_probes: int = 400,
    ) -> RunReport:
        """Replay a stream; on divergence, ddmin-minimize it for the report."""
        report = self.run(statements)
        report.seed = seed
        if report.ok:
            return report
        from repro.testing.shrinker import shrink_stream

        def still_fails(candidate: Sequence[GeneratedStatement]) -> bool:
            return not self.run(candidate).ok

        report.minimized = shrink_stream(
            list(statements), still_fails, max_probes=max_probes
        )
        return report

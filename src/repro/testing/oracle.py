"""The differential oracle: replay one stream over several lanes, compare.

A *lane* is a :class:`repro.api.Connection`: plaintext over the in-memory
engine, plaintext over SQLite, or the encrypted proxy over either backend.
Every statement of a stream runs on every lane and the outcomes must agree:

* identical decrypted rows for SELECTs -- compared as sequences when the
  generator guaranteed a total ORDER BY, as multisets otherwise;
* identical affected-row counts for DML;
* identical error *class* when a statement fails everywhere.

The proxy is allowed one asymmetry, straight from the paper's Figure 9: it
may *refuse* a side-effect-free SELECT (``NotSupportedError``, e.g. an
equality predicate over a HOM-stale onion) that plaintext lanes can answer.
It may never return a different answer.  Refusals must agree across both
encrypted lanes and are counted, not failed.

Floats are compared with a tolerance: the encrypted lane recomputes
DECIMAL aggregates from exactly-scaled integers while plaintext lanes
accumulate IEEE floats, so the two can differ in the last ulps.
"""

from __future__ import annotations

import dataclasses
import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro import faults
from repro.api import exceptions
from repro.api.connection import Connection, connect
from repro.errors import ReproError, SimulatedCrash, UnsupportedQueryError
from repro.testing.generator import GeneratedStatement

LaneFactory = Callable[[], dict[str, Connection]]

#: Lanes whose names start with this prefix hold an encrypting proxy.
ENCRYPTED_PREFIX = "enc-"


def default_lane_factory(
    parallel_workers: int = 0,
    parallel_chunk_threshold: int = 4,
    remote: bool = False,
    remote_fetch_chunk: int = 64,
    packed_off: bool = False,
    sharded: int = 0,
    sharded_mode: str = "det-hash",
    **proxy_kwargs: Any,
) -> LaneFactory:
    """Fresh plaintext + encrypted connections over both backends.

    ``proxy_kwargs`` (``paillier``, ``master_key``, ...) are forwarded to the
    encrypted lanes so test suites can share one session key pair.  The
    encrypted lanes all run with HOM slot packing at the proxy's default
    (on); ``packed_off=True`` adds an ``enc-packed-off`` lane with packing
    disabled, so a packed-pipeline divergence bisects cleanly against the
    scalar-HOM code path answering the identical stream.

    ``parallel_workers > 0`` adds a fifth lane, ``enc-parallel``: the same
    encrypted proxy over the in-memory backend but with a crypto worker pool
    of that many processes (and an aggressively low chunk threshold so small
    generated batches actually offload).  The lane must decrypt to
    byte-identical results *and* refuse exactly the statements the serial
    encrypted lanes refuse -- parallel offload may never change behaviour.

    ``sharded=N`` (N >= 2) adds an ``enc-sharded`` lane: the same encrypted
    proxy over a :class:`~repro.shard.ShardedBackend` of N in-memory shards
    (``sharded_mode`` picks det-hash or ope-range placement).  Scatter-gather
    execution -- routed inserts, k-way ordered merges, homomorphic partial-
    sum recombination, broadcast fallbacks -- must match the single-backend
    lanes answer for answer and refusal for refusal on every stream.

    ``remote=True`` adds a sixth lane, ``enc-remote``: every statement of
    the stream crosses a real TCP connection to an embedded
    :class:`~repro.server.loopback.LoopbackServer` -- ECDH handshake, AEAD
    framing, session multiplexing, server-side cursor chunking (a small
    ``remote_fetch_chunk`` so multi-chunk FETCH paths actually run) -- and
    must agree, answer for answer and refusal for refusal, with the
    in-process encrypted lanes.
    """

    def factory() -> dict[str, Connection]:
        lanes = {
            "plain-memory": connect(encrypted=False, backend="memory"),
            "plain-sqlite": connect(encrypted=False, backend="sqlite"),
            "enc-memory": connect(backend="memory", **proxy_kwargs),
            "enc-sqlite": connect(backend="sqlite", **proxy_kwargs),
        }
        if parallel_workers > 0:
            from repro.parallel import ParallelConfig

            lanes["enc-parallel"] = connect(
                backend="memory",
                parallelism=ParallelConfig(
                    workers=parallel_workers,
                    chunk_threshold=parallel_chunk_threshold,
                ),
                **proxy_kwargs,
            )
        if packed_off:
            off_kwargs = {k: v for k, v in proxy_kwargs.items() if k != "hom_packing"}
            lanes["enc-packed-off"] = connect(
                backend="memory", hom_packing=False, **off_kwargs
            )
        if sharded > 1:
            from repro.shard import ShardedBackend

            lanes["enc-sharded"] = connect(
                backend=ShardedBackend(shards=sharded, mode=sharded_mode),
                **proxy_kwargs,
            )
        if remote:
            from repro.server.loopback import connect_loopback

            lanes["enc-remote"] = connect_loopback(
                fetch_chunk=remote_fetch_chunk, backend="memory", **proxy_kwargs
            )
        return lanes

    return factory


# ---------------------------------------------------------------------------
# outcomes
# ---------------------------------------------------------------------------
@dataclass
class LaneOutcome:
    """What one lane did with one statement."""

    error: Optional[str] = None  # None | "unsupported" | "error"
    error_detail: str = ""
    rows: Optional[list[tuple]] = None
    rowcount: int = 0

    def summary(self) -> str:
        if self.error is not None:
            return f"{self.error}({self.error_detail})"
        if self.rows is not None:
            return f"{len(self.rows)} rows"
        return f"rowcount={self.rowcount}"


@dataclass
class Divergence:
    """The first observed disagreement between lanes."""

    index: int
    statement: GeneratedStatement
    reason: str
    outcomes: dict[str, str]

    def describe(self) -> str:
        lanes = "\n".join(f"    {name}: {out}" for name, out in self.outcomes.items())
        return (
            f"statement #{self.index}: {self.statement.describe()}\n"
            f"  {self.reason}\n{lanes}"
        )


@dataclass
class RunReport:
    """Outcome of one stream replay across all lanes."""

    divergence: Optional[Divergence] = None
    statements_executed: int = 0
    selects_compared: int = 0
    refused_by_proxy: int = 0
    minimized: Optional[list[GeneratedStatement]] = None
    seed: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        if self.ok:
            return (
                f"conformant: {self.statements_executed} statements, "
                f"{self.selects_compared} SELECT comparisons, "
                f"{self.refused_by_proxy} proxy refusals"
            )
        lines = [f"DIVERGENCE after {self.statements_executed} statements"]
        if self.seed is not None:
            lines.append(f"reproduce with --repro-seed={self.seed}")
        lines.append(self.divergence.describe())
        if self.minimized is not None:
            lines.append(f"minimized reproducer ({len(self.minimized)} statements):")
            lines.extend(f"  {s.describe()}" for s in self.minimized)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# normalization / comparison
# ---------------------------------------------------------------------------
def _canonical_cell(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    return value


def _cells_match(a: Any, b: Any) -> bool:
    a, b = _canonical_cell(a), _canonical_cell(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def _rows_match(a: Sequence[tuple], b: Sequence[tuple]) -> bool:
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        if not all(_cells_match(x, y) for x, y in zip(row_a, row_b)):
            return False
    return True


def _sort_key(row: tuple) -> tuple:
    key = []
    for value in row:
        value = _canonical_cell(value)
        if value is None:
            key.append((0, ""))
        elif isinstance(value, (int, float)):
            # Round for ordering only, so float noise cannot interleave rows
            # differently across lanes; equality is checked with isclose.
            key.append((1, "", round(float(value), 7)))
        elif isinstance(value, str):
            key.append((2, value))
        elif isinstance(value, bytes):
            key.append((3, value.hex()))
        else:
            key.append((4, repr(value)))
    return tuple(key)


def _normalize(rows: Sequence[tuple], ordered: bool) -> list[tuple]:
    normalized = [tuple(row) for row in rows]
    if not ordered:
        normalized.sort(key=_sort_key)
    return normalized


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------
class DifferentialRunner:
    """Replays statement streams over fresh lanes and compares outcomes."""

    def __init__(self, lane_factory: LaneFactory):
        self.lane_factory = lane_factory

    # -- execution -------------------------------------------------------
    @staticmethod
    def _run_statement(
        connection: Connection, statement: GeneratedStatement
    ) -> LaneOutcome:
        try:
            cursor = connection.cursor()
            cursor.execute(statement.sql, statement.params)
        except exceptions.NotSupportedError as exc:
            return LaneOutcome(error="unsupported", error_detail=str(exc)[:120])
        except exceptions.Error as exc:
            return LaneOutcome(
                error="error", error_detail=f"{type(exc).__name__}: {str(exc)[:120]}"
            )
        if cursor.description is not None:
            return LaneOutcome(rows=cursor.fetchall())
        return LaneOutcome(rowcount=max(cursor.rowcount, 0))

    def run(self, statements: Sequence[GeneratedStatement]) -> RunReport:
        """Replay one stream on fresh lanes; stop at the first divergence."""
        lanes = self.lane_factory()
        report = RunReport()
        try:
            for index, statement in enumerate(statements):
                outcomes = {
                    name: self._run_statement(conn, statement)
                    for name, conn in lanes.items()
                }
                report.statements_executed += 1
                divergence = self._compare(index, statement, outcomes, report)
                if divergence is not None:
                    report.divergence = divergence
                    return report
        finally:
            for conn in lanes.values():
                conn.close()
        return report

    # -- comparison ------------------------------------------------------
    def _compare(
        self,
        index: int,
        statement: GeneratedStatement,
        outcomes: dict[str, LaneOutcome],
        report: RunReport,
    ) -> Optional[Divergence]:
        def diverge(reason: str) -> Divergence:
            return Divergence(
                index,
                statement,
                reason,
                {name: out.summary() for name, out in outcomes.items()},
            )

        error_classes = {out.error for out in outcomes.values()}
        if error_classes == {None}:
            pass  # all succeeded
        elif len(error_classes) == 1:
            # Everyone failed the same way; statement had no effect anywhere.
            return None
        else:
            encrypted = {
                name: out for name, out in outcomes.items()
                if name.startswith(ENCRYPTED_PREFIX)
            }
            plaintext = {
                name: out for name, out in outcomes.items()
                if not name.startswith(ENCRYPTED_PREFIX)
            }
            proxy_refused = (
                encrypted
                and all(out.error == "unsupported" for out in encrypted.values())
                and all(out.error is None for out in plaintext.values())
            )
            if (
                proxy_refused
                and statement.kind == "select"
                and statement.may_be_unsupported
            ):
                # Figure 9: the proxy may refuse a read it cannot run over
                # ciphertext -- but only where the generator declared the
                # refusal legitimate.  An unflagged refusal is a divergence,
                # so an over-refusing proxy regression cannot hide behind
                # this branch; plaintext lanes must still agree on the answer.
                report.refused_by_proxy += 1
                outcomes = plaintext
            else:
                return diverge("lanes disagree on success/failure")

        successes = {n: o for n, o in outcomes.items() if o.error is None}
        if not successes:
            return None
        reference_name, reference = next(iter(successes.items()))

        if reference.rows is not None:
            report.selects_compared += 1
            expected = _normalize(reference.rows, statement.ordered)
            for name, outcome in successes.items():
                if outcome.rows is None:
                    return diverge(f"{name} returned no result set")
                actual = _normalize(outcome.rows, statement.ordered)
                if not _rows_match(expected, actual):
                    return diverge(
                        f"result rows differ between {reference_name} and {name}: "
                        f"{expected[:5]!r} vs {actual[:5]!r}"
                    )
            return None

        for name, outcome in successes.items():
            if outcome.rows is not None:
                return diverge(f"{name} unexpectedly returned rows")
            if outcome.rowcount != reference.rowcount:
                return diverge(
                    f"rowcount differs between {reference_name} "
                    f"({reference.rowcount}) and {name} ({outcome.rowcount})"
                )
        return None

    # -- entry point with shrinking --------------------------------------
    def run_with_shrinking(
        self,
        statements: Sequence[GeneratedStatement],
        seed: Optional[int] = None,
        max_probes: int = 400,
    ) -> RunReport:
        """Replay a stream; on divergence, ddmin-minimize it for the report."""
        report = self.run(statements)
        report.seed = seed
        if report.ok:
            return report
        from repro.testing.shrinker import shrink_stream

        def still_fails(candidate: Sequence[GeneratedStatement]) -> bool:
            return not self.run(candidate).ok

        report.minimized = shrink_stream(
            list(statements), still_fails, max_probes=max_probes
        )
        return report


# ---------------------------------------------------------------------------
# the chaos conformance lane
# ---------------------------------------------------------------------------
#: Frames/heads a ``transport.recv`` fault may interrupt without making the
#: statement's server-side effect ambiguous: reads never mutate state, and a
#: statement inside an explicit transaction is rolled back wholesale by the
#: server when the session drops.
_READ_ONLY_HEADS = frozenset({"SELECT", "FETCH", "PREPARE", "STATS"})

#: Sites whose context carries a ``target`` the runner scopes to the chaos
#: stack, so the fault-free shadow lane can never be hit by the same plan.
_SCOPE_TARGETS: dict[str, Callable[[Any], Any]] = {
    "backend.execute": lambda server: server.proxy.db,
    "server.session.execute": lambda server: server.manager,
    "pool.scatter": lambda server: server.proxy.pool,
    "paillier.refill": lambda server: server.proxy,
}

#: Sentinel: a probe the encrypted proxy refused (NotSupportedError).
_REFUSED = object()


def conformance_problems(plan: "faults.FaultPlan") -> list[str]:
    """Why ``plan`` is unsound for answer-for-answer conformance, if at all.

    Every instrumented site except ``transport.recv`` faults *before* the
    guarded work happens, so a clean client-visible error implies the
    statement was never applied and the shadow lane can simply skip it.  A
    ``transport.recv`` error fires after the server executed and before the
    client learns the answer -- sound only for read-only frames, or inside
    an explicit transaction (the server rolls the whole transaction back on
    disconnect) provided the COMMIT acknowledgement itself is never the
    victim (a lost COMMIT ack leaves the transaction durably committed
    while the client reports it aborted).
    """
    problems = []
    for index, rule in enumerate(plan.rules):
        if rule.site != "transport.recv" or rule.kind != "error":
            continue
        heads = rule.match.get("head")
        if heads is not None and all(h in _READ_ONLY_HEADS for h in heads):
            continue
        excluded = tuple(rule.exclude.get("frame", ())) + tuple(
            rule.exclude.get("head", ())
        )
        if rule.match.get("in_txn") == (True,) and "COMMIT" in excluded:
            continue
        problems.append(
            f"rule #{index}: transport.recv errors must match "
            f"head in {sorted(_READ_ONLY_HEADS)} or match in_txn=(True,) "
            "with frame/head COMMIT excluded; anything else makes the "
            "statement's server-side effect ambiguous"
        )
    return problems


@dataclass
class ChaosReport:
    """Outcome of one stream replayed under an armed fault plan."""

    statements_executed: int = 0
    selects_compared: int = 0
    refused_by_proxy: int = 0
    faults_injected: int = 0
    chaos_errors: int = 0  # statements that failed cleanly on the chaos lane
    transactions_resynced: int = 0
    invariant_checks: int = 0
    invariant_violations: list = field(default_factory=list)
    client_reconnects: int = 0
    client_retries: int = 0
    divergence: Optional[Divergence] = None
    injector_stats: dict = field(default_factory=dict)
    seed: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.invariant_violations

    def describe(self) -> str:
        lines = [
            f"{'conformant' if self.ok else 'FAILED'}: "
            f"{self.statements_executed} statements, "
            f"{self.faults_injected} faults injected, "
            f"{self.chaos_errors} clean chaos errors, "
            f"{self.selects_compared} SELECT comparisons, "
            f"{self.client_reconnects} reconnects, "
            f"{self.client_retries} transparent retries, "
            f"{self.invariant_checks} invariant checks"
        ]
        if self.seed is not None:
            lines.append(f"reproduce with --repro-seed={self.seed}")
        if self.divergence is not None:
            lines.append(self.divergence.describe())
        lines.extend(f"invariant violation: {v}" for v in self.invariant_violations)
        return "\n".join(lines)


class _ProbeStats:
    """Throwaway stats sink for plan-cache probes (keeps real counters clean)."""

    plan_cache_hits = 0
    plan_cache_misses = 0
    plan_cache_invalidations = 0


class ChaosRunner:
    """Replay a stream under an armed fault plan and demand conformance.

    Two lanes run in lockstep: ``enc-chaos`` -- a real TCP connection to an
    embedded :class:`~repro.server.loopback.LoopbackServer` with the fault
    plan armed and scoped to exactly that stack -- and ``shadow``, an
    identical in-process encrypted proxy that never sees a fault.  Every
    statement runs on the chaos lane first:

    * success: the shadow runs it too (injection paused) and the answers
      must match, row for row;
    * clean DB-API failure: the statement was not applied (see
      :func:`conformance_problems`), so the shadow skips it; if the chaos
      lane's transaction aborted, the shadow's is rolled back to match;
    * anything that escapes as a non-DB-API exception propagates -- chaos
      must never produce a dirty crash.

    After every statement during which a fault actually fired, an invariant
    probe (injection paused) asserts the two lanes still agree: identical
    table contents, identical SUM answers on every numeric column -- which
    drives the HOM onion, so a lowered-but-unadjusted onion or a readable
    HOM-stale column surfaces here -- symmetric refusals, and a chaos-side
    plan cache with no stale entry surviving a lookup sweep.
    """

    def __init__(
        self,
        plan: "faults.FaultPlan",
        *,
        server_kwargs: Optional[dict] = None,
        shadow_kwargs: Optional[dict] = None,
        client_kwargs: Optional[dict] = None,
        strict: bool = True,
    ):
        if strict:
            problems = conformance_problems(plan)
            if problems:
                raise ValueError(
                    "fault plan is not conformance-safe:\n  "
                    + "\n  ".join(problems)
                )
        self.plan = plan
        self.server_kwargs = dict(server_kwargs or {})
        self.shadow_kwargs = dict(shadow_kwargs or {})
        self.client_kwargs = {
            # Fast, bounded recovery so injected disconnects heal in
            # milliseconds instead of the production-scale defaults.
            "timeout": 30.0,
            "max_retries": 4,
            "reconnect_attempts": 4,
            "reconnect_backoff": 0.01,
            "reconnect_backoff_cap": 0.1,
            **(client_kwargs or {}),
        }

    # -- plan scoping ----------------------------------------------------
    def _scoped_plan(self, server) -> "faults.FaultPlan":
        """Pin unscoped rules to the chaos server's own objects."""
        rules = []
        for rule in self.plan.rules:
            getter = _SCOPE_TARGETS.get(rule.site)
            if getter is not None and rule.scope is None:
                target = getter(server)
                if target is None:
                    continue  # e.g. a pool rule against a pool-less proxy
                rule = dataclasses.replace(rule, scope=target)
            rules.append(rule)
        return faults.FaultPlan(self.plan.seed, rules)

    # -- the replay loop -------------------------------------------------
    def run(self, statements: Sequence[GeneratedStatement]) -> ChaosReport:
        from repro.server.loopback import connect_loopback

        report = ChaosReport()
        chaos = connect_loopback(
            backend="memory",
            client_kwargs=self.client_kwargs,
            **self.server_kwargs,
        )
        server = chaos.loopback_server.server
        shadow = connect(backend="memory", **self.shadow_kwargs)
        try:
            with faults.armed(self._scoped_plan(server)) as injector:
                for index, statement in enumerate(statements):
                    fired_before = injector.fired_count
                    chaos_out = DifferentialRunner._run_statement(
                        chaos, statement
                    )
                    report.statements_executed += 1
                    if chaos_out.error is not None:
                        # The chaos lane failed cleanly; the statement was
                        # not applied there, so the shadow skips it -- but a
                        # refusal (NotSupportedError) is proxy behaviour,
                        # not a fault, and must be symmetric.
                        with faults.paused():
                            if chaos_out.error == "unsupported":
                                shadow_out = DifferentialRunner._run_statement(
                                    shadow, statement
                                )
                                if shadow_out.error != "unsupported":
                                    report.divergence = self._diverge(
                                        index,
                                        statement,
                                        chaos_out,
                                        shadow_out,
                                        "chaos lane refused a statement the "
                                        "fault-free shadow accepts",
                                    )
                                    break
                                report.refused_by_proxy += 1
                            else:
                                report.chaos_errors += 1
                                self._resync_transactions(
                                    chaos, shadow, report
                                )
                    else:
                        with faults.paused():
                            shadow_out = DifferentialRunner._run_statement(
                                shadow, statement
                            )
                        divergence = self._compare(
                            index, statement, chaos_out, shadow_out, report
                        )
                        if divergence is not None:
                            report.divergence = divergence
                            break
                    if injector.fired_count > fired_before:
                        report.faults_injected += (
                            injector.fired_count - fired_before
                        )
                        with faults.paused():
                            violation = self._check_invariants(
                                chaos, shadow, server
                            )
                        report.invariant_checks += 1
                        if violation is not None:
                            report.invariant_violations.append(
                                f"after statement #{index} "
                                f"({statement.describe()}): {violation}"
                            )
                            break
                report.injector_stats = injector.stats()
        finally:
            client = chaos.proxy
            report.client_reconnects = client.reconnects
            report.client_retries = client.retries
            shadow.close()
            chaos.close()
        return report

    # -- lockstep comparison ---------------------------------------------
    @staticmethod
    def _diverge(index, statement, chaos_out, shadow_out, reason) -> Divergence:
        return Divergence(
            index,
            statement,
            reason,
            {"enc-chaos": chaos_out.summary(), "shadow": shadow_out.summary()},
        )

    def _compare(
        self,
        index: int,
        statement: GeneratedStatement,
        chaos_out: LaneOutcome,
        shadow_out: LaneOutcome,
        report: ChaosReport,
    ) -> Optional[Divergence]:
        if shadow_out.error is not None:
            return self._diverge(
                index, statement, chaos_out, shadow_out,
                "shadow failed a statement the chaos lane ran",
            )
        if chaos_out.rows is not None:
            if shadow_out.rows is None:
                return self._diverge(
                    index, statement, chaos_out, shadow_out,
                    "shadow returned no result set",
                )
            report.selects_compared += 1
            expected = _normalize(shadow_out.rows, statement.ordered)
            actual = _normalize(chaos_out.rows, statement.ordered)
            if not _rows_match(expected, actual):
                return self._diverge(
                    index, statement, chaos_out, shadow_out,
                    f"result rows differ under faults: "
                    f"{expected[:5]!r} vs {actual[:5]!r}",
                )
            return None
        if shadow_out.rows is not None:
            return self._diverge(
                index, statement, chaos_out, shadow_out,
                "shadow unexpectedly returned rows",
            )
        if chaos_out.rowcount != shadow_out.rowcount:
            return self._diverge(
                index, statement, chaos_out, shadow_out,
                f"rowcount differs under faults "
                f"({chaos_out.rowcount} vs {shadow_out.rowcount})",
            )
        return None

    def _resync_transactions(
        self, chaos: Connection, shadow: Connection, report: ChaosReport
    ) -> None:
        """Mirror a chaos-side transaction abort onto the shadow.

        When a fault kills the connection mid-transaction the server rolls
        the whole transaction back; the shadow must roll back too or the
        lanes' visible states drift apart.
        """
        if shadow._in_transaction() and not chaos._in_transaction():
            shadow.cursor().execute("ROLLBACK")
            report.transactions_resynced += 1

    # -- invariants -------------------------------------------------------
    def _probe(self, connection: Connection, sql: str):
        """Run one probe; rows, ``_REFUSED``, or an error string."""
        try:
            cursor = connection.cursor()
            cursor.execute(sql)
            return [tuple(row) for row in cursor.fetchall()]
        except exceptions.NotSupportedError:
            return _REFUSED
        except exceptions.Error as exc:
            return f"{type(exc).__name__}: {exc}"

    def _check_invariants(
        self, chaos: Connection, shadow: Connection, server
    ) -> Optional[str]:
        """Proxy-metadata <-> backend consistency, probed through both lanes.

        Called with injection paused.  Returns a description of the first
        violated invariant, or None.
        """
        shadow_proxy = shadow.proxy
        tables = sorted(
            set(shadow_proxy.schema.tables) | set(server.proxy.schema.tables)
        )
        for table in tables:
            chaos_rows = self._probe(chaos, f"SELECT * FROM {table}")
            shadow_rows = self._probe(shadow, f"SELECT * FROM {table}")
            if isinstance(chaos_rows, str) or isinstance(shadow_rows, str):
                return (
                    f"probing table {table} failed "
                    f"(chaos: {chaos_rows!r:.120}, shadow: {shadow_rows!r:.120})"
                )
            if (chaos_rows is _REFUSED) != (shadow_rows is _REFUSED):
                return f"asymmetric refusal reading table {table}"
            if chaos_rows is _REFUSED:
                continue
            if not _rows_match(
                _normalize(shadow_rows, ordered=False),
                _normalize(chaos_rows, ordered=False),
            ):
                return (
                    f"table {table} diverged: shadow has {len(shadow_rows)} "
                    f"row(s), chaos lane has {len(chaos_rows)}"
                )
            violation = self._check_sums(chaos, shadow, table, shadow_rows)
            if violation is not None:
                return violation
        return self._check_plan_cache(server)

    def _check_sums(
        self,
        chaos: Connection,
        shadow: Connection,
        table: str,
        shadow_rows: list,
    ) -> Optional[str]:
        """SUM every numeric column through both proxies vs. a Python sum.

        The SQL SUM rides the HOM (Paillier) onion, so this is the probe
        that catches a column whose metadata and ciphertext state fell out
        of step -- a lowered-but-unadjusted onion or a readable HOM-stale
        slot yields a sum that disagrees with the plaintext recomputation.
        """
        cursor = shadow.cursor()
        cursor.execute(f"SELECT * FROM {table}")
        cursor.fetchall()
        names = [col[0] for col in cursor.description or []]
        for col_index, name in enumerate(names):
            values = [
                row[col_index]
                for row in shadow_rows
                if row[col_index] is not None
            ]
            if not values or not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in values
            ):
                continue
            sql = f"SELECT SUM({name}) FROM {table}"
            chaos_sum = self._probe(chaos, sql)
            shadow_sum = self._probe(shadow, sql)
            if isinstance(chaos_sum, str) or isinstance(shadow_sum, str):
                return (
                    f"SUM probe on {table}.{name} failed "
                    f"(chaos: {chaos_sum!r:.120}, shadow: {shadow_sum!r:.120})"
                )
            if (chaos_sum is _REFUSED) != (shadow_sum is _REFUSED):
                return f"asymmetric SUM refusal on {table}.{name}"
            if chaos_sum is _REFUSED:
                continue
            expected = sum(values)
            for lane, got in (("chaos", chaos_sum), ("shadow", shadow_sum)):
                answer = got[0][0] if got and got[0] else None
                if answer is None or not _cells_match(answer, expected):
                    return (
                        f"SUM({table}.{name}) on the {lane} lane is "
                        f"{answer!r}, plaintext recomputation says "
                        f"{expected!r}"
                    )
        return None

    @staticmethod
    def _check_plan_cache(server) -> Optional[str]:
        """Sweep the chaos proxy's plan cache; no stale plan may survive."""
        proxy = server.proxy
        cache = proxy.plan_cache
        version = proxy.schema.version
        sink = _ProbeStats()
        for key in list(cache._entries):
            cache.get(key, version, sink)
        for key, entry in cache._entries.items():
            if entry.schema_version != version:
                return (
                    f"plan cache kept a stale plan for {key!r} "
                    f"(planned at schema v{entry.schema_version}, "
                    f"current v{version})"
                )
        return None


# ---------------------------------------------------------------------------
# the crash-recovery lane
# ---------------------------------------------------------------------------
@dataclass
class RecoveryReport:
    """Outcome of one stream with a simulated crash and catalog recovery."""

    crash_site: Optional[str] = None
    statements_executed: int = 0
    selects_compared: int = 0
    refused: int = 0
    crashed: bool = False
    crash_index: Optional[int] = None
    recoveries: int = 0
    #: Adjustment intents that were neither committed nor aborted when the
    #: proxy "died" and had to be resolved (via the canary) on recovery.
    in_doubt_resolved: int = 0
    transactions_resynced: int = 0
    divergence: Optional[Divergence] = None
    metadata_mismatches: list = field(default_factory=list)
    seed: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.metadata_mismatches

    def describe(self) -> str:
        lines = [
            f"{'conformant' if self.ok else 'FAILED'}: "
            f"{self.statements_executed} statements, "
            f"crash at {self.crash_site} "
            f"({'statement #%s' % self.crash_index if self.crashed else 'never fired'}), "
            f"{self.recoveries} recoveries, "
            f"{self.in_doubt_resolved} in-doubt adjustments resolved, "
            f"{self.selects_compared} SELECT comparisons, "
            f"{self.refused} symmetric refusals"
        ]
        if self.seed is not None:
            lines.append(f"reproduce with --repro-seed={self.seed}")
        if self.divergence is not None:
            lines.append(self.divergence.describe())
        lines.extend(f"metadata mismatch: {m}" for m in self.metadata_mismatches)
        return "\n".join(lines)


class RecoveryRunner:
    """Kill the proxy at a named crash point mid-stream and demand recovery.

    Two encrypted proxies run the same stream in lockstep, sharing one
    master key and Paillier key pair:

    * ``enc-recovery`` -- a proxy over *file-backed* storage (one SQLite
      database, or N sharded SQLite files) writing every metadata mutation
      through a :class:`~repro.durability.MetadataCatalog`, with a one-shot
      :func:`faults.crash` rule armed at one of :data:`faults.CRASH_SITES`;
    * ``shadow`` -- an identical in-memory proxy with no catalog and no
      faults, the uninterrupted reference.

    When the crash fires, the harness simulates process death -- unsynced
    WAL records are abandoned, the backend connection drops (rolling back
    any open transaction) -- then rebuilds the proxy from snapshot+WAL
    against the surviving database files.  The crashed statement replays,
    the stream resumes, and at the end the two proxies must agree on every
    answer *and* on all recovered metadata: onion levels, HOM staleness,
    OPE range-join groups, JOIN-ADJ transitivity groups and effective
    scalars (re-derived from the master key, never logged), shard routing
    and the plan-cache schema version.  Any in-doubt two-phase adjustment
    must be resolved during recovery -- none may survive.
    """

    #: ``mode`` -> proxy/backend flavour of the primary lane.
    MODES = ("scalar", "packed", "sharded")

    def __init__(
        self,
        workdir: str,
        crash_site: str,
        *,
        mode: str = "packed",
        at_hit: int = 1,
        shards: int = 3,
        sharded_mode: str = "det-hash",
        snapshot_every: int = 8,
        seed: int = 0,
        **proxy_kwargs: Any,
    ):
        if crash_site not in faults.CRASH_SITES:
            raise ValueError(
                f"{crash_site!r} is not a crash point (one of {faults.CRASH_SITES})"
            )
        if mode not in self.MODES:
            raise ValueError(f"unknown recovery mode {mode!r} (one of {self.MODES})")
        self.workdir = os.fspath(workdir)
        self.crash_site = crash_site
        self.mode = mode
        self.at_hit = at_hit
        self.shards = shards
        self.sharded_mode = sharded_mode
        self.snapshot_every = snapshot_every
        self.seed = seed
        kwargs = dict(proxy_kwargs)
        kwargs.setdefault("hom_precompute", 8)
        if mode == "scalar":
            kwargs.setdefault("hom_packing", False)
        self.proxy_kwargs = kwargs
        self._wal_path = os.path.join(self.workdir, "catalog.wal")
        self._db_path = os.path.join(self.workdir, "primary.db")
        self._shard_paths = [
            os.path.join(self.workdir, f"primary.shard{i}") for i in range(shards)
        ]

    # -- lane construction -------------------------------------------------
    def _build_backend(self, allow_existing: bool):
        if self.mode == "sharded":
            from repro.shard.backend import ShardedBackend

            return ShardedBackend(
                shards=self.shards,
                base="sqlite",
                mode=self.sharded_mode,
                paths=self._shard_paths,
                allow_existing=allow_existing,
            )
        from repro.api.sqlite_backend import SQLiteBackend

        return SQLiteBackend(path=self._db_path, allow_existing=allow_existing)

    def _build_primary(self, allow_existing: bool):
        from repro.core.proxy import CryptDBProxy
        from repro.durability import MetadataCatalog

        return CryptDBProxy(
            db=self._build_backend(allow_existing),
            catalog=MetadataCatalog(self._wal_path, snapshot_every=self.snapshot_every),
            **self.proxy_kwargs,
        )

    def _build_shadow(self):
        from repro.core.proxy import CryptDBProxy

        db = None
        if self.mode == "sharded":
            from repro.shard.backend import ShardedBackend

            db = ShardedBackend(shards=self.shards, mode=self.sharded_mode)
        return CryptDBProxy(db=db, **self.proxy_kwargs)

    @staticmethod
    def _close_backend(backend) -> None:
        close = getattr(backend, "close", None)
        if close is not None:
            close()

    # -- statement execution ----------------------------------------------
    @staticmethod
    def _run_statement(proxy, statement: GeneratedStatement) -> LaneOutcome:
        try:
            result = proxy.execute(statement.sql, statement.params)
        except SimulatedCrash:
            raise
        except UnsupportedQueryError as exc:
            return LaneOutcome(error="unsupported", error_detail=str(exc)[:120])
        except ReproError as exc:
            return LaneOutcome(
                error="error", error_detail=f"{type(exc).__name__}: {str(exc)[:120]}"
            )
        if statement.kind == "select":
            return LaneOutcome(rows=[tuple(row) for row in result.rows])
        return LaneOutcome(rowcount=max(result.rowcount, 0))

    # -- the replay loop ---------------------------------------------------
    def run(self, statements: Sequence[GeneratedStatement]) -> RecoveryReport:
        report = RecoveryReport(crash_site=self.crash_site, seed=self.seed)
        primary = self._build_primary(allow_existing=False)
        shadow = self._build_shadow()
        plan = faults.FaultPlan(
            self.seed, [faults.crash(self.crash_site, at_hit=self.at_hit)]
        )
        try:
            with faults.armed(plan):
                for index, statement in enumerate(statements):
                    try:
                        primary_out = self._run_statement(primary, statement)
                    except SimulatedCrash:
                        report.crashed = True
                        report.crash_index = index
                        primary = self._recover(primary, report)
                        primary_out = self._resume(primary, shadow, statement, report)
                        if primary_out is None:
                            report.statements_executed += 1
                            continue
                    report.statements_executed += 1
                    with faults.paused():
                        shadow_out = self._run_statement(shadow, statement)
                    divergence = self._compare(
                        index, statement, primary_out, shadow_out, report
                    )
                    if divergence is not None:
                        report.divergence = divergence
                        return report
            report.metadata_mismatches.extend(
                self._metadata_mismatches(primary, shadow)
            )
        finally:
            shadow.close()
            primary.close()
            self._close_backend(primary.db)
        return report

    # -- crash + recovery --------------------------------------------------
    def _recover(self, primary, report: RecoveryReport):
        """Simulate process death, then rebuild the proxy from the catalog."""
        # The process is gone: unsynced WAL records vanish, the backend
        # connection drops (sqlite rolls back any open transaction), and no
        # in-memory metadata survives.
        if primary.catalog is not None:
            primary.catalog.abandon()
        primary.close()
        self._close_backend(primary.db)
        report.in_doubt_resolved += self._pending_in_doubt()
        rebuilt = self._build_primary(allow_existing=True)
        report.recoveries += 1
        if rebuilt.catalog.state.in_doubt:
            report.metadata_mismatches.append(
                "in-doubt intents survived recovery: "
                f"{sorted(rebuilt.catalog.state.in_doubt)}"
            )
        return rebuilt

    def _pending_in_doubt(self) -> int:
        """In-doubt intents the durable log holds at the moment of death."""
        if not os.path.exists(self._wal_path):
            return 0
        from repro.durability import decode_records, replay_records

        with open(self._wal_path, "rb") as handle:
            records, _ = decode_records(handle.read())
        return len(replay_records(records).in_doubt)

    def _resume(
        self,
        primary,
        shadow,
        statement: GeneratedStatement,
        report: RecoveryReport,
    ) -> Optional[LaneOutcome]:
        """Replay the statement the crash interrupted; None when done.

        Crash points fire only around catalog writes, which order the
        possibilities: a crashed COMMIT/ROLLBACK already ran at the backend
        (its catalog records follow the backend call), so the shadow simply
        completes the same control statement; a crashed CREATE whose record
        reached the WAL was finished *by recovery* (the missing anon DDL is
        completed from the catalog), so only the shadow still runs it; any
        other statement never took effect and replays on both lanes -- after
        rolling the shadow's open transaction back, because the primary's
        died with the process.
        """
        if statement.kind == "txn":
            with faults.paused():
                self._run_statement(shadow, statement)
            return None
        if shadow.db.transactions.in_transaction:
            with faults.paused():
                shadow.execute("ROLLBACK")
            report.transactions_resynced += 1
        if statement.kind == "ddl":
            words = statement.sql.split()
            if (
                len(words) >= 3
                and words[0].upper() == "CREATE"
                and words[1].upper() == "TABLE"
                and primary.schema.has_table(words[2])
            ):
                return LaneOutcome(rowcount=0)
        return self._run_statement(primary, statement)

    # -- comparison --------------------------------------------------------
    def _compare(
        self,
        index: int,
        statement: GeneratedStatement,
        primary_out: LaneOutcome,
        shadow_out: LaneOutcome,
        report: RecoveryReport,
    ) -> Optional[Divergence]:
        def diverge(reason: str) -> Divergence:
            return Divergence(
                index,
                statement,
                reason,
                {
                    "enc-recovery": primary_out.summary(),
                    "shadow": shadow_out.summary(),
                },
            )

        if primary_out.error != shadow_out.error:
            return diverge("lanes disagree on success/failure after recovery")
        if primary_out.error == "unsupported":
            report.refused += 1
            return None
        if primary_out.error is not None:
            return None
        if primary_out.rows is not None:
            if shadow_out.rows is None:
                return diverge("shadow returned no result set")
            report.selects_compared += 1
            expected = _normalize(shadow_out.rows, statement.ordered)
            actual = _normalize(primary_out.rows, statement.ordered)
            if not _rows_match(expected, actual):
                return diverge(
                    f"result rows differ after recovery: "
                    f"{expected[:5]!r} vs {actual[:5]!r}"
                )
            return None
        if shadow_out.rows is not None:
            return diverge("shadow unexpectedly returned rows")
        if primary_out.rowcount != shadow_out.rowcount:
            return diverge(
                f"rowcount differs after recovery "
                f"({primary_out.rowcount} vs {shadow_out.rowcount})"
            )
        return None

    # -- metadata equivalence ----------------------------------------------
    def _metadata_mismatches(self, primary, shadow) -> list[str]:
        """Recovered metadata vs. the never-crashed shadow, field by field.

        The plan-cache schema *version* is deliberately absent: it is a
        monotonic invalidation counter whose absolute value is
        path-dependent -- an adjustment lowered and then rolled back inside
        a transaction bumps the live counter twice while replaying the log
        correctly collapses the round-trip to a no-op.  Recovery restores
        the logged version and the rebuilt proxy starts with an empty plan
        cache, so only the *semantic* state below has to agree.
        """
        mine = self._fingerprint(primary)
        theirs = self._fingerprint(shadow)
        return [
            f"{key} diverged after recovery: {mine[key]!r} != {theirs[key]!r}"
            for key in mine
            if mine[key] != theirs[key]
        ]

    @staticmethod
    def _fingerprint(proxy) -> dict:
        schema = proxy.schema
        stale, ope_groups = [], []
        for table_name, table_meta in schema.tables.items():
            for column_name, column in table_meta.columns.items():
                if column.hom_stale_others:
                    stale.append((table_name, column_name))
                if column.ope_join_group is not None:
                    ope_groups.append(
                        (table_name, column_name, column.ope_join_group)
                    )
        join_state = {
            column_id: (
                proxy.joins.base_of(*column_id),
                proxy.joins.effective_scalar(*column_id),
            )
            for column_id in sorted(proxy.joins.snapshot()[0])
        }
        fingerprint = {
            "onion levels": sorted(tuple(row) for row in schema.catalog_levels()),
            "HOM-stale columns": sorted(stale),
            "OPE range-join groups": sorted(ope_groups),
            "JOIN-ADJ state": join_state,
        }
        if getattr(proxy.db, "is_sharded", False):
            fingerprint["shard routing"] = dict(proxy.db.routing_catalog())
        return fingerprint

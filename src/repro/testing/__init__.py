"""Randomized differential conformance testing for the CryptDB proxy.

CryptDB's headline guarantee (§3, §8) is *transparency*: a rewritten query
over onion ciphertexts must decrypt to exactly the answer a stock SQL DBMS
gives on the plaintext.  This package turns that guarantee into an executable
oracle:

* :mod:`repro.testing.generator` produces seeded random schema + DML/SELECT
  statement streams constrained to the SQL surface every lane supports;
* :mod:`repro.testing.oracle` replays one stream over several *lanes*
  (plaintext in-memory engine, plaintext SQLite, encrypted proxy over each
  backend) and reports the first result divergence after decryption;
* :mod:`repro.testing.shrinker` delta-debugs a failing stream down to a
  minimal reproducer before it is reported.
"""

from repro.testing.generator import GeneratedStatement, StatementGenerator
from repro.testing.oracle import (
    DifferentialRunner,
    Divergence,
    RunReport,
    default_lane_factory,
)
from repro.testing.shrinker import shrink_stream

__all__ = [
    "GeneratedStatement",
    "StatementGenerator",
    "DifferentialRunner",
    "Divergence",
    "RunReport",
    "default_lane_factory",
    "shrink_stream",
]

"""Randomized differential conformance testing for the CryptDB proxy.

CryptDB's headline guarantee (§3, §8) is *transparency*: a rewritten query
over onion ciphertexts must decrypt to exactly the answer a stock SQL DBMS
gives on the plaintext.  This package turns that guarantee into an executable
oracle:

* :mod:`repro.testing.generator` produces seeded random schema + DML/SELECT
  statement streams constrained to the SQL surface every lane supports;
* :mod:`repro.testing.oracle` replays one stream over several *lanes*
  (plaintext in-memory engine, plaintext SQLite, encrypted proxy over each
  backend) and reports the first result divergence after decryption;
* :mod:`repro.testing.shrinker` delta-debugs a failing stream down to a
  minimal reproducer before it is reported;
* :class:`~repro.testing.oracle.ChaosRunner` replays a stream under an
  armed :mod:`repro.faults` plan (the chaos conformance lane): every
  statement must produce the fault-free answer or fail with a clean DB-API
  error, and after every injected fault an invariant probe asserts proxy
  metadata and backend state still agree;
* :class:`~repro.testing.oracle.RecoveryRunner` kills a catalog-backed
  proxy at a named crash point mid-stream (the recovery conformance lane),
  rebuilds it from snapshot+WAL against the surviving database files, and
  verifies zero divergence -- answers and metadata -- against an
  uninterrupted shadow proxy.
"""

from repro.testing.generator import GeneratedStatement, StatementGenerator
from repro.testing.oracle import (
    ChaosReport,
    ChaosRunner,
    DifferentialRunner,
    Divergence,
    RecoveryReport,
    RecoveryRunner,
    RunReport,
    conformance_problems,
    default_lane_factory,
)
from repro.testing.shrinker import shrink_stream

__all__ = [
    "GeneratedStatement",
    "StatementGenerator",
    "ChaosReport",
    "ChaosRunner",
    "DifferentialRunner",
    "Divergence",
    "RecoveryReport",
    "RecoveryRunner",
    "RunReport",
    "conformance_problems",
    "default_lane_factory",
    "shrink_stream",
]

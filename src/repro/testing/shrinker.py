"""Delta-debugging minimization of failing conformance streams.

A failing stream from the generator is typically hundreds of statements of
which a handful matter.  :func:`shrink_stream` applies ddmin (Zeller's
delta debugging): repeatedly try dropping chunks of statements, keep any
reduction that still fails, and halve the chunk size until single statements
cannot be removed.

Dropping arbitrary statements keeps probe streams *valid* by construction:

* a statement referencing a table whose CREATE TABLE was dropped fails in
  every lane with the same coarse error class, which the oracle treats as
  consistent;
* COMMIT/ROLLBACK without a BEGIN are tolerated by every backend, matching
  stock MySQL;
* DML rows never depend on earlier statements' *success*, only on schema.

Probes re-run the stream on fresh lanes, so the caller bounds the work with
``max_probes``.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def shrink_stream(
    statements: list[T],
    still_fails: Callable[[Sequence[T]], bool],
    max_probes: int = 400,
) -> list[T]:
    """Minimize ``statements`` while ``still_fails`` holds.

    Returns a 1-minimal subsequence (no single remaining statement can be
    removed) unless the probe budget runs out first, in which case the best
    reduction found so far is returned.
    """
    current = list(statements)
    probes = 0
    granularity = 2
    while len(current) >= 2 and granularity <= len(current):
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            if probes >= max_probes:
                return current
            candidate = current[:start] + current[start + chunk:]
            if not candidate:
                start += chunk
                continue
            probes += 1
            if still_fails(candidate):
                current = candidate
                reduced = True
                # Re-test from the same offset: the next chunk slid into it.
            else:
                start += chunk
        if reduced:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break
        else:
            granularity = min(granularity * 2, len(current))
    return current

"""Seeded random SQL statement streams for differential conformance runs.

The generator emits streams over a small fleet of tables with typed columns
(integers, scaled decimals, single-word and multi-word text, NULLs), mixing
multi-row INSERTs, parameterized statements, predicate-rich SELECTs
(WHERE / ORDER BY / LIMIT / GROUP BY / HAVING / DISTINCT), equi- and LEFT
joins, UPDATEs (including homomorphic ``col = col + k`` increments), DELETEs
and transactions with ROLLBACK.

Every emitted statement is constrained to the SQL surface that all lanes of
the differential oracle execute with identical semantics:

* ORDER BY always ends with the unique ``id`` column when the row *sequence*
  will be compared (ties would otherwise be legitimately backend-dependent),
  and LIMIT/OFFSET only appear on such totally-ordered SELECTs.
* Text values come from a vocabulary whose words are pairwise non-substrings
  with distinct 4-byte prefixes, so ``LIKE '%word%'`` (plaintext substring
  semantics) agrees with the SEARCH rewrite (full-word semantics) and OPE
  string ordering (4-byte-prefix based, §5) agrees with full lexicographic
  ordering.
* Columns hit by a homomorphic increment are tracked as HOM-stale: the
  proxy refuses server-side Eq/Ord reads of them (§3.3), so the generator
  keeps them out of DML predicates -- state must never diverge -- while
  occasionally emitting a stale-column SELECT on purpose to exercise the
  oracle's "proxy may refuse, but must not lie" path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

#: Pairwise non-substring words with distinct 4-byte prefixes (see module doc).
VOCAB = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "hotel",
    "india", "juliet", "kilos", "lima", "mike", "november", "oscar",
    "papa", "quebec", "romeo", "sierra", "tango", "uniform", "victor",
    "whiskey", "xray", "yankee", "zulu",
]

#: Unicode words, also distinct in their first four UTF-8 bytes.
UNICODE_VOCAB = ["αλφα", "βήτα", "γάμμα", "δέλτα", "ωμέγα"]


@dataclass
class GeneratedStatement:
    """One statement of a stream, plus how the oracle should treat it."""

    sql: str
    params: Optional[tuple] = None
    kind: str = "dml"  # ddl | dml | select | txn
    #: SELECT whose row *sequence* is comparable (ORDER BY ends in a unique key).
    ordered: bool = False
    #: The encrypted lanes may legitimately refuse this statement
    #: (UnsupportedQueryError); it must then be side-effect free.
    may_be_unsupported: bool = False

    def describe(self) -> str:
        if self.params is not None:
            return f"{self.sql}  -- params={self.params!r}"
        return self.sql


@dataclass
class _TableState:
    name: str
    next_id: int = 1
    #: Columns whose non-Add onions are stale after a HOM increment.
    hom_stale: set = field(default_factory=set)


def _sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'%s'" % value.replace("'", "''")
    if isinstance(value, float):
        return repr(value)
    return str(value)


class StatementGenerator:
    """Generates one reproducible statement stream from a seed."""

    #: Columns of every generated table: (name, SQL type, value family).
    COLUMNS = [
        ("id", "INT", "id"),
        ("qty", "INT", "int"),
        ("price", "DECIMAL", "decimal"),
        ("name", "VARCHAR(40)", "word"),
        ("notes", "TEXT", "sentence"),
        ("ref", "INT", "ref"),
    ]

    def __init__(
        self,
        seed: int,
        tables: int = 2,
        unicode_text: bool = True,
        sum_heavy: bool = False,
    ):
        self.rng = random.Random(seed)
        self.seed = seed
        self.tables = [_TableState(f"t{i}") for i in range(max(1, tables))]
        self.in_transaction = False
        self.sum_heavy = sum_heavy
        self._word_pool = list(VOCAB) + (list(UNICODE_VOCAB) if unicode_text else [])

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def _value(self, family: str, table: _TableState, nullable: bool = True) -> Any:
        rng = self.rng
        if nullable and family not in ("id",) and rng.random() < 0.10:
            return None
        if family == "id":
            value = table.next_id
            table.next_id += 1
            return value
        if family == "int":
            return rng.randint(-1000, 1000)
        if family == "decimal":
            # Two decimal places: survives the proxy's DECIMAL scaling exactly.
            return rng.randint(-99999, 99999) / 100.0
        if family == "word":
            return rng.choice(self._word_pool)
        if family == "sentence":
            return " ".join(rng.sample(VOCAB, rng.randint(1, 4)))
        if family == "ref":
            other = self._other_table(table)
            upper = max(other.next_id - 1, 1)
            return rng.randint(1, max(upper, 1))
        raise ValueError(family)

    def _other_table(self, table: _TableState) -> _TableState:
        others = [t for t in self.tables if t is not table]
        return self.rng.choice(others) if others else table

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    #: Column -> value family for predicate literals.
    _PREDICATE_FAMILIES = {
        "id": "pred_id", "qty": "int", "price": "decimal",
        "name": "word", "ref": "pred_id",
    }

    def _predicate_literal(self, column: str, table: _TableState) -> Any:
        family = self._PREDICATE_FAMILIES[column]
        if family == "pred_id":
            return self.rng.randint(1, max(table.next_id - 1, 1))
        return self._value(family, table, nullable=False)

    def _comparison(self, table: _TableState, qualifier: str = "",
                    allow_stale: bool = False) -> str:
        rng = self.rng
        columns = [c for c in ("id", "qty", "price", "name", "ref")
                   if allow_stale or c not in table.hom_stale]
        if not columns:
            columns = ["id"]
        column = rng.choice(columns)
        prefix = f"{qualifier}." if qualifier else ""
        roll = rng.random()
        if roll < 0.45:
            op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
            return f"{prefix}{column} {op} {_sql_literal(self._predicate_literal(column, table))}"
        if roll < 0.60:
            low = self._predicate_literal(column, table)
            high = self._predicate_literal(column, table)
            if column != "name" and isinstance(low, (int, float)) and low > high:
                low, high = high, low
            return f"{prefix}{column} BETWEEN {_sql_literal(low)} AND {_sql_literal(high)}"
        if roll < 0.75:
            items = ", ".join(
                _sql_literal(self._predicate_literal(column, table))
                for _ in range(rng.randint(1, 3))
            )
            negated = "NOT " if rng.random() < 0.3 else ""
            return f"{prefix}{column} {negated}IN ({items})"
        if roll < 0.88:
            negated = "NOT " if rng.random() < 0.4 else ""
            return f"{prefix}{column} IS {negated}NULL"
        word = rng.choice(VOCAB)
        negated = "NOT " if rng.random() < 0.25 else ""
        return f"{prefix}notes {negated}LIKE '%{word}%'"

    def _predicate(self, table: _TableState, qualifier: str = "",
                   allow_stale: bool = False) -> str:
        rng = self.rng
        first = self._comparison(table, qualifier, allow_stale)
        if rng.random() < 0.35:
            second = self._comparison(table, qualifier, allow_stale)
            connector = rng.choice(["AND", "OR"])
            if rng.random() < 0.15:
                second = f"NOT ({second})"
            return f"{first} {connector} {second}"
        return first

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def schema_statements(self) -> list[GeneratedStatement]:
        """CREATE TABLE + CREATE INDEX + seed rows for every table."""
        statements: list[GeneratedStatement] = []
        for table in self.tables:
            columns = ", ".join(f"{name} {sql_type}" for name, sql_type, _ in self.COLUMNS)
            statements.append(
                GeneratedStatement(f"CREATE TABLE {table.name} ({columns})", kind="ddl")
            )
            statements.append(
                GeneratedStatement(
                    f"CREATE INDEX idx_{table.name} ON {table.name} (id, qty)",
                    kind="ddl",
                )
            )
        for table in self.tables:
            for _ in range(3):
                statements.append(self._insert(table))
        return statements

    def _insert(self, table: _TableState) -> GeneratedStatement:
        rng = self.rng
        names = [name for name, _, _ in self.COLUMNS]
        if rng.random() < 0.35:
            # Parameterized single-row INSERT: exercises the plan cache and
            # the deferred row-value encryption slots.
            row = tuple(self._value(family, table) for _, _, family in self.COLUMNS)
            placeholders = ", ".join("?" for _ in names)
            return GeneratedStatement(
                f"INSERT INTO {table.name} ({', '.join(names)}) VALUES ({placeholders})",
                params=row,
            )
        rows = []
        for _ in range(rng.randint(1, 4)):
            values = ", ".join(
                _sql_literal(self._value(family, table)) for _, _, family in self.COLUMNS
            )
            rows.append(f"({values})")
        return GeneratedStatement(
            f"INSERT INTO {table.name} ({', '.join(names)}) VALUES {', '.join(rows)}"
        )

    def _update(self, table: _TableState) -> GeneratedStatement:
        rng = self.rng
        where = f" WHERE {self._predicate(table)}" if rng.random() < 0.9 else ""
        if rng.random() < (0.8 if self.sum_heavy else 0.35):
            # Homomorphic increment; the column's other onions go stale.
            column = rng.choice(["qty", "price"])
            delta: Any
            if column == "qty":
                delta = rng.randint(1, 50) * (1 if rng.random() < 0.6 else -1)
            else:
                delta = rng.randint(1, 999) / 100.0
            op = "+" if rng.random() < 0.7 else "-"
            table.hom_stale.add(column)
            if rng.random() < 0.4:
                return GeneratedStatement(
                    f"UPDATE {table.name} SET {column} = {column} {op} ?{where}",
                    params=(delta,),
                )
            return GeneratedStatement(
                f"UPDATE {table.name} SET {column} = {column} {op} {_sql_literal(delta)}{where}"
            )
        column, _, family = rng.choice(
            [c for c in self.COLUMNS if c[0] not in ("id",)]
        )
        value = self._value(family, table)
        if rng.random() < 0.4:
            return GeneratedStatement(
                f"UPDATE {table.name} SET {column} = ?{where}", params=(value,)
            )
        return GeneratedStatement(
            f"UPDATE {table.name} SET {column} = {_sql_literal(value)}{where}"
        )

    def _delete(self, table: _TableState) -> GeneratedStatement:
        return GeneratedStatement(
            f"DELETE FROM {table.name} WHERE {self._predicate(table)}"
        )

    def _select(self, table: _TableState) -> GeneratedStatement:
        rng = self.rng
        allow_stale = rng.random() < 0.08  # exercise the refusal path
        stale_involved = allow_stale and bool(table.hom_stale)
        roll = rng.random()

        if roll < 0.22:
            return self._aggregate_select(table)
        if roll < 0.34:
            return self._grouped_select(table)
        if roll < 0.46:
            return self._join_select(table)

        columns = rng.sample([name for name, _, _ in self.COLUMNS], rng.randint(1, 4))
        if "id" not in columns:
            columns.append("id")
        projection = "*" if rng.random() < 0.25 else ", ".join(columns)
        distinct = "DISTINCT " if rng.random() < 0.12 and projection != "*" else ""
        where = ""
        if rng.random() < 0.75:
            where = f" WHERE {self._predicate(table, allow_stale=allow_stale)}"
        order = ""
        ordered = False
        if rng.random() < 0.55:
            sortable = [c for c in ("qty", "price", "name") if c not in table.hom_stale]
            keys = rng.sample(sortable, rng.randint(0, min(2, len(sortable)))) if sortable else []
            directions = [f"{key} {rng.choice(['ASC', 'DESC'])}" for key in keys]
            directions.append(f"id {rng.choice(['ASC', 'DESC'])}")
            order = " ORDER BY " + ", ".join(directions)
            ordered = True
            if rng.random() < 0.5:
                order += f" LIMIT {rng.randint(1, 8)}"
                if rng.random() < 0.4:
                    order += f" OFFSET {rng.randint(1, 4)}"
        sql = f"SELECT {distinct}{projection} FROM {table.name}{where}{order}"
        return GeneratedStatement(
            sql, kind="select", ordered=ordered,
            may_be_unsupported=stale_involved and bool(where),
        )

    def _aggregate_select(self, table: _TableState) -> GeneratedStatement:
        rng = self.rng
        aggregates = ["COUNT(*)"]
        may_be_unsupported = False
        numeric = rng.choice(["qty", "price"])
        choice = rng.random()
        if choice < 0.45:
            aggregates.append(f"SUM({numeric})")
            if rng.random() < 0.5:
                aggregates.append(f"AVG({numeric})")
        elif choice < 0.7:
            aggregates.append(f"MIN({numeric})")
            aggregates.append(f"MAX({numeric})")
            may_be_unsupported = numeric in table.hom_stale
        else:
            target = rng.choice(["name", "qty"])
            distinct = "DISTINCT " if rng.random() < 0.5 else ""
            aggregates.append(f"COUNT({distinct}{target})")
            may_be_unsupported = target in table.hom_stale and bool(distinct)
        where = ""
        if rng.random() < 0.5:
            where = f" WHERE {self._predicate(table)}"
        sql = f"SELECT {', '.join(aggregates)} FROM {table.name}{where}"
        return GeneratedStatement(sql, kind="select", may_be_unsupported=may_be_unsupported)

    def _grouped_select(self, table: _TableState) -> GeneratedStatement:
        rng = self.rng
        group = rng.choice([c for c in ("name", "qty", "ref") if c not in table.hom_stale]
                           or ["name"])
        aggregate = rng.choice(["COUNT(*)", "SUM(qty)", "SUM(price)", "AVG(price)"])
        having = ""
        if rng.random() < 0.35:
            having = f" HAVING COUNT(*) >= {rng.randint(1, 3)}"
        where = ""
        if rng.random() < 0.4:
            where = f" WHERE {self._predicate(table)}"
        sql = (
            f"SELECT {group}, {aggregate} FROM {table.name}{where} "
            f"GROUP BY {group}{having}"
        )
        return GeneratedStatement(sql, kind="select")

    def _join_select(self, table: _TableState) -> GeneratedStatement:
        rng = self.rng
        other = self._other_table(table)
        if other is table:
            return self._aggregate_select(table)
        join_type = "LEFT" if rng.random() < 0.35 else "INNER"
        if rng.random() < 0.15:
            condition = "a.name = b.name"
        else:
            condition = "a.ref = b.id"
        where = ""
        if rng.random() < 0.4:
            where = f" WHERE {self._predicate(table, qualifier='a')}"
        ordered = rng.random() < 0.5
        order = ""
        if ordered:
            order = " ORDER BY a.id ASC, b.id ASC"
            if rng.random() < 0.4:
                order += f" LIMIT {rng.randint(2, 10)}"
        sql = (
            f"SELECT a.id, a.name, b.id, b.qty FROM {table.name} AS a "
            f"{join_type} JOIN {other.name} AS b ON {condition}{where}{order}"
        )
        return GeneratedStatement(sql, kind="select", ordered=ordered)

    def _audit(self, table: _TableState) -> GeneratedStatement:
        """Full-table ordered dump: catches silent state divergence early."""
        return GeneratedStatement(
            f"SELECT * FROM {table.name} ORDER BY id ASC",
            kind="select",
            ordered=True,
        )

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def next_statement(self) -> GeneratedStatement:
        rng = self.rng
        table = rng.choice(self.tables)
        if self.in_transaction and rng.random() < 0.25:
            self.in_transaction = False
            return GeneratedStatement(
                rng.choice(["COMMIT", "ROLLBACK"]), kind="txn"
            )
        roll = rng.random()
        if self.sum_heavy:
            # Aggregate-dominated mix for the packed-HOM lanes: rows pile up
            # through INSERTs and increments while SUM/AVG sweeps them, so
            # streams cross packed-sum chunk boundaries (slot headroom) and
            # read cells carrying pending homomorphic deltas.
            if roll < 0.34:
                return self._insert(table)
            if roll < 0.58:
                return self._aggregate_select(table)
            if roll < 0.70:
                return self._grouped_select(table)
            if roll < 0.92:
                return self._update(table)
            return self._audit(table)
        if roll < 0.24:
            return self._insert(table)
        if roll < 0.60:
            return self._select(table)
        if roll < 0.74:
            return self._update(table)
        if roll < 0.80:
            return self._delete(table)
        if roll < 0.88:
            return self._audit(table)
        if not self.in_transaction:
            self.in_transaction = True
            return GeneratedStatement("BEGIN", kind="txn")
        return self._select(table)

    def generate_stream(self, count: int) -> list[GeneratedStatement]:
        """Schema + ``count`` statements + closing audit, fully seeded.

        ROLLBACK discards row changes but the generator's id counters keep
        advancing; ids stay unique (gaps are fine) so total ORDER BY keys
        and ref targets remain valid either way.
        """
        statements = self.schema_statements()
        for _ in range(count):
            statements.append(self.next_statement())
        if self.in_transaction:
            self.in_transaction = False
            statements.append(GeneratedStatement("COMMIT", kind="txn"))
        for table in self.tables:
            statements.append(self._audit(table))
        return statements

"""Append-only, checksummed, fsync-batched write-ahead log.

The log is a flat file of length-prefixed records::

    +----------------+----------------+------------------------+
    | length (u32 LE)| crc32 (u32 LE) | payload (UTF-8 JSON)   |
    +----------------+----------------+------------------------+

Appends are buffered in memory until :meth:`WriteAheadLog.sync` writes and
``fsync``\\ s them in one batch (group commit); callers place the sync
barrier exactly where durability is required -- e.g. an adjustment INTENT
must be on disk *before* the backend UPDATE runs, but several records logged
inside one prepare share a single fsync.

Torn tails are expected: a crash mid-write leaves a record with a short or
checksum-mismatched payload at the end of the file.  :meth:`records` stops
at the first damaged frame and reports how many bytes of valid prefix
precede it; opening the log for append truncates the damage away so new
records never chain onto garbage.

The ``wal.append`` / ``wal.fsync`` crash points of :mod:`repro.faults` fire
*before* the corresponding effect, so an injected
:class:`~repro.errors.SimulatedCrash` models dying with the record never
buffered / never durable.  :meth:`abandon` is the test harness's "process
died" hook: buffered-but-unsynced records are dropped on the floor, exactly
as the page cache would have dropped them.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Iterator, Optional

from repro import faults
from repro.errors import CatalogError

_HEADER = struct.Struct("<II")


def encode_record(payload: dict) -> bytes:
    """Frame one JSON payload: length + crc32 + body."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_records(data: bytes) -> tuple[list[dict], int]:
    """Decode every intact record; returns ``(records, valid_prefix_bytes)``.

    Decoding stops at the first short or checksum-mismatched frame -- the
    torn tail of an interrupted append -- without raising: write-ahead
    logging means a damaged tail is a record whose effects never happened.
    """
    records: list[dict] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, checksum = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break  # short payload: torn tail
        body = data[start:end]
        if zlib.crc32(body) != checksum:
            break  # bit rot or torn header: stop before the damage
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CatalogError(
                f"WAL record at byte {offset} passed its checksum but is not "
                f"valid JSON: {exc}"
            ) from exc
        records.append(payload)
        offset = end
    return records, offset


class WriteAheadLog:
    """One append-only log file with group-commit durability."""

    def __init__(self, path: str):
        self.path = path
        self._pending: list[bytes] = []
        self._file: Optional[Any] = None
        #: Records appended since the last sync barrier (for batching stats).
        self.appends = 0
        self.syncs = 0

    # -- reading -----------------------------------------------------------
    def load(self) -> list[dict]:
        """Read every intact record currently on disk."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return []
        records, valid = decode_records(data)
        self._valid_prefix = valid
        return records

    def records(self) -> Iterator[dict]:
        return iter(self.load())

    # -- writing -----------------------------------------------------------
    def _open_for_append(self) -> Any:
        if self._file is None:
            # Truncate any torn tail before appending: records must never
            # chain onto a damaged frame.
            records, valid = decode_records(self._read_raw())
            del records
            handle = open(self.path, "ab")
            if handle.tell() != valid:
                handle.truncate(valid)
                handle.seek(valid)
            self._file = handle
        return self._file

    def _read_raw(self) -> bytes:
        try:
            with open(self.path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return b""

    def append(self, payload: dict) -> None:
        """Buffer one record; durable only after the next :meth:`sync`."""
        if faults.INJECTOR is not None:
            faults.INJECTOR.fire("wal.append", target=self, record=payload.get("t"))
        self._pending.append(encode_record(payload))
        self.appends += 1

    def sync(self) -> None:
        """Write buffered records and fsync the file (group commit)."""
        if not self._pending:
            return
        if faults.INJECTOR is not None:
            faults.INJECTOR.fire("wal.fsync", target=self, pending=len(self._pending))
        handle = self._open_for_append()
        handle.write(b"".join(self._pending))
        self._pending.clear()
        handle.flush()
        os.fsync(handle.fileno())
        self.syncs += 1

    def replace_with(self, payloads: list[dict]) -> None:
        """Atomically rewrite the log to exactly ``payloads`` (compaction).

        The new contents are written to a sibling temp file, fsynced, and
        ``os.replace``\\ d over the log, so a crash at any point leaves either
        the old log or the new one -- never a mix.  Buffered unsynced
        records are folded in by the caller before compaction.
        """
        if faults.INJECTOR is not None:
            faults.INJECTOR.fire("snapshot.write", target=self, records=len(payloads))
        if self._file is not None:
            self._file.close()
            self._file = None
        tmp_path = self.path + ".compact"
        with open(tmp_path, "wb") as handle:
            handle.write(b"".join(encode_record(payload) for payload in payloads))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- lifecycle ---------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        """Flush and fsync anything buffered, then release the handle."""
        self.sync()
        if self._file is not None:
            self._file.close()
            self._file = None

    def abandon(self) -> None:
        """Simulate process death: drop unsynced records, release the handle."""
        self._pending.clear()
        if self._file is not None:
            self._file.close()
            self._file = None

"""The proxy's durable metadata catalog: typed WAL records and replay.

CryptDB's proxy is the single stateful trust root -- anonymised schema,
onion levels, JOIN-ADJ key state, HOM group layouts and the plan-cache
schema version all live in proxy memory (paper §3) while the ciphertexts
persist in the DBMS.  The catalog writes a record through the
:class:`~repro.durability.wal.WriteAheadLog` at every metadata mutation so
a restarted proxy can rebuild exactly the metadata the stored ciphertexts
were written under.  **No key material is ever logged**: every column key
re-derives deterministically from the master key, and JOIN-ADJ state is
logged only as the public group structure (which column keys off which
base), never as the scalars themselves.

Record types (``"t"`` field):

``create_table``   application layout + anonymised name + table counter
``drop_table``     table forgotten (anonymised twin dropped)
``meta``           state-setting diff: onion levels, HOM staleness, OPE join
                   groups, JOIN-ADJ group bases, shard routing, version
``intent``         two-phase onion adjustment: the re-runnable operations,
                   the metadata that takes effect on commit, and a canary
                   ciphertext (one sampled pre-value plus its expected
                   post-adjustment value) for in-doubt resolution
``commit``         the adjustment's backend transaction committed
``abort``          the adjustment failed and was rolled back cleanly
``snapshot``       compacted full state; replay restarts from it

All records are *state-setting*, so replay is duplicate-delivery
idempotent: a record delivered twice in a row applies exactly once
(property-tested), which is what recovery after a torn tail relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.durability.wal import WriteAheadLog
from repro.errors import CatalogError

#: Records a compaction keeps verbatim after the snapshot: intents still in
#: doubt must survive (their resolution needs the canary and the ops).
_SNAPSHOT_EVERY_DEFAULT = 512


# ---------------------------------------------------------------------------
# JSON-safe value tagging (canary ciphertexts are bytes or big ints)
# ---------------------------------------------------------------------------
def tag_value(value: Any) -> Any:
    """Encode a canary/stored value for JSON (bytes and ints round-trip)."""
    if value is None:
        return None
    if isinstance(value, bool) or isinstance(value, (float, str)):
        return {"v": value}
    if isinstance(value, int):
        return {"i": value}
    if isinstance(value, (bytes, bytearray)):
        return {"b": bytes(value).hex()}
    raise CatalogError(f"cannot log a value of type {type(value).__name__}")


def untag_value(tagged: Any) -> Any:
    if tagged is None:
        return None
    if "b" in tagged:
        return bytes.fromhex(tagged["b"])
    if "i" in tagged:
        return tagged["i"]
    return tagged["v"]


# ---------------------------------------------------------------------------
# replayed state
# ---------------------------------------------------------------------------
@dataclass
class CatalogState:
    """Everything a restarted proxy needs, rebuilt by :func:`replay_records`."""

    #: ``create_table`` payloads of live tables, in creation order.
    tables: list[dict] = field(default_factory=list)
    table_counter: int = 0
    version: int = 0
    #: ``(table, column, onion-value) -> scheme-value`` overrides.
    levels: dict = field(default_factory=dict)
    #: ``(table, column) -> bool``
    hom_stale: dict = field(default_factory=dict)
    #: ``(table, column) -> declared OPE range-join group``
    ope_groups: dict = field(default_factory=dict)
    #: ``(table, column) -> (base table, base column)``.  The catalog never
    #: stores JOIN-ADJ scalars -- they are key material.  A column's
    #: effective scalar is always its group base's *initial* scalar (bases
    #: only ever move to the merged group's lexicographic minimum, whose own
    #: key was never re-scaled), so the public group structure alone lets a
    #: recovered proxy re-derive every effective key from the master key.
    join_bases: dict = field(default_factory=dict)
    #: ``anon table -> (anon shard-key column, mode)``.
    routing: dict = field(default_factory=dict)
    #: Intents with neither commit nor abort: must be resolved on recovery.
    in_doubt: dict = field(default_factory=dict)
    #: Intent ids already resolved (commit or abort), for idempotent replay.
    resolved: set = field(default_factory=set)
    records_replayed: int = 0

    def table_payload(self, name: str) -> Optional[dict]:
        for payload in self.tables:
            if payload["table"] == name:
                return payload
        return None

    def apply_meta(self, meta: dict) -> None:
        """Fold one state-setting ``meta`` payload (or intent meta) in."""
        for table, column, onion, level in meta.get("levels", ()):
            self.levels[(table, column, onion)] = level
        for table, column, stale in meta.get("hom_stale", ()):
            self.hom_stale[(table, column)] = bool(stale)
        for table, column, group in meta.get("ope_groups", ()):
            self.ope_groups[(table, column)] = group
        joins = meta.get("joins") or {}
        for table, column, base_table, base_column in joins.get("bases", ()):
            self.join_bases[(table, column)] = (base_table, base_column)
        for anon_table, anon_column, mode in meta.get("routing", ()):
            self.routing[anon_table] = (anon_column, mode)
        if "version" in meta:
            self.version = int(meta["version"])

    def _drop_table_state(self, name: str) -> None:
        self.tables = [payload for payload in self.tables if payload["table"] != name]
        for mapping in (self.levels,):
            for key in [k for k in mapping if k[0] == name]:
                del mapping[key]
        for mapping in (self.hom_stale, self.ope_groups, self.join_bases):
            for key in [k for k in mapping if k[0] == name]:
                del mapping[key]

    def snapshot_payload(self) -> dict:
        """The ``snapshot`` record body capturing this whole state."""
        return {
            "t": "snapshot",
            "tables": [dict(payload) for payload in self.tables],
            "counter": self.table_counter,
            "version": self.version,
            "levels": [[t, c, o, lvl] for (t, c, o), lvl in sorted(self.levels.items())],
            "hom_stale": [[t, c, flag] for (t, c), flag in sorted(self.hom_stale.items())],
            "ope_groups": [[t, c, g] for (t, c), g in sorted(self.ope_groups.items())],
            "joins": {
                "bases": [[t, c, bt, bc] for (t, c), (bt, bc) in sorted(self.join_bases.items())],
            },
            "routing": [[t, col, mode] for t, (col, mode) in sorted(self.routing.items())],
            "resolved": sorted(self.resolved),
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "CatalogState":
        state = cls()
        state.tables = [dict(entry) for entry in payload.get("tables", ())]
        state.table_counter = int(payload.get("counter", 0))
        state.apply_meta(payload)
        state.version = int(payload.get("version", 0))
        state.resolved = set(payload.get("resolved", ()))
        return state


def replay_records(records: list[dict]) -> CatalogState:
    """Fold a record sequence into a :class:`CatalogState` (idempotently)."""
    state = CatalogState()
    for payload in records:
        kind = payload.get("t")
        if kind == "snapshot":
            replayed = state.records_replayed
            state = CatalogState.from_snapshot(payload)
            state.records_replayed = replayed
        elif kind == "create_table":
            if state.table_payload(payload["table"]) is None:
                state.tables.append(dict(payload))
            state.table_counter = max(state.table_counter, int(payload["counter"]))
            state.version = int(payload["version"])
        elif kind == "drop_table":
            state._drop_table_state(payload["table"])
            state.version = int(payload["version"])
        elif kind == "meta":
            state.apply_meta(payload)
        elif kind == "intent":
            if payload["id"] not in state.resolved:
                state.in_doubt[payload["id"]] = dict(payload)
        elif kind == "commit":
            intent = state.in_doubt.pop(payload["id"], None)
            if intent is not None:
                state.apply_meta(intent.get("meta") or {})
                state.resolved.add(payload["id"])
        elif kind == "abort":
            state.in_doubt.pop(payload["id"], None)
            state.resolved.add(payload["id"])
        else:
            raise CatalogError(f"unknown catalog record type {kind!r}")
        state.records_replayed += 1
    return state


# ---------------------------------------------------------------------------
# the catalog
# ---------------------------------------------------------------------------
class MetadataCatalog:
    """Write-through durable catalog over one :class:`WriteAheadLog` file.

    ``snapshot_every`` bounds WAL growth: once that many records accumulate
    past the last snapshot, the next sync barrier compacts the log to one
    snapshot record (plus any in-doubt intents) via an atomic rename.  The
    snapshot body comes from :attr:`snapshot_source`, a zero-argument
    callable the proxy installs (it alone can describe full live state).
    """

    def __init__(self, path: str, snapshot_every: int = _SNAPSHOT_EVERY_DEFAULT):
        self.path = path
        self.wal = WriteAheadLog(path)
        self.snapshot_every = max(int(snapshot_every), 2)
        self.snapshot_source = None  # set by the proxy after recovery/attach
        self._intent_counter = 0
        self._pending_intents: dict[int, dict] = {}
        self._records_since_snapshot = 0
        self._closed = False
        self.state = replay_records(self.wal.load())
        self._records_since_snapshot = self.state.records_replayed
        self._intent_counter = self._next_intent_id(self.state)

    @staticmethod
    def _next_intent_id(state: CatalogState) -> int:
        used = set(state.resolved) | set(state.in_doubt)
        return (max(used) + 1) if used else 1

    @property
    def has_history(self) -> bool:
        """True when the log already describes a schema (restart path)."""
        return bool(self.state.tables or self.state.records_replayed)

    # -- appends -----------------------------------------------------------
    def append(self, payload: dict, sync: bool = True) -> None:
        """Append one record; ``sync=True`` places a group-commit barrier.

        Records whose effects the backend is about to observe (DDL, intents)
        must sync before that effect runs -- that is the write-*ahead*
        invariant.  Pure-metadata records may batch until the next barrier.
        """
        if self._closed:
            raise CatalogError("catalog is closed")
        self.wal.append(payload)
        self._records_since_snapshot += 1
        if sync:
            self.wal.sync()
            self.maybe_compact()

    def sync(self) -> None:
        self.wal.sync()

    # -- two-phase onion adjustment ----------------------------------------
    def begin_adjustment(self, ops: list, meta: dict, canary: Optional[dict]) -> int:
        """Log a durable INTENT; returns the id for commit/abort."""
        self._intent_counter += 1
        intent_id = self._intent_counter
        payload = {
            "t": "intent",
            "id": intent_id,
            "ops": ops,
            "meta": meta,
            "canary": canary,
        }
        self._pending_intents[intent_id] = payload
        self.append(payload, sync=True)
        return intent_id

    def commit_adjustment(self, intent_id: int) -> None:
        self._pending_intents.pop(intent_id, None)
        intent = self.state.in_doubt.pop(intent_id, None)
        if intent is not None:
            # A load-time in-doubt intent resolved by recovery: fold its
            # metadata in so the replayed state matches what replaying the
            # log (now ending in this commit record) would produce.
            self.state.apply_meta(intent.get("meta") or {})
        self.state.resolved.add(intent_id)
        self.append({"t": "commit", "id": intent_id}, sync=True)

    def abort_adjustment(self, intent_id: int) -> None:
        self._pending_intents.pop(intent_id, None)
        self.state.in_doubt.pop(intent_id, None)
        self.state.resolved.add(intent_id)
        self.append({"t": "abort", "id": intent_id}, sync=True)

    @property
    def pending_intents(self) -> list[int]:
        return sorted(self._pending_intents)

    # -- compaction --------------------------------------------------------
    def maybe_compact(self) -> None:
        if (
            self.snapshot_source is None
            or self._records_since_snapshot < self.snapshot_every
            or self._pending_intents
            or self.wal.pending
        ):
            # Never compact with an adjustment in flight or unsynced records:
            # the snapshot must describe a quiescent, durable state.
            return
        self.compact()

    def compact(self) -> None:
        """Replace the WAL with one snapshot record (atomic rename)."""
        snapshot = self.snapshot_source()
        self.wal.replace_with([snapshot])
        self._records_since_snapshot = 1
        self.state = CatalogState.from_snapshot(snapshot)
        self.state.records_replayed = 1

    # -- lifecycle ---------------------------------------------------------
    def flush(self) -> None:
        """Flush and fsync everything buffered (the close-path barrier)."""
        self.wal.sync()

    def close(self) -> None:
        if self._closed:
            return
        # Flush before marking closed: a failed fsync must surface to the
        # caller, but close() stays idempotent afterwards because the WAL
        # drops its handle state only on success paths; a second close call
        # is short-circuited by the flag set in the finally block's caller
        # (the proxy nulls its reference).
        self.wal.close()
        self._closed = True

    def abandon(self) -> None:
        """Simulate process death (test harness): lose unsynced records."""
        self.wal.abandon()
        self._closed = True

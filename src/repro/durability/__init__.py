"""Durable proxy metadata: write-ahead-logged catalog + crash recovery.

The proxy is CryptDB's single stateful trust root; this package makes that
state survive a crash.  See :mod:`repro.durability.wal` for the on-disk
format, :mod:`repro.durability.catalog` for the record types and replay,
and :meth:`repro.core.proxy.CryptDBProxy` (``catalog=``) for the
write-through and restart paths.
"""

from repro.durability.catalog import (
    CatalogState,
    MetadataCatalog,
    replay_records,
    tag_value,
    untag_value,
)
from repro.durability.wal import WriteAheadLog, decode_records, encode_record

__all__ = [
    "CatalogState",
    "MetadataCatalog",
    "WriteAheadLog",
    "decode_records",
    "encode_record",
    "replay_records",
    "tag_value",
    "untag_value",
]

"""Length-delimited records: the outermost layer of the wire protocol.

Every protocol message travels as one *record*: a 4-byte big-endian length
prefix followed by that many body bytes.  During the handshake the body is a
cleartext HELLO frame; afterwards it is a sealed transport envelope
(:class:`repro.server.transport.SecureChannel`).  Both the asyncio server
and the synchronous DB-API client read and write the same format, so the
helpers here come in both flavours.

Records larger than ``max_bytes`` are rejected *before* the body is read --
a malicious 4 GiB length prefix must not make the server allocate anything.
"""

from __future__ import annotations

import asyncio
import socket
import struct

from repro.errors import ReproError
from repro.server.protocol import WireProtocolError

#: Default cap on one record; covers multi-thousand-row result chunks with
#: room to spare while bounding what one session can make the peer buffer.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ConnectionClosedError(ReproError):
    """The peer closed the connection (possibly mid-record)."""


def encode_record(body: bytes) -> bytes:
    """Prefix a record body with its 4-byte length."""
    return _LENGTH.pack(len(body)) + body


def _check_length(length: int, max_bytes: int) -> None:
    if length > max_bytes:
        raise WireProtocolError(
            f"record of {length} bytes exceeds the {max_bytes}-byte frame limit"
        )


# ---------------------------------------------------------------------------
# asyncio (server side)
# ---------------------------------------------------------------------------
async def read_record(
    reader: asyncio.StreamReader, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Read one record; raises on EOF, truncation, or an oversized length."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosedError("peer closed the connection") from exc
        raise ConnectionClosedError("connection closed mid-record header") from exc
    (length,) = _LENGTH.unpack(header)
    _check_length(length, max_bytes)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionClosedError("connection closed mid-record body") from exc


def write_record(writer: asyncio.StreamWriter, body: bytes) -> None:
    """Queue one record on the stream; the caller awaits ``writer.drain()``."""
    writer.write(encode_record(body))


# ---------------------------------------------------------------------------
# blocking sockets (client side)
# ---------------------------------------------------------------------------
def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            raise ConnectionClosedError("peer closed the connection")
        chunks.extend(chunk)
    return bytes(chunks)


def send_record(sock: socket.socket, body: bytes) -> None:
    sock.sendall(encode_record(body))


def recv_record(sock: socket.socket, max_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    _check_length(length, max_bytes)
    return _recv_exact(sock, length)

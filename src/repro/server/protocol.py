"""The repro.server wire protocol: typed frames over a binary value codec.

A frame is one protocol message: a single type byte followed by the
frame's payload, encoded with a compact tagged binary codec (NULL, bools,
arbitrary-precision ints, IEEE doubles, UTF-8 strings, byte strings, and
list/tuple/dict containers -- exactly the value space that crosses the
PEP 249 surface).  Frames travel inside length-delimited records
(:mod:`repro.server.framing`), sealed by the transport channel
(:mod:`repro.server.transport`) after the handshake.

The request/response vocabulary mirrors the DB-API surface so the remote
client can be a drop-in for the in-process path:

==============  =====================================================
frame           meaning
==============  =====================================================
HELLO           handshake: ephemeral ECDH public key + nonce (cleartext)
HELLO_OK        first sealed frame from the server; authenticates the
                session keys before any SQL is accepted
PREPARE         parse + rewrite one statement shape on the server
EXECUTE         run one statement (optionally parameterized)
EXECUTEMANY     run one shape over a batch of parameter rows
FETCH           pull the next chunk of a server-side cursor
BEGIN/COMMIT/
ROLLBACK        transaction control for this session
STATS           server + proxy operational counters
GOODBYE         orderly client shutdown
OK/ROWS/ERROR/
PREPARED/
STATS_RESULT/
BYE             the matching responses
==============  =====================================================
"""

from __future__ import annotations

import struct
from enum import IntEnum

from repro.errors import ReproError

#: Protocol identity exchanged in the cleartext HELLO.
MAGIC = "repro.server"
PROTOCOL_VERSION = 1


class WireProtocolError(ReproError):
    """Malformed frame or codec data; the offending session is dropped."""


class FrameType(IntEnum):
    """One byte on the wire identifying the frame's meaning."""

    HELLO = 0x01
    HELLO_OK = 0x02
    PREPARE = 0x03
    EXECUTE = 0x04
    EXECUTEMANY = 0x05
    FETCH = 0x06
    BEGIN = 0x07
    COMMIT = 0x08
    ROLLBACK = 0x09
    STATS = 0x0A
    GOODBYE = 0x0B
    OK = 0x10
    ROWS = 0x11
    ERROR = 0x12
    PREPARED = 0x13
    STATS_RESULT = 0x14
    BYE = 0x15


#: Frames that start new work on the shared proxy; refused while draining.
STATEMENT_FRAMES = frozenset(
    {FrameType.PREPARE, FrameType.EXECUTE, FrameType.EXECUTEMANY, FrameType.BEGIN}
)

# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------
_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_NEG_INT = 0x04
_TAG_FLOAT = 0x05
_TAG_STR = 0x06
_TAG_BYTES = 0x07
_TAG_LIST = 0x08
_TAG_TUPLE = 0x09
_TAG_DICT = 0x0A

#: Container nesting bound: protects the decoder from recursion bombs.
_MAX_DEPTH = 32


def _encode_value(value, out: bytearray, depth: int = 0) -> None:
    if depth > _MAX_DEPTH:
        raise WireProtocolError("value nests too deeply to encode")
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        magnitude = value if value >= 0 else -value
        body = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        out.append(_TAG_INT if value >= 0 else _TAG_NEG_INT)
        out.extend(struct.pack(">I", len(body)))
        out.extend(body)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out.append(_TAG_STR)
        out.extend(struct.pack(">I", len(body)))
        out.extend(body)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        body = bytes(value)
        out.append(_TAG_BYTES)
        out.extend(struct.pack(">I", len(body)))
        out.extend(body)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST if isinstance(value, list) else _TAG_TUPLE)
        out.extend(struct.pack(">I", len(value)))
        for item in value:
            _encode_value(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out.extend(struct.pack(">I", len(value)))
        for key, item in value.items():
            _encode_value(key, out, depth + 1)
            _encode_value(item, out, depth + 1)
    else:
        raise WireProtocolError(
            f"value of type {type(value).__name__} cannot cross the wire"
        )


def encode_value(value) -> bytes:
    """Encode one Python value with the tagged binary codec."""
    out = bytearray()
    _encode_value(value, out)
    return bytes(out)


def _read_exact(data: bytes, offset: int, count: int) -> tuple[bytes, int]:
    end = offset + count
    if end > len(data):
        raise WireProtocolError("truncated value data")
    return data[offset:end], end


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    raw, offset = _read_exact(data, offset, 4)
    return struct.unpack(">I", raw)[0], offset


def _decode_value(data: bytes, offset: int, depth: int = 0):
    if depth > _MAX_DEPTH:
        raise WireProtocolError("value nests too deeply to decode")
    tag_raw, offset = _read_exact(data, offset, 1)
    tag = tag_raw[0]
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag in (_TAG_INT, _TAG_NEG_INT):
        length, offset = _read_length(data, offset)
        body, offset = _read_exact(data, offset, length)
        magnitude = int.from_bytes(body, "big")
        return (magnitude if tag == _TAG_INT else -magnitude), offset
    if tag == _TAG_FLOAT:
        body, offset = _read_exact(data, offset, 8)
        return struct.unpack(">d", body)[0], offset
    if tag == _TAG_STR:
        length, offset = _read_length(data, offset)
        body, offset = _read_exact(data, offset, length)
        try:
            return body.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise WireProtocolError("string payload is not valid UTF-8") from exc
    if tag == _TAG_BYTES:
        length, offset = _read_length(data, offset)
        body, offset = _read_exact(data, offset, length)
        return body, offset
    if tag in (_TAG_LIST, _TAG_TUPLE):
        count, offset = _read_length(data, offset)
        if count > len(data):  # cheap bound: each element takes >= 1 byte
            raise WireProtocolError("container length exceeds frame size")
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset, depth + 1)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), offset
    if tag == _TAG_DICT:
        count, offset = _read_length(data, offset)
        if count > len(data):
            raise WireProtocolError("container length exceeds frame size")
        mapping = {}
        for _ in range(count):
            key, offset = _decode_value(data, offset, depth + 1)
            item, offset = _decode_value(data, offset, depth + 1)
            mapping[key] = item
        return mapping, offset
    raise WireProtocolError(f"unknown value tag 0x{tag:02x}")


def decode_value(data: bytes):
    """Decode one value; trailing bytes are a protocol error."""
    value, offset = _decode_value(data, 0)
    if offset != len(data):
        raise WireProtocolError("trailing bytes after encoded value")
    return value


# ---------------------------------------------------------------------------
# frames
# ---------------------------------------------------------------------------
def encode_frame(frame_type: FrameType, payload) -> bytes:
    """Serialize a frame: one type byte plus the encoded payload."""
    return bytes([frame_type]) + encode_value(payload)


def decode_frame(data: bytes) -> tuple[FrameType, object]:
    """Parse a frame, validating the type byte and the payload codec."""
    if not data:
        raise WireProtocolError("empty frame")
    try:
        frame_type = FrameType(data[0])
    except ValueError as exc:
        raise WireProtocolError(f"unknown frame type 0x{data[0]:02x}") from exc
    return frame_type, decode_value(data[1:])


def expect_payload_dict(payload, frame_type: FrameType) -> dict:
    """Most frames carry a dict payload; anything else is malformed."""
    if not isinstance(payload, dict):
        raise WireProtocolError(
            f"{frame_type.name} frame payload must be a mapping, "
            f"got {type(payload).__name__}"
        )
    return payload

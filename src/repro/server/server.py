"""The networked CryptDB proxy front-end: an asyncio socket server.

:class:`ReproServer` is the paper's deployment topology made real: many
application servers connect over TCP, each gets an authenticated-encryption
session (:mod:`repro.server.transport`), and all of them are multiplexed
onto one shared :class:`~repro.core.proxy.CryptDBProxy` -- one master key,
one plan cache, one crypto worker pool -- through the admission protocol of
:mod:`repro.server.session`.

Robustness properties, each covered by the adversarial test suite:

* A malformed, oversized, truncated, replayed, or unauthenticated record
  drops *that* session (logged, counted) and leaves every other session
  serving.
* Idle sessions time out; sessions whose reader stalls past the send
  timeout (slow-reader backpressure) are dropped rather than buffering
  unboundedly.
* ``drain()`` -- wired to SIGINT/SIGTERM by the CLI -- stops accepting,
  lets in-flight statements finish and their responses flush, answers any
  *new* statement with ``OperationalError: server is draining``, and only
  then closes sessions.  ``stats['dropped_inflight']`` stays zero unless
  the drain timeout forces a hard stop.
"""

from __future__ import annotations

import asyncio
import logging
import socket
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.api.backends import resolve_backend
from repro.core.proxy import CryptDBProxy
from repro.server import framing, transport
from repro.server.protocol import (
    STATEMENT_FRAMES,
    FrameType,
    WireProtocolError,
    decode_frame,
    encode_frame,
)
from repro.server.session import Session, SessionManager

logger = logging.getLogger("repro.server")


@dataclass
class ServerConfig:
    """Everything tunable about one :class:`ReproServer` instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: let the kernel pick (tests / loopback)
    backend: str = "memory"
    auth_key: bytes = b""
    max_frame_bytes: int = framing.DEFAULT_MAX_FRAME_BYTES
    max_connections: int = 128
    max_pending_statements: int = 256
    idle_timeout: float = 300.0
    handshake_timeout: float = 10.0
    #: Cap on how long one response may sit in a slow reader's socket buffer.
    send_timeout: float = 30.0
    drain_timeout: float = 30.0
    #: Per-statement wall-clock budget.  ``None`` disables the timeout; when
    #: set, a statement that overruns gets a retryable ``OperationalError``
    #: while the admission lock is held until the thread actually finishes
    #: (the single DB executor cannot be preempted mid-statement).
    statement_timeout: Optional[float] = None
    #: Optional asyncio write-buffer high watermark (bytes) per session.
    write_buffer_bytes: Optional[int] = None
    #: Optional kernel SO_SNDBUF per session socket; with a small value the
    #: send timeout actually observes a peer that stopped reading instead of
    #: letting megabytes vanish into kernel buffers.
    sock_sndbuf: Optional[int] = None
    #: Forwarded to the shared CryptDBProxy (master_key, paillier, workers...).
    proxy_kwargs: dict = field(default_factory=dict)


class ReproServer:
    """Asyncio front-end multiplexing encrypted sessions onto one proxy."""

    def __init__(self, config: Optional[ServerConfig] = None, proxy: Optional[CryptDBProxy] = None):
        self.config = config if config is not None else ServerConfig()
        if proxy is not None:
            self.proxy = proxy
            self._owns_proxy = False
        else:
            # With catalog= in proxy_kwargs this is the restart path: the
            # backend may legitimately hold an existing encrypted database,
            # and the proxy rebuilds its metadata from the WAL against it.
            backend = resolve_backend(
                self.config.backend,
                allow_existing="catalog" in self.config.proxy_kwargs,
            )
            self.proxy = CryptDBProxy(db=backend, **self.config.proxy_kwargs)
            self._owns_proxy = True
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-server-db"
        )
        self.manager: Optional[SessionManager] = None
        self._sessions: dict[int, asyncio.Task] = {}
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.draining = False
        self.stats: dict[str, int] = {
            "connections_accepted": 0,
            "connections_rejected": 0,
            "connections_active": 0,
            "handshake_failures": 0,
            "sessions_dropped": 0,
            "statements_served": 0,
            "statements_refused_draining": 0,
            "dropped_inflight": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self.manager = SessionManager(
            self.proxy,
            loop,
            self._executor,
            max_pending_statements=self.config.max_pending_statements,
            statement_timeout=self.config.statement_timeout,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        logger.info("repro.server listening on %s:%d", *self.address)

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"repro://{host}:{port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: finish in-flight statements, refuse new ones."""
        timeout = self.config.drain_timeout if timeout is None else timeout
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            self.stats["dropped_inflight"] += self._inflight
            logger.warning(
                "drain timed out with %d statement(s) in flight", self._inflight
            )
        # In-flight work is done (or abandoned); now disconnect everyone.
        for task in list(self._sessions.values()):
            task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions.values(), return_exceptions=True)

    async def aclose(self) -> None:
        """Drain, then release the proxy (worker pool) and the executor."""
        await self.drain()
        self._executor.shutdown(wait=True)
        if self._owns_proxy:
            self.proxy.close()
            closer = getattr(self.proxy.db, "close", None)
            if callable(closer):
                closer()

    # ------------------------------------------------------------------
    # per-connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.draining or self.stats["connections_active"] >= self.config.max_connections:
            self.stats["connections_rejected"] += 1
            writer.close()
            return
        self.stats["connections_accepted"] += 1
        self.stats["connections_active"] += 1
        if self.config.write_buffer_bytes is not None:
            writer.transport.set_write_buffer_limits(
                high=self.config.write_buffer_bytes
            )
        if self.config.sock_sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, self.config.sock_sndbuf
                )
        session = Session(self.manager)
        task = asyncio.current_task()
        self._sessions[session.id] = task
        try:
            channel = await asyncio.wait_for(
                self._handshake(reader, writer), self.config.handshake_timeout
            )
            await self._serve_session(session, channel, reader, writer)
        except (
            transport.TransportError,
            WireProtocolError,
            framing.ConnectionClosedError,
            ConnectionError,
            asyncio.TimeoutError,
        ) as exc:
            self.stats["sessions_dropped"] += 1
            logger.info("session %d dropped: %s", session.id, exc)
        except asyncio.CancelledError:
            pass  # server shutdown
        finally:
            self._sessions.pop(session.id, None)
            self.stats["connections_active"] -= 1
            await session.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> transport.SecureChannel:
        """ECDH + HKDF handshake; ends with the sealed HELLO_OK frame."""
        try:
            hello = await framing.read_record(reader, self.config.max_frame_bytes)
            frame_type, payload = decode_frame(hello)
            if frame_type is not FrameType.HELLO:
                raise transport.TransportError("expected HELLO to open the session")
            client_pub, client_nonce = transport.parse_hello(payload, "client")
            private, public = transport.generate_keypair()
            server_nonce = transport.fresh_nonce()
            secret = transport.shared_secret(private, client_pub)
            channel = transport.SecureChannel.for_server(
                secret, client_nonce, server_nonce, self.config.auth_key
            )
            framing.write_record(
                writer,
                encode_frame(
                    FrameType.HELLO, transport.build_hello(public, server_nonce)
                ),
            )
            framing.write_record(
                writer,
                channel.seal(
                    encode_frame(FrameType.HELLO_OK, {"session": "established"})
                ),
            )
            await writer.drain()
            return channel
        except (transport.TransportError, WireProtocolError):
            self.stats["handshake_failures"] += 1
            raise

    async def _serve_session(
        self,
        session: Session,
        channel: transport.SecureChannel,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            record = await asyncio.wait_for(
                framing.read_record(reader, self.config.max_frame_bytes),
                self.config.idle_timeout,
            )
            frame_type, payload = decode_frame(channel.open(record))
            if frame_type is FrameType.GOODBYE:
                await self._send(writer, channel, encode_frame(FrameType.BYE, {}))
                return
            if self.draining and frame_type in STATEMENT_FRAMES:
                # In-flight statements finish; *new* work is refused.  COMMIT,
                # ROLLBACK, and FETCH stay allowed so open transactions and
                # half-fetched results can wind down cleanly.
                self.stats["statements_refused_draining"] += 1
                response = encode_frame(
                    FrameType.ERROR,
                    {
                        "error": "OperationalError",
                        "message": "server is draining; no new statements accepted",
                        "in_txn": self.manager.in_transaction(),
                    },
                )
                await self._send(writer, channel, response)
                continue
            # The in-flight window covers the response flush too: a graceful
            # drain must never cut a connection between executing a statement
            # and delivering its answer.
            self._inflight += 1
            self._idle.clear()
            try:
                response_type, response_payload = await session.handle(
                    frame_type, payload
                )
                self.stats["statements_served"] += 1
                await self._send(
                    writer, channel, encode_frame(response_type, response_payload)
                )
            finally:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.set()

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        channel: transport.SecureChannel,
        frame: bytes,
    ) -> None:
        """Seal and write one frame, bounded by the slow-reader send timeout."""
        framing.write_record(writer, channel.seal(frame))
        try:
            await asyncio.wait_for(writer.drain(), self.config.send_timeout)
        except asyncio.TimeoutError:
            raise transport.TransportError(
                "peer is not reading responses (send timeout)"
            ) from None


async def serve(config: Optional[ServerConfig] = None, **kwargs: Any) -> ReproServer:
    """Start a server (for embedding); the caller owns the returned instance."""
    if config is None:
        config = ServerConfig(**kwargs)
    server = ReproServer(config)
    await server.start()
    return server

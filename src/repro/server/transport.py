"""Authenticated-encryption transport for the proxy's wire protocol.

The threat model of the paper places the proxy on the *trusted* side: rows
leave :mod:`repro.server` decrypted, so the hop between application servers
and the proxy needs its own protection.  The handshake and record layer here
are built entirely from the reproduction's own primitives:

* **Ephemeral ECDH** over the JOIN-ADJ curve (NIST P-192,
  :mod:`repro.crypto.ecc`): each side sends a fresh public point in its
  cleartext HELLO; the shared secret is the x-coordinate of
  ``priv * peer_pub``.  Received points are validated on-curve by
  :meth:`Point.deserialize`, rejecting invalid-curve attacks.
* **HKDF-style key schedule** (extract-then-expand with HMAC-SHA256 via
  :func:`repro.crypto.prf.expand`): the secret, both hello nonces, and an
  optional pre-shared ``auth_key`` derive four 16-byte keys -- one AES key
  and one MAC key per direction.  A peer that does not hold the same
  ``auth_key`` derives garbage keys and fails the very first tag check,
  which is how the server rejects unauthenticated clients.
* **Per-record AEAD** in the AES-GCM mould, from :mod:`repro.crypto.aes` +
  CTR mode: each record is encrypted with AES-CTR under a nonce formed from
  a strictly-increasing 64-bit sequence counter, then authenticated with an
  encrypt-then-MAC HMAC-SHA256 tag (truncated to 128 bits) over the
  sequence number and ciphertext.  The receiver enforces *exactly
  sequential* sequence numbers, so replayed, reordered, or dropped records
  all fail closed.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import struct

from repro import faults
from repro.crypto import ecc, prf
from repro.crypto.aes import AES
from repro.crypto.modes import ctr_transform
from repro.errors import ReproError

#: Sealed-record layout: 8-byte sequence || ciphertext || 16-byte tag.
SEQ_BYTES = 8
TAG_BYTES = 16
NONCE_PREFIX = b"\x00\x00\x00\x00"  # pads the sequence to a 12-byte CTR nonce

_KDF_INFO = b"repro.server transport v1"


class TransportError(ReproError):
    """Handshake or record authentication failure; the session is dropped."""


def generate_keypair() -> tuple[int, ecc.Point]:
    """A fresh ephemeral ECDH key pair on the JOIN-ADJ curve."""
    private = secrets.randbelow(ecc.ORDER - 1) + 1
    return private, ecc.scalar_multiply_base(private)


def shared_secret(private: int, peer_public: bytes) -> bytes:
    """The ECDH shared secret from our scalar and the peer's point bytes."""
    try:
        peer = ecc.Point.deserialize(peer_public)
    except ReproError as exc:
        raise TransportError(f"invalid handshake public key: {exc}") from exc
    point = ecc.scalar_multiply(private, peer)
    if point.is_infinity:
        raise TransportError("handshake produced a degenerate shared secret")
    return point.serialize()


def derive_directional_keys(
    secret: bytes, client_nonce: bytes, server_nonce: bytes, auth_key: bytes
) -> tuple[bytes, bytes, bytes, bytes]:
    """HKDF the transcript into (c2s_key, c2s_mac, s2c_key, s2c_mac)."""
    salt = client_nonce + server_nonce
    pseudo_random_key = hmac.new(salt, secret + auth_key, hashlib.sha256).digest()
    okm = prf.expand(pseudo_random_key, _KDF_INFO, 64)
    return okm[0:16], okm[16:32], okm[32:48], okm[48:64]


class SecureChannel:
    """One direction-keyed AEAD channel; seal outbound, open inbound.

    Construct with :meth:`for_client` / :meth:`for_server` so the two sides
    agree on which derived keys protect which direction.
    """

    def __init__(
        self,
        send_key: bytes,
        send_mac: bytes,
        recv_key: bytes,
        recv_mac: bytes,
        role: str = "peer",
    ):
        self._send_cipher = AES(send_key)
        self._recv_cipher = AES(recv_key)
        self._send_mac = send_mac
        self._recv_mac = recv_mac
        self._send_seq = 0
        self._recv_seq = 0
        self.role = role
        #: Extra context forwarded to the ``transport.*`` fault hooks; the
        #: remote client stamps the frame/statement being exchanged here so
        #: fault rules can target e.g. only SELECT round trips.
        self.fault_context: dict = {}

    @classmethod
    def for_client(
        cls, secret: bytes, client_nonce: bytes, server_nonce: bytes, auth_key: bytes = b""
    ) -> "SecureChannel":
        c2s_key, c2s_mac, s2c_key, s2c_mac = derive_directional_keys(
            secret, client_nonce, server_nonce, auth_key
        )
        return cls(c2s_key, c2s_mac, s2c_key, s2c_mac, role="client")

    @classmethod
    def for_server(
        cls, secret: bytes, client_nonce: bytes, server_nonce: bytes, auth_key: bytes = b""
    ) -> "SecureChannel":
        c2s_key, c2s_mac, s2c_key, s2c_mac = derive_directional_keys(
            secret, client_nonce, server_nonce, auth_key
        )
        return cls(s2c_key, s2c_mac, c2s_key, c2s_mac, role="server")

    # ------------------------------------------------------------------
    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt-then-MAC one record under the next sequence number."""
        if faults.INJECTOR is not None:
            faults.INJECTOR.fire(
                "transport.send", role=self.role, **self.fault_context
            )
        if self._send_seq >= 1 << 64:
            raise TransportError("send sequence space exhausted")
        seq = struct.pack(">Q", self._send_seq)
        ciphertext = ctr_transform(self._send_cipher, NONCE_PREFIX + seq, plaintext)
        tag = hmac.new(self._send_mac, seq + ciphertext, hashlib.sha256).digest()
        self._send_seq += 1
        return seq + ciphertext + tag[:TAG_BYTES]

    def open(self, record: bytes) -> bytes:
        """Verify and decrypt one record; replays and tampering fail closed.

        The tag is checked before the sequence number so an attacker cannot
        probe the replay window without holding the MAC key; the sequence
        must then equal exactly the next expected value.
        """
        if faults.INJECTOR is not None:
            faults.INJECTOR.fire(
                "transport.recv", role=self.role, **self.fault_context
            )
        if len(record) < SEQ_BYTES + TAG_BYTES:
            raise TransportError("sealed record too short")
        seq = record[:SEQ_BYTES]
        ciphertext = record[SEQ_BYTES:-TAG_BYTES]
        tag = record[-TAG_BYTES:]
        expected = hmac.new(self._recv_mac, seq + ciphertext, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected[:TAG_BYTES]):
            raise TransportError("record authentication failed")
        (sequence,) = struct.unpack(">Q", seq)
        if sequence != self._recv_seq:
            raise TransportError(
                f"record sequence {sequence} is not the expected {self._recv_seq} "
                "(replayed, reordered, or dropped record)"
            )
        self._recv_seq += 1
        return ctr_transform(self._recv_cipher, NONCE_PREFIX + seq, ciphertext)


# ---------------------------------------------------------------------------
# handshake payload helpers (shared by the async server and sync client)
# ---------------------------------------------------------------------------
def build_hello(public: ecc.Point, nonce: bytes) -> dict:
    from repro.server.protocol import MAGIC, PROTOCOL_VERSION

    return {
        "magic": MAGIC,
        "version": PROTOCOL_VERSION,
        "pub": public.serialize(),
        "nonce": nonce,
    }


def parse_hello(payload, role: str) -> tuple[bytes, bytes]:
    """Validate a HELLO payload; returns (peer_public_bytes, peer_nonce)."""
    from repro.server.protocol import MAGIC, PROTOCOL_VERSION

    if not isinstance(payload, dict):
        raise TransportError(f"{role} HELLO payload is not a mapping")
    if payload.get("magic") != MAGIC:
        raise TransportError(f"{role} is not speaking the {MAGIC} protocol")
    if payload.get("version") != PROTOCOL_VERSION:
        raise TransportError(
            f"{role} protocol version {payload.get('version')!r} is not "
            f"{PROTOCOL_VERSION}"
        )
    public = payload.get("pub")
    nonce = payload.get("nonce")
    if not isinstance(public, bytes) or not isinstance(nonce, bytes) or len(nonce) < 8:
        raise TransportError(f"{role} HELLO is missing key material")
    return public, nonce


def fresh_nonce() -> bytes:
    return secrets.token_bytes(16)

"""``repro.server``: the networked async CryptDB proxy.

The paper deploys CryptDB as a *network* proxy between many application
servers and the DBMS; this package is that deployment shape.  An asyncio
socket server (:class:`ReproServer`) speaks a length-framed binary wire
protocol (:mod:`repro.server.protocol` / :mod:`repro.server.framing`) over
an authenticated-encryption transport established by an ephemeral-ECDH
handshake (:mod:`repro.server.transport`), and multiplexes every client
session onto one shared :class:`~repro.core.proxy.CryptDBProxy`
(:mod:`repro.server.session`).

Clients use :func:`repro.connect` with a URL -- a drop-in for the
in-process path::

    conn = repro.connect(url="repro://127.0.0.1:7799")

Run a standalone server with ``python -m repro.server``; embed one in tests
with :class:`repro.server.loopback.LoopbackServer`.
"""

from repro.server.framing import DEFAULT_MAX_FRAME_BYTES, ConnectionClosedError
from repro.server.loopback import LoopbackServer, connect_loopback
from repro.server.protocol import FrameType, WireProtocolError
from repro.server.server import ReproServer, ServerConfig, serve
from repro.server.transport import SecureChannel, TransportError

__all__ = [
    "ReproServer",
    "ServerConfig",
    "serve",
    "LoopbackServer",
    "connect_loopback",
    "FrameType",
    "WireProtocolError",
    "TransportError",
    "SecureChannel",
    "ConnectionClosedError",
    "DEFAULT_MAX_FRAME_BYTES",
]

"""Per-connection sessions multiplexed onto one shared CryptDB proxy.

The server holds exactly one proxy (one master key, one plan cache, one
crypto worker pool) for all connected applications -- the paper's Figure 1
topology.  Two pieces of state cannot be shared freely:

* **Statement execution.**  The pure-Python engine and the proxy's onion
  metadata are not thread-safe, so all statements run on a single executor
  thread, admitted one at a time through an :class:`asyncio.Lock`.
* **Transactions.**  The backend has one transaction context.  A session
  that opens a transaction *keeps the execution lock* until it commits,
  rolls back, or disconnects; other sessions' statements queue behind it.
  That gives every connection serializable transaction semantics without
  the engine growing MVCC.

Backpressure is bounded at both layers: per connection the peer can have at
most one statement in flight (the protocol is request/response) and slow
readers block only their own response writer; globally, at most
``max_pending_statements`` sessions may queue for the execution lock --
beyond that the server answers ``OperationalError: server busy`` instead of
growing an unbounded queue.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Callable, Optional

from repro import faults
from repro.api import exceptions
from repro.api.exceptions import wrap_error
from repro.errors import ReproError
from repro.server.protocol import FrameType, WireProtocolError, expect_payload_dict
from repro.sql.executor import ResultSet

#: Per-session cap on parked server-side cursors; oldest are evicted.
MAX_CURSORS_PER_SESSION = 32


class SessionManager:
    """Admission control for the shared proxy: one statement at a time."""

    def __init__(
        self,
        proxy,
        loop: asyncio.AbstractEventLoop,
        executor,
        max_pending_statements: int = 256,
        statement_timeout: Optional[float] = None,
    ):
        self.proxy = proxy
        self._loop = loop
        self._executor = executor
        self._lock = asyncio.Lock()
        self._txn_owner: Optional[int] = None
        self._pending = 0
        self._max_pending = max_pending_statements
        self.statement_timeout = statement_timeout
        #: Robustness counters, exposed over the STATS frame's "server"
        #: block: statements refused at admission (queue full) and
        #: statements abandoned by the per-statement timeout.
        self.counters: dict[str, int] = {
            "statements_shed": 0,
            "statements_timed_out": 0,
        }

    def in_transaction(self) -> bool:
        transactions = getattr(self.proxy.db, "transactions", None)
        return bool(transactions is not None and transactions.in_transaction)

    async def execute(
        self,
        session_id: int,
        fn: Callable[[], Any],
        head: Optional[str] = None,
    ) -> tuple[Any, bool]:
        """Run ``fn`` on the executor under the shared-proxy protocol.

        Returns ``(result, in_transaction)``.  If the statement leaves a
        transaction open, this session keeps the lock (it owns the backend's
        transaction context) and its subsequent statements re-enter without
        re-acquiring; any other session queues until the transaction ends.

        Faults injected at ``server.session.execute`` fire *before* the
        statement is admitted, so an injected failure is always a clean
        no-side-effects refusal.  With ``statement_timeout`` set, a
        statement that outlives it is answered with a retryable
        ``OperationalError`` while it keeps running on the executor thread
        (threads cannot be killed); the admission lock is only released once
        it actually finishes, so the shared proxy stays serialized.
        """
        if faults.INJECTOR is not None:
            faults.INJECTOR.fire(
                "server.session.execute",
                target=self,
                head=head,
                session=session_id,
            )
        owns_lock_already = self._txn_owner == session_id
        if not owns_lock_already:
            if self._pending >= self._max_pending:
                self.counters["statements_shed"] += 1
                raise exceptions.OperationalError(
                    "server busy: statement queue is full (retry later)"
                )
            self._pending += 1
            try:
                await self._lock.acquire()
            finally:
                self._pending -= 1
        future = self._loop.run_in_executor(self._executor, fn)
        try:
            if self.statement_timeout is not None:
                result = await asyncio.wait_for(
                    asyncio.shield(future), self.statement_timeout
                )
            else:
                result = await future
        except asyncio.TimeoutError:
            self.counters["statements_timed_out"] += 1
            future.add_done_callback(
                lambda done: self._abandon(session_id, done)
            )
            raise exceptions.OperationalError(
                f"statement timed out after {self.statement_timeout:g}s; "
                "it may still be executing (retry later)"
            ) from None
        except BaseException:
            self._settle(session_id)
            raise
        self._settle(session_id)
        return result, self._txn_owner == session_id

    def _abandon(self, session_id: int, future) -> None:
        """A timed-out statement finally finished; release its admission."""
        if not future.cancelled():
            future.exception()  # retrieved: no "exception never consumed" noise
        self._settle(session_id)

    def _settle(self, session_id: int) -> None:
        """After a statement: keep or release the lock per transaction state."""
        if self.in_transaction():
            self._txn_owner = session_id
        else:
            self._txn_owner = None
            if self._lock.locked():
                self._lock.release()

    async def release_session(self, session_id: int) -> None:
        """Disconnect cleanup: roll back and release an owned transaction."""
        if self._txn_owner != session_id:
            return
        try:
            await self._loop.run_in_executor(
                self._executor, lambda: self.proxy.execute("ROLLBACK")
            )
        except Exception:
            pass  # the rollback is best-effort; the lock must be freed anyway
        self._txn_owner = None
        if self._lock.locked():
            self._lock.release()


class Session:
    """One client connection: frame dispatch, cursors, transaction state."""

    _ids = itertools.count(1)

    def __init__(self, manager: SessionManager, default_fetch: int = 0):
        self.id = next(Session._ids)
        self.manager = manager
        self.default_fetch = max(0, default_fetch)
        self._cursors: dict[int, list[tuple]] = {}
        self._next_cursor = itertools.count(1)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def handle(self, frame_type: FrameType, payload) -> tuple[FrameType, dict]:
        """Process one request frame; returns the response frame.

        SQL-level failures (bad statements, unsupported queries, integrity
        errors) come back as ERROR frames and leave the session healthy;
        protocol-level problems raise and drop the session.
        """
        try:
            handler = self._HANDLERS[frame_type]
        except KeyError:
            raise WireProtocolError(
                f"frame {frame_type.name} is not a valid client request"
            ) from None
        try:
            return await handler(self, expect_payload_dict(payload, frame_type))
        except exceptions.Error as exc:
            return self._error_response(exc)
        except ReproError as exc:
            if isinstance(exc, WireProtocolError):
                raise
            return self._error_response(wrap_error(exc))

    def _error_response(self, exc: exceptions.Error) -> tuple[FrameType, dict]:
        return FrameType.ERROR, {
            "error": type(exc).__name__,
            "message": str(exc),
            "in_txn": self.manager.in_transaction(),
        }

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------
    async def _handle_execute(self, payload: dict) -> tuple[FrameType, dict]:
        sql = payload.get("sql")
        if not isinstance(sql, str):
            raise WireProtocolError("EXECUTE payload needs a 'sql' string")
        params = payload.get("params")
        if params is not None and not isinstance(params, (list, tuple)):
            raise WireProtocolError("EXECUTE params must be a sequence or null")
        fetch = payload.get("fetch", self.default_fetch)
        if not isinstance(fetch, int) or fetch < 0:
            raise WireProtocolError("EXECUTE fetch must be a non-negative integer")
        proxy = self.manager.proxy
        head = None
        if faults.INJECTOR is not None:
            stripped = sql.strip()
            head = stripped.split(None, 1)[0].upper() if stripped else ""
        result, in_txn = await self.manager.execute(
            self.id,
            lambda: proxy.execute(sql, tuple(params) if params else None),
            head=head,
        )
        return self._result_response(result, fetch, in_txn)

    async def _handle_executemany(self, payload: dict) -> tuple[FrameType, dict]:
        sql = payload.get("sql")
        rows = payload.get("rows")
        if not isinstance(sql, str) or not isinstance(rows, (list, tuple)):
            raise WireProtocolError("EXECUTEMANY payload needs 'sql' and 'rows'")
        for row in rows:
            if not isinstance(row, (list, tuple)):
                raise WireProtocolError("EXECUTEMANY rows must be sequences")
        proxy = self.manager.proxy
        total, in_txn = await self.manager.execute(
            self.id,
            lambda: proxy.executemany(sql, [tuple(row) for row in rows]),
            head="EXECUTEMANY",
        )
        return FrameType.OK, {"rowcount": total, "in_txn": in_txn}

    async def _handle_prepare(self, payload: dict) -> tuple[FrameType, dict]:
        sql = payload.get("sql")
        if not isinstance(sql, str):
            raise WireProtocolError("PREPARE payload needs a 'sql' string")
        proxy = self.manager.proxy
        prepared, in_txn = await self.manager.execute(
            self.id, lambda: proxy.prepare(sql), head="PREPARE"
        )
        return FrameType.PREPARED, {
            "param_count": prepared.param_count,
            "kind": prepared.kind,
            "in_txn": in_txn,
        }

    def _result_response(
        self, result: ResultSet, fetch: int, in_txn: bool
    ) -> tuple[FrameType, dict]:
        if not result.columns:
            return FrameType.OK, {"rowcount": result.rowcount, "in_txn": in_txn}
        rows = [tuple(row) for row in result.rows]
        response = {
            "columns": list(result.columns),
            "rowcount": result.rowcount,
            "total": len(rows),
            "in_txn": in_txn,
            "cursor": None,
        }
        if fetch and len(rows) > fetch:
            cursor_id = next(self._next_cursor)
            self._cursors[cursor_id] = rows[fetch:]
            while len(self._cursors) > MAX_CURSORS_PER_SESSION:
                self._cursors.pop(next(iter(self._cursors)))
            response["cursor"] = cursor_id
            rows = rows[:fetch]
        response["rows"] = rows
        return FrameType.ROWS, response

    async def _handle_fetch(self, payload: dict) -> tuple[FrameType, dict]:
        cursor_id = payload.get("cursor")
        count = payload.get("count", self.default_fetch)
        if not isinstance(cursor_id, int) or not isinstance(count, int) or count < 0:
            raise WireProtocolError("FETCH payload needs 'cursor' and 'count' ints")
        parked = self._cursors.get(cursor_id)
        if parked is None:
            return self._error_response(
                exceptions.InterfaceError(f"unknown or exhausted cursor {cursor_id}")
            )
        chunk = parked[:count] if count else parked
        remainder = parked[len(chunk):]
        if remainder:
            self._cursors[cursor_id] = remainder
        else:
            del self._cursors[cursor_id]
        return FrameType.ROWS, {
            "rows": chunk,
            "cursor": cursor_id if remainder else None,
            "in_txn": self.manager.in_transaction(),
        }

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    async def _handle_txn(self, sql: str) -> tuple[FrameType, dict]:
        proxy = self.manager.proxy
        _result, in_txn = await self.manager.execute(
            self.id, lambda: proxy.execute(sql), head=sql
        )
        return FrameType.OK, {"rowcount": 0, "in_txn": in_txn}

    async def _handle_begin(self, payload: dict) -> tuple[FrameType, dict]:
        return await self._handle_txn("BEGIN")

    async def _handle_commit(self, payload: dict) -> tuple[FrameType, dict]:
        return await self._handle_txn("COMMIT")

    async def _handle_rollback(self, payload: dict) -> tuple[FrameType, dict]:
        return await self._handle_txn("ROLLBACK")

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    async def _handle_stats(self, payload: dict) -> tuple[FrameType, dict]:
        stats = self.manager.proxy.stats
        response = {
            "proxy": {
                "queries_processed": stats.queries_processed,
                "queries_rewritten": stats.queries_rewritten,
                "unsupported_queries": stats.unsupported_queries,
                "plan_cache_hits": stats.plan_cache_hits,
                "plan_cache_misses": stats.plan_cache_misses,
                "batched_statements": stats.batched_statements,
                "batched_rows": stats.batched_rows,
            },
            "cache": stats.cache_stats().as_dict(),
            "server": dict(self.manager.counters),
            "in_txn": self.manager.in_transaction(),
        }
        if stats.shard is not None:
            response["shard"] = stats.shard.stats()
        if payload.get("reset"):
            # Snapshot first, then zero: the caller sees the final counts of
            # the epoch it is closing.  reset() cascades into the cache, the
            # crypto pool and the sharded backend's scatter/merge counters;
            # the server-level shed/timeout counters are part of the same
            # epoch and clear with it.
            stats.reset()
            for key in self.manager.counters:
                self.manager.counters[key] = 0
        return FrameType.STATS_RESULT, response

    async def close(self) -> None:
        """Disconnect cleanup: park nothing, roll back an owned transaction."""
        self._cursors.clear()
        await self.manager.release_session(self.id)

    _HANDLERS = {
        FrameType.EXECUTE: _handle_execute,
        FrameType.EXECUTEMANY: _handle_executemany,
        FrameType.PREPARE: _handle_prepare,
        FrameType.FETCH: _handle_fetch,
        FrameType.BEGIN: _handle_begin,
        FrameType.COMMIT: _handle_commit,
        FrameType.ROLLBACK: _handle_rollback,
        FrameType.STATS: _handle_stats,
    }

"""``python -m repro.server``: run the networked CryptDB proxy.

Example::

    python -m repro.server --host 0.0.0.0 --port 7799 --workers 4 \
        --backend sqlite --auth-key s3cret

Applications then connect with::

    import repro
    conn = repro.connect(url="repro://proxy-host:7799", auth_key=b"s3cret")

SIGINT/SIGTERM trigger a graceful drain: in-flight statements finish and
their responses flush, new statements are refused, then the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import signal
import sys

from repro.server.server import ReproServer, ServerConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Networked CryptDB proxy: encrypted wire protocol front-end",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=7799, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--workers", type=int, default=0,
        help="crypto worker processes for the shared proxy (0 = serial)",
    )
    parser.add_argument(
        "--backend", default="memory", choices=["memory", "sqlite", "sharded"],
        help="DBMS the proxy fronts (sharded = scatter-gather over "
             "--shards in-memory instances)",
    )
    parser.add_argument(
        "--shards", type=int, default=3,
        help="shard count when --backend sharded (default 3)",
    )
    parser.add_argument(
        "--shard-mode", default="det-hash", choices=["det-hash", "ope-range"],
        help="shard-key placement: DET-ciphertext hash or OPE range slices",
    )
    parser.add_argument(
        "--auth-key", default="",
        help="pre-shared transport authentication key (UTF-8 passphrase)",
    )
    parser.add_argument("--idle-timeout", type=float, default=300.0)
    parser.add_argument("--max-connections", type=int, default=128)
    parser.add_argument("--drain-timeout", type=float, default=30.0)
    parser.add_argument(
        "--statement-timeout", type=float, default=None,
        help="abandon a statement after this many seconds with a retryable "
             "error (default: no per-statement timeout)",
    )
    parser.add_argument(
        "--paillier-bits", type=int, default=1024,
        help="Paillier modulus size for the proxy's HOM onion",
    )
    parser.add_argument(
        "--catalog", default=None, metavar="PATH.WAL",
        help="durable metadata catalog (write-ahead log); with an existing "
             "catalog + backend files the proxy restarts from snapshot+WAL "
             "(requires --master-key so column keys re-derive)",
    )
    parser.add_argument(
        "--backend-path", default=None, metavar="FILE",
        help="SQLite database file for --backend sqlite (default in-memory); "
             "for --backend sharded, a base path expanded to FILE.shard0..N",
    )
    parser.add_argument(
        "--master-key", default=None, metavar="PASSPHRASE",
        help="master-key passphrase; required to restart from --catalog "
             "(a fresh random key is generated otherwise)",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


async def run(config: ServerConfig) -> int:
    server = ReproServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    host, port = server.address
    print(f"repro.server listening on repro://{host}:{port}", flush=True)
    await stop.wait()
    print("repro.server draining...", flush=True)
    await server.aclose()
    print(
        f"repro.server stopped: {server.stats['statements_served']} statements "
        f"served, {server.stats['dropped_inflight']} dropped in flight",
        flush=True,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    backend = args.backend
    if backend == "sharded":
        from repro.shard import ShardedBackend

        # resolve_backend passes instances through, so the CLI can carry
        # the shard topology without widening ServerConfig.
        paths = None
        base = "memory"
        if args.backend_path:
            base = "sqlite"
            paths = [f"{args.backend_path}.shard{i}" for i in range(args.shards)]
        backend = ShardedBackend(
            shards=args.shards,
            base=base,
            mode=args.shard_mode,
            paths=paths,
            allow_existing=args.catalog is not None,
        )
    elif backend == "sqlite" and args.backend_path:
        from repro.api.sqlite_backend import SQLiteBackend

        backend = SQLiteBackend(
            path=args.backend_path, allow_existing=args.catalog is not None
        )
    proxy_kwargs = {
        "workers": args.workers,
        "paillier_bits": args.paillier_bits,
    }
    if args.catalog is not None:
        proxy_kwargs["catalog"] = args.catalog
    if args.master_key is not None:
        from repro.crypto.keys import MasterKey

        proxy_kwargs["master_key"] = MasterKey.from_passphrase(args.master_key)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        backend=backend,
        auth_key=args.auth_key.encode("utf-8"),
        idle_timeout=args.idle_timeout,
        max_connections=args.max_connections,
        drain_timeout=args.drain_timeout,
        statement_timeout=args.statement_timeout,
        proxy_kwargs=proxy_kwargs,
    )
    return asyncio.run(run(config))


if __name__ == "__main__":
    raise SystemExit(main())

"""In-process loopback servers: a real TCP server on a background thread.

Tests, benchmarks, and the ``enc-remote`` conformance lane need a genuine
:class:`~repro.server.server.ReproServer` -- real sockets, real handshake,
real framing -- without managing a separate process.  :class:`LoopbackServer`
runs one on a dedicated event-loop thread bound to ``127.0.0.1:<ephemeral>``;
:func:`connect_loopback` additionally opens a remote
:class:`~repro.api.connection.Connection` whose ``close()`` also stops the
embedded server, so a lane factory can hand back a self-contained connection.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import fields
from typing import Any, Optional

from repro.server.server import ReproServer, ServerConfig

_CONFIG_FIELDS = {f.name for f in fields(ServerConfig)}


def _split_config(kwargs: dict) -> ServerConfig:
    """Split kwargs into ServerConfig fields and proxy kwargs."""
    config_args = {k: v for k, v in kwargs.items() if k in _CONFIG_FIELDS}
    proxy_kwargs = {k: v for k, v in kwargs.items() if k not in _CONFIG_FIELDS}
    merged = dict(config_args.pop("proxy_kwargs", {}) or {})
    merged.update(proxy_kwargs)
    return ServerConfig(proxy_kwargs=merged, **config_args)


class LoopbackServer:
    """A ReproServer on its own event-loop thread; stop() drains it."""

    def __init__(self, **kwargs: Any):
        self.config = _split_config(kwargs)
        self.server: Optional[ReproServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-loopback-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            raise self._startup_error
        if self.server is None:
            raise RuntimeError("loopback server failed to start")

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = ReproServer(self.config)
            loop.run_until_complete(server.start())
            self.server = server
        except BaseException as exc:  # startup failures propagate to the caller
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    @property
    def url(self) -> str:
        host, port = self.server.address
        return f"repro://{host}:{port}"

    @property
    def proxy(self):
        return self.server.proxy

    @property
    def stats(self) -> dict:
        return dict(self.server.stats)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Run a graceful drain on the server thread and wait for it."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(timeout), self._loop
        )
        future.result(timeout=(timeout or self.server.config.drain_timeout) + 30)

    def stop(self) -> None:
        """Drain, release the proxy, and stop the event-loop thread."""
        if self._loop is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.aclose(), self._loop)
        try:
            future.result(timeout=60)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> "LoopbackServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def connect_loopback(
    *,
    fetch_chunk: int = 512,
    auth_key: bytes = b"",
    client_kwargs: Optional[dict] = None,
    **server_kwargs: Any,
):
    """One self-contained remote connection over an embedded server.

    The returned :class:`~repro.api.connection.Connection` speaks the full
    wire protocol to a live loopback :class:`ReproServer`; closing it also
    drains and stops the server.  ``server_kwargs`` mix ServerConfig fields
    with proxy kwargs (``master_key``, ``paillier``, ``workers``, ...);
    ``client_kwargs`` go to :class:`RemoteProxyClient` (``timeout``,
    ``max_retries``, ``reconnect_backoff``, ...).
    """
    from repro.api.connection import connect

    server = LoopbackServer(auth_key=auth_key, **server_kwargs)
    try:
        connection = connect(
            url=server.url,
            auth_key=auth_key,
            fetch_chunk=fetch_chunk,
            **(client_kwargs or {}),
        )
    except BaseException:
        server.stop()
        raise
    connection.proxy.on_close = server.stop
    #: Escape hatch for chaos tooling that needs the embedded server (its
    #: shared proxy, its stats) alongside the wire-level connection.
    connection.loopback_server = server
    return connection

"""Scatter-gather merge semantics: recombining per-shard answers.

Everything here operates on the *rewritten* (ciphertext-level) statement
and the raw per-shard result sets, before the proxy decrypts anything:

* ``CRYPTDB_HOM_SUM`` partials combine **homomorphically** -- scalar
  Paillier partials multiply modulo ``n^2`` (public key only; the merge
  point never decrypts), packed partials keep their chunks separate by
  concatenating ``PSUM`` blobs so no slot's count subfield can overflow.
* ``COUNT`` partials add; packed ``AVG`` needs no count column at all
  because the divisor rides the slot's count subfield through the merged
  ciphertext.
* ``MIN``/``MAX`` over OPE integers (order-preserving, so the per-shard
  extremum of ciphertexts is the ciphertext of the per-shard plaintext
  extremum) take the min/max across shards.
* Ordered row streams merge with a k-way heap over the per-shard (already
  sorted) streams, using exactly the proxy's NULL-placement key.  Each
  shard is asked for ``OFFSET + LIMIT`` rows and the OFFSET is applied
  only *after* the merge -- a per-shard OFFSET would silently drop rows
  that a different interleaving puts inside the window.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core import udfs
from repro.core.results import row_sort_key
from repro.crypto.paillier import (
    PackingConfig,
    PaillierPublicKey,
    decode_partial_sums,
    encode_partial_sums,
    is_partial_sum_blob,
)
from repro.errors import ReproError
from repro.sql import ast_nodes as ast
from repro.sql.executor import ResultSet

#: Aggregate function names a scatter can merge (upper-case), including the
#: rewriter's homomorphic SUM UDF.  AVG is recognised but never merged -- a
#: plaintext AVG cannot be recombined from per-shard AVGs, and the rewriter
#: replaces encrypted AVG with HOM_SUM before the backend ever sees it.
MERGEABLE_AGGREGATES = frozenset({"COUNT", "SUM", "MIN", "MAX", "TOTAL", udfs.HOM_SUM})
AGGREGATE_FUNCTIONS = MERGEABLE_AGGREGATES | frozenset({"AVG"})

#: Alias prefix for ORDER BY columns a scatter appends to the projection so
#: the merge can see the sort key; stripped again after the merge.
HIDDEN_ORDER_PREFIX = "__shard_ord_"


class ShardMergeError(ReproError):
    """A merge was asked to recombine something it cannot."""


# ---------------------------------------------------------------------------
# homomorphic recombination
# ---------------------------------------------------------------------------
class HomCombiner:
    """Combines per-shard ``CRYPTDB_HOM_SUM`` partials without decrypting.

    Holds only the Paillier *public* key: scalar partials combine via the
    ciphertext product mod ``n^2`` (``Enc(a) * Enc(b) = Enc(a+b)``), packed
    partials combine by pooling their chunks into one ``PSUM`` blob.  The
    private key never appears here -- the acceptance criterion that SUM/AVG
    merge with no proxy-side decrypt of partials is structural.
    """

    def __init__(
        self,
        public_key: Optional[PaillierPublicKey] = None,
        packing: Optional[PackingConfig] = None,
    ):
        self.public_key = public_key
        self.packing = packing

    def combine(self, partials: list) -> Any:
        values = [value for value in partials if value is not None]
        if not values:
            return None  # SUM over zero rows is NULL on every shard
        if self.packing is not None:
            # Chunks stay separate: multiplying two packed partials would
            # fold up to 2x chunk_rows rows into one chunk and could carry a
            # count subfield into its neighbour.  decrypt_packed_sum adds
            # the chunks' plaintexts after one decrypt each.
            chunks: list[int] = []
            for value in values:
                blob = bytes(value) if isinstance(value, (bytes, bytearray)) else None
                if blob is not None and is_partial_sum_blob(blob):
                    chunks.extend(decode_partial_sums(blob))
                else:
                    chunks.append(int(value))
            if len(chunks) == 1:
                return chunks[0]
            return encode_partial_sums(chunks)
        if self.public_key is None:
            raise ShardMergeError(
                "cannot combine scalar HOM partials without the Paillier "
                "public key (configure_crypto was never called)"
            )
        n_squared = self.public_key.n_squared
        total = 1  # Enc(0) with unit randomness, the neutral element
        for value in values:
            total = (total * int(value)) % n_squared
        return total


def _combine_plain_sum(partials: list) -> Any:
    values = [value for value in partials if value is not None]
    if not values:
        return None
    total = values[0]
    for value in values[1:]:
        total += value
    return total


def _combine_count(partials: list) -> int:
    return sum(int(value) for value in partials if value is not None)


def _combine_min(partials: list) -> Any:
    values = [value for value in partials if value is not None]
    return min(values) if values else None


def _combine_max(partials: list) -> Any:
    values = [value for value in partials if value is not None]
    return max(values) if values else None


# ---------------------------------------------------------------------------
# statement classification
# ---------------------------------------------------------------------------
def aggregate_name(expr: ast.Expression) -> Optional[str]:
    """The upper-cased name when ``expr`` is a top-level aggregate call."""
    if isinstance(expr, ast.FunctionCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
        return expr.name.upper()
    return None


def is_aggregate_select(select: ast.Select) -> bool:
    return any(aggregate_name(item.expr) is not None for item in select.items)


def referenced_tables(from_clause: Optional[ast.FromClause]) -> list[ast.TableRef]:
    """Every base-table reference of a FROM clause, joins flattened."""
    if from_clause is None:
        return []
    if isinstance(from_clause, ast.TableRef):
        return [from_clause]
    return referenced_tables(from_clause.left) + [from_clause.right]


# ---------------------------------------------------------------------------
# row scatter planning (ORDER BY / LIMIT / OFFSET pushdown)
# ---------------------------------------------------------------------------
@dataclass
class RowScatterPlan:
    """How one non-aggregate SELECT scatters and merges."""

    per_shard: ast.Select
    #: ``(projection index, ascending)`` per ORDER BY item, or [] (unordered).
    order: list[tuple[int, bool]] = field(default_factory=list)
    #: Hidden trailing projection columns to strip after the merge.
    hidden: int = 0
    #: Global OFFSET/LIMIT, applied only after the merge.
    offset: Optional[int] = None
    limit: Optional[int] = None
    distinct: bool = False


def _resolve_order_index(
    item: ast.OrderItem,
    select: ast.Select,
    star_columns: Optional[list[str]],
) -> Optional[int]:
    """Projection index serving ``item``'s expression, if any."""
    target = item.expr.to_sql()
    bare = item.expr.name if isinstance(item.expr, ast.ColumnRef) else None
    position = 0
    for select_item in select.items:
        if isinstance(select_item.expr, ast.Star):
            if star_columns is None:
                return None
            if bare is not None and bare in star_columns:
                return position + star_columns.index(bare)
            position += len(star_columns)
            continue
        if select_item.alias is not None and select_item.alias == bare:
            return position
        if select_item.expr.to_sql() == target:
            return position
        if (
            bare is not None
            and isinstance(select_item.expr, ast.ColumnRef)
            and select_item.expr.name == bare
        ):
            # An unqualified ORDER BY name matches a qualified projection of
            # the same column (single-table scatters only reach here).
            return position
        position += 1
    return None


def plan_row_scatter(
    select: ast.Select, star_columns: Optional[list[str]] = None
) -> Optional[RowScatterPlan]:
    """Build the per-shard statement + merge recipe, or None for broadcast.

    ``star_columns`` is the table's physical column order, used to resolve
    ORDER BY names through a ``SELECT *`` projection.  Returns None when a
    faithful scatter is impossible (LIMIT without a total order, DISTINCT
    under LIMIT where cross-shard duplicates could under-fill the window,
    an unresolvable sort column on a DISTINCT or ``*`` projection).
    """
    if select.group_by or select.having:
        # A non-aggregate GROUP BY dedupes groups across the whole table;
        # per-shard grouping would emit one row per (shard, group).
        return None
    if not select.order_by:
        if select.limit is not None or select.offset is not None:
            return None  # LIMIT without ORDER BY: no deterministic merge
        return RowScatterPlan(per_shard=select, distinct=select.distinct)

    if select.distinct and (select.limit is not None or select.offset is not None):
        return None

    order: list[tuple[int, bool]] = []
    unresolved: list[ast.OrderItem] = []
    for item in select.order_by:
        index = _resolve_order_index(item, select, star_columns)
        if index is None:
            unresolved.append(item)
        else:
            order.append((index, item.ascending))
    hidden = 0
    items = select.items
    if unresolved:
        if select.distinct or any(isinstance(i.expr, ast.Star) for i in select.items):
            # Appending projection columns would change DISTINCT semantics,
            # and a * projection's width is unknown to the merge.
            return None
        items = list(select.items)
        width = sum(
            len(star_columns) if isinstance(i.expr, ast.Star) else 1
            for i in select.items
        )
        for item in unresolved:
            items.append(
                ast.SelectItem(item.expr, alias=f"{HIDDEN_ORDER_PREFIX}{hidden}")
            )
            order.append((width + hidden, item.ascending))
            hidden += 1
        # Re-slot resolved and hidden entries back into ORDER BY order (the
        # loops above appended them as two runs: resolved first, hidden last).
        resolved_iter = iter(order[: len(select.order_by) - hidden])
        hidden_iter = iter(order[len(select.order_by) - hidden:])
        order = [
            next(hidden_iter) if item in unresolved else next(resolved_iter)
            for item in select.order_by
        ]

    per_shard_limit = select.limit
    if select.limit is not None:
        # Satellite fix: each shard must produce OFFSET + LIMIT candidates;
        # pushing the OFFSET down would drop rows other shards contribute
        # inside the window.  The global OFFSET applies after the merge.
        per_shard_limit = select.limit + (select.offset or 0)

    per_shard = ast.Select(
        items=items,
        from_clause=select.from_clause,
        where=select.where,
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        limit=per_shard_limit,
        offset=None,
        distinct=select.distinct,
    )
    return RowScatterPlan(
        per_shard=per_shard,
        order=order,
        hidden=hidden,
        offset=select.offset,
        limit=select.limit,
        distinct=select.distinct,
    )


def merge_row_results(
    plan: RowScatterPlan, shard_results: list[ResultSet]
) -> ResultSet:
    """K-way merge of per-shard row streams according to ``plan``."""
    if plan.order:
        # Each shard's stream is already sorted by its server-side ORDER BY;
        # heapq.merge interleaves them and, on equal keys, is stable across
        # input order -- rows from lower shard indexes surface first, which
        # keeps the merge deterministic on duplicate OPE keys.
        rows = list(
            heapq.merge(
                *[result.rows for result in shard_results],
                key=lambda row: row_sort_key(row, plan.order),
            )
        )
    else:
        rows = [row for result in shard_results for row in result.rows]
    if plan.distinct:
        seen = set()
        unique = []
        for row in rows:
            marker = tuple(row)
            if marker not in seen:
                seen.add(marker)
                unique.append(row)
        rows = unique
    if plan.offset is not None:
        rows = rows[plan.offset:]
    if plan.limit is not None:
        rows = rows[: plan.limit]
    columns = shard_results[0].columns if shard_results else []
    if plan.hidden:
        rows = [tuple(row[: len(row) - plan.hidden]) for row in rows]
        columns = columns[: len(columns) - plan.hidden]
    return ResultSet(columns, rows, len(rows))


# ---------------------------------------------------------------------------
# aggregate merging
# ---------------------------------------------------------------------------
def classify_aggregate_items(select: ast.Select) -> Optional[list[Optional[str]]]:
    """Per projection item: the aggregate name, or None for a group key.

    Returns None when this aggregate SELECT cannot be merged column-wise
    (DISTINCT aggregates, AVG, expressions mixing aggregates into
    arithmetic) and must broadcast instead.
    """
    specs: list[Optional[str]] = []
    saw_aggregate = False
    for item in select.items:
        name = aggregate_name(item.expr)
        if name is None:
            specs.append(None)
            continue
        call = item.expr
        if call.distinct:
            return None  # per-shard distinct counts cannot be summed
        if name not in MERGEABLE_AGGREGATES:
            return None
        specs.append(name)
        saw_aggregate = True
    if not saw_aggregate:
        return None
    return specs


_COMBINERS = {
    "COUNT": _combine_count,
    "SUM": _combine_plain_sum,
    "TOTAL": _combine_plain_sum,
    "MIN": _combine_min,
    "MAX": _combine_max,
}


def merge_aggregate_results(
    select: ast.Select,
    specs: list[Optional[str]],
    shard_results: list[ResultSet],
    hom: HomCombiner,
) -> ResultSet:
    """Recombine per-shard aggregate rows, grouped by the non-aggregate keys."""
    key_indexes = [index for index, spec in enumerate(specs) if spec is None]
    grouped = bool(select.group_by)
    # Group value -> per-column list of partials, insertion-ordered so the
    # merged output is deterministic across runs.
    partials: dict[tuple, list[list]] = {}
    for result in shard_results:
        for row in result.rows:
            key = tuple(row[index] for index in key_indexes)
            bucket = partials.setdefault(key, [[] for _ in specs])
            for index, value in enumerate(row):
                bucket[index].append(value)

    if not grouped and not partials:
        # Every shard returned its mandatory single aggregate row, so this
        # only happens with zero shards; keep the shape regardless.
        partials[()] = [[] for _ in specs]

    rows = []
    for key, bucket in partials.items():
        row = []
        for index, spec in enumerate(specs):
            if spec is None:
                row.append(bucket[index][0] if bucket[index] else None)
            elif spec == udfs.HOM_SUM:
                row.append(hom.combine(bucket[index]))
            else:
                row.append(_COMBINERS[spec](bucket[index]))
        rows.append(tuple(row))
    columns = shard_results[0].columns if shard_results else []
    return ResultSet(columns, rows, len(rows))

"""Horizontal sharding: partition encrypted tables across backend instances.

The proxy stays the single point of trust (it alone holds keys); this
package partitions the *ciphertext* store across N backend instances and
merges scattered results without weakening the threat model:

* :mod:`repro.shard.router` -- DET-hash or OPE-range placement of rows by
  the shard-key ciphertext (placement only; reads never depend on it).
* :mod:`repro.shard.merge` -- merge semantics: k-way ordered merge with
  post-merge OFFSET, homomorphic combination of Paillier partial sums
  (public key only -- the merge point cannot decrypt), COUNT/MIN/MAX
  recombination, broadcast classification for joins and HAVING.
* :mod:`repro.shard.backend` -- :class:`ShardedBackend`, a drop-in
  :class:`~repro.api.backends.BackendAdapter` the proxy drives unchanged.
"""

from repro.shard.backend import ShardedBackend, ShardedBackendError
from repro.shard.merge import HomCombiner, ShardMergeError
from repro.shard.router import ShardRouter, ShardRoutingError

__all__ = [
    "ShardedBackend",
    "ShardedBackendError",
    "HomCombiner",
    "ShardMergeError",
    "ShardRouter",
    "ShardRoutingError",
]

"""Horizontal sharding: one BackendAdapter fronting N backend instances.

:class:`ShardedBackend` satisfies the same protocol as
:class:`~repro.api.backends.InMemoryBackend`, so the proxy needs no special
casing for most statements -- it hands the adapter rewritten (encrypted)
ASTs and gets merged :class:`ResultSet`\\ s back.  Internally:

* DDL, index creation, UDF registration and transaction control broadcast
  to every shard (recorded for scratch replay).
* INSERT rows route to exactly one shard via the declared
  :class:`~repro.shard.router.ShardRouter` over the shard-key ciphertext.
* UPDATE/DELETE broadcast (each row lives on one shard, so the summed
  rowcounts match a single backend).
* SELECT scatters to every shard and merges at this layer (see
  :mod:`repro.shard.merge`): k-way heap merge for ordered rows with the
  OFFSET applied only post-merge, homomorphic recombination of
  ``CRYPTDB_HOM_SUM`` partials with no decrypt, COUNT/MIN/MAX recombined
  arithmetically.  Statements a faithful scatter cannot serve (joins,
  HAVING, DISTINCT aggregates, LIMIT without a total order) fall back to a
  **broadcast scratch**: gather every referenced table's rows into a fresh
  single-node engine (schemas replayed from the recorded DDL, so a LEFT
  JOIN whose right side lives entirely on other shards still null-extends
  from the schema template) and run the original statement there.

The scatter fan-out fires the ``pool.scatter`` fault site before spreading
work across threads; an injected :class:`ParallelUnavailable` degrades that
statement to serial per-shard execution, mirroring the crypto pool's
fallback semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro import faults
from repro.errors import ReproError
from repro.parallel import ParallelUnavailable, ThreadFanout
from repro.shard import merge as shard_merge
from repro.shard.merge import HomCombiner
from repro.shard.router import ShardRouter, ShardRoutingError
from repro.sql import ast_nodes as ast
from repro.sql.engine import Database
from repro.sql.executor import ResultSet
from repro.sql.parser import parse_sql


class ShardedBackendError(ReproError):
    """The sharded adapter was configured or driven inconsistently."""


def _fresh_counters() -> dict[str, int]:
    return {
        "scatter_selects": 0,
        "broadcast_selects": 0,
        "aggregate_merges": 0,
        "rows_merged": 0,
        "routed_inserts": 0,
        "broadcast_writes": 0,
        "scatter_fallbacks": 0,
    }


class _ShardTableView:
    """Broadcasting stand-in for ``backend.table(name)``.

    Index creation replays on every shard; size queries aggregate; anything
    else reads shard 0 (all shards share one schema, so per-shard metadata
    is identical).
    """

    def __init__(self, owner: "ShardedBackend", name: str):
        self._owner = owner
        self._name = name

    def create_index(self, column: str, ordered: bool = False) -> None:
        for shard in self._owner.backends:
            shard.table(self._name).create_index(column, ordered=ordered)

    def storage_bytes(self) -> int:
        return sum(s.table(self._name).storage_bytes() for s in self._owner.backends)

    def row_count(self) -> int:
        return sum(s.table(self._name).row_count() for s in self._owner.backends)

    def __getattr__(self, item: str):
        return getattr(self._owner.backends[0].table(self._name), item)


class ShardedBackend:
    """N-way horizontally sharded backend with scatter-gather execution."""

    is_sharded = True

    def __init__(
        self,
        shards: int = 2,
        base: str = "memory",
        mode: str = "det-hash",
        paths: Optional[list[str]] = None,
        threads: bool = True,
        shard_key: Optional[str] = None,
        allow_existing: bool = False,
    ):
        if shards < 1:
            raise ShardedBackendError(f"shard count must be >= 1, got {shards}")
        from repro.api.backends import create_backend  # avoid import cycle

        self.shard_count = shards
        self.base = base
        self.mode = mode
        #: Preferred logical shard-key column name (proxy hint); the proxy
        #: falls back to each table's first column when absent.
        self.shard_key = shard_key
        normalized = base.lower()
        self.backends = []
        for index in range(shards):
            if normalized in ("sqlite", "sqlite3"):
                path = paths[index] if paths else ":memory:"
                self.backends.append(
                    create_backend(base, path=path, allow_existing=allow_existing)
                )
            else:
                self.backends.append(create_backend(base))
        # sqlite3 connections are pinned to their creating thread, so only
        # in-memory engine shards may fan out across threads.
        threaded = threads and normalized not in ("sqlite", "sqlite3")
        self._fanout = ThreadFanout(max_workers=shards, threads=threaded)

        #: anon table name -> (anon shard-key column, router)
        self._routing: dict[str, tuple[str, ShardRouter]] = {}
        #: Recorded DDL for scratch replay and * column-order resolution.
        self._ddl: dict[str, ast.CreateTable] = {}
        self._ddl_order: list[str] = []
        self._scalar_udfs: list[tuple] = []
        self._aggregate_udfs: list[tuple] = []
        self._hom = HomCombiner()
        self.counters = _fresh_counters()

    # ------------------------------------------------------------------
    # proxy-facing configuration
    # ------------------------------------------------------------------
    def configure_crypto(self, public_key, packing=None) -> None:
        """Install the Paillier public key (and packing layout) for merges."""
        self._hom = HomCombiner(public_key, packing)

    def declare_routing(
        self, table: str, column: str, mode: Optional[str] = None
    ) -> None:
        """Declare ``table``'s (anonymized) shard-key column."""
        self._routing[table] = (
            column,
            ShardRouter(self.shard_count, mode=mode or self.mode),
        )

    def routing_catalog(self) -> dict[str, tuple[str, str]]:
        """``anon table -> (anon shard-key column, mode)`` for the catalog."""
        return {
            table: (column, router.mode)
            for table, (column, router) in self._routing.items()
        }

    def adopt_ddl(self, statement: ast.CreateTable) -> None:
        """Record a table's anonymised layout without executing any DDL.

        Catalog recovery re-registers the layouts of tables the shard files
        already contain, so broadcast-scratch plans (joins, LIMIT without an
        order, ...) can replay the schemas exactly as a fresh run would.
        """
        if statement.table not in self._ddl:
            self._ddl_order.append(statement.table)
        self._ddl[statement.table] = statement

    # ------------------------------------------------------------------
    # BackendAdapter protocol
    # ------------------------------------------------------------------
    def execute(self, statement) -> ResultSet:
        if isinstance(statement, str):
            statement = parse_sql(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            return self._execute_drop_table(statement)
        if isinstance(statement, (ast.Begin, ast.Commit, ast.Rollback)):
            return self._broadcast_serial(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, (ast.Update, ast.Delete)):
            return self._execute_write_broadcast(statement)
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        # CreateIndex and anything else: broadcast, report shard 0's view.
        return self._broadcast_serial(statement)

    def table(self, name: str) -> _ShardTableView:
        return _ShardTableView(self, name)

    def has_table(self, name: str) -> bool:
        return self.backends[0].has_table(name)

    def table_names(self) -> list[str]:
        return self.backends[0].table_names()

    def register_scalar_udf(
        self,
        name: str,
        func: Callable[..., Any],
        batch: Optional[Callable[..., list]] = None,
    ) -> None:
        self._scalar_udfs.append((name, func, batch))
        for shard in self.backends:
            shard.register_scalar_udf(name, func, batch=batch)

    def register_aggregate_udf(self, name, initial, step, finalize) -> None:
        self._aggregate_udfs.append((name, initial, step, finalize))
        for shard in self.backends:
            shard.register_aggregate_udf(name, initial, step, finalize)

    def storage_bytes(self) -> int:
        return sum(shard.storage_bytes() for shard in self.backends)

    @property
    def transactions(self):
        # Transaction control broadcasts, so every shard's state agrees;
        # shard 0 answers ``in_transaction`` for all of them.
        return self.backends[0].transactions

    def row_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for shard in self.backends:
            for name, count in shard.row_counts().items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def close(self) -> None:
        self._fanout.close()
        for shard in self.backends:
            close = getattr(shard, "close", None)
            if callable(close):
                close()

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The STATS-frame ``shard`` block."""
        payload: dict[str, Any] = {
            "shards": self.shard_count,
            "mode": self.mode,
            "rows_per_shard": [
                sum(shard.row_counts().values()) for shard in self.backends
            ],
        }
        payload.update(self.counters)
        return payload

    def reset_counters(self) -> None:
        self.counters = _fresh_counters()

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _execute_create_table(self, statement: ast.CreateTable) -> ResultSet:
        if statement.table not in self._ddl:
            self._ddl_order.append(statement.table)
        self._ddl[statement.table] = statement
        return self._broadcast_serial(statement)

    def _execute_drop_table(self, statement: ast.DropTable) -> ResultSet:
        self._ddl.pop(statement.table, None)
        if statement.table in self._ddl_order:
            self._ddl_order.remove(statement.table)
        self._routing.pop(statement.table, None)
        return self._broadcast_serial(statement)

    def _broadcast_serial(self, statement) -> ResultSet:
        result = None
        for shard in self.backends:
            result = shard.execute(statement)
        return result if result is not None else ResultSet([], [], 0)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _execute_insert(self, statement: ast.Insert) -> ResultSet:
        routing = self._routing.get(statement.table)
        key_index = None
        router = None
        if routing is not None:
            column, router = routing
            if column in statement.columns:
                key_index = statement.columns.index(column)
        buckets: dict[int, list[list[ast.Expression]]] = {}
        for row in statement.rows:
            if key_index is None or router is None:
                shard_index = 0
            else:
                expr = row[key_index]
                if isinstance(expr, ast.Literal):
                    shard_index = router.route(expr.value)
                else:
                    # Unbound expression (should not happen post-rewrite):
                    # hash its SQL text so placement stays deterministic.
                    shard_index = router.route(expr.to_sql())
            buckets.setdefault(shard_index, []).append(row)
        total = 0
        for shard_index, rows in sorted(buckets.items()):
            sub = ast.Insert(statement.table, statement.columns, rows)
            total += self.backends[shard_index].execute(sub).rowcount
        self.counters["routed_inserts"] += 1
        return ResultSet([], [], total)

    def _execute_write_broadcast(self, statement) -> ResultSet:
        self.counters["broadcast_writes"] += 1
        results = self._scatter(lambda index: self.backends[index].execute(statement))
        return ResultSet([], [], sum(result.rowcount for result in results))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _execute_select(self, statement: ast.Select) -> ResultSet:
        if statement.from_clause is None:
            # Table-less SELECT: scattering would multiply the row.
            return self.backends[0].execute(statement)
        if isinstance(statement.from_clause, ast.Join):
            return self._broadcast_select(statement)
        if shard_merge.is_aggregate_select(statement):
            return self._scatter_aggregate(statement)
        return self._scatter_rows(statement)

    def _scatter_rows(self, statement: ast.Select) -> ResultSet:
        plan = shard_merge.plan_row_scatter(statement, self._star_columns(statement))
        if plan is None:
            return self._broadcast_select(statement)
        self.counters["scatter_selects"] += 1
        results = self._scatter(
            lambda index: self.backends[index].execute(plan.per_shard)
        )
        merged = shard_merge.merge_row_results(plan, results)
        self.counters["rows_merged"] += len(merged.rows)
        return merged

    def _scatter_aggregate(self, statement: ast.Select) -> ResultSet:
        specs = self._aggregate_specs(statement)
        if specs is None:
            return self._broadcast_select(statement)
        self.counters["scatter_selects"] += 1
        self.counters["aggregate_merges"] += 1
        results = self._scatter(
            lambda index: self.backends[index].execute(statement)
        )
        return shard_merge.merge_aggregate_results(statement, specs, results, self._hom)

    def _aggregate_specs(self, statement: ast.Select) -> Optional[list[Optional[str]]]:
        """Column specs when this aggregate SELECT merges; None to broadcast."""
        if (
            statement.having is not None
            or statement.order_by
            or statement.limit is not None
            or statement.offset is not None
            or statement.distinct
        ):
            # HAVING filters partial groups; ORDER/LIMIT windows them.
            return None
        specs = shard_merge.classify_aggregate_items(statement)
        if specs is None:
            return None
        # Every non-aggregate item must be a GROUP BY key (or a constant):
        # a bare projected column -- including a rewriter-appended IV column
        # -- takes an arbitrary per-shard representative value, which would
        # split merged groups.
        group_names = {
            expr.name for expr in statement.group_by if isinstance(expr, ast.ColumnRef)
        }
        for item, spec in zip(statement.items, specs):
            if spec is not None:
                continue
            expr = item.expr
            if isinstance(expr, ast.Literal):
                continue
            if isinstance(expr, ast.ColumnRef) and expr.name in group_names:
                continue
            return None
        return specs

    def _star_columns(self, statement: ast.Select) -> Optional[list[str]]:
        clause = statement.from_clause
        if not isinstance(clause, ast.TableRef):
            return None
        ddl = self._ddl.get(clause.name)
        if ddl is None:
            return None
        return [column.name for column in ddl.columns]

    # ------------------------------------------------------------------
    # broadcast fallback: gather everything, run on a scratch engine
    # ------------------------------------------------------------------
    def _broadcast_select(self, statement: ast.Select) -> ResultSet:
        self.counters["broadcast_selects"] += 1
        scratch = Database()
        for name, func, batch in self._scalar_udfs:
            scratch.register_scalar_udf(name, func, batch=batch)
        for name, initial, step, finalize in self._aggregate_udfs:
            scratch.register_aggregate_udf(name, initial, step, finalize)
        # Replay the *full* recorded DDL unconditionally -- the executor's
        # schema-derived null-row template must exist even for a table whose
        # rows all live on shards that returned nothing (a LEFT JOIN right
        # side entirely on another shard still null-extends correctly).
        for table in self._ddl_order:
            scratch.execute(self._ddl[table])
        needed = {
            ref.name
            for ref in shard_merge.referenced_tables(statement.from_clause)
        }
        for table in self._ddl_order:
            if table not in needed:
                continue
            ddl = self._ddl[table]
            columns = [column.name for column in ddl.columns]
            gather = ast.Select(
                [ast.SelectItem(ast.ColumnRef(name)) for name in columns],
                ast.TableRef(table),
            )
            shard_rows = self._scatter(
                lambda index, g=gather: self.backends[index].execute(g).rows
            )
            rows = [row for rows in shard_rows for row in rows]
            if rows:
                scratch.execute(
                    ast.Insert(
                        table,
                        columns,
                        [[ast.Literal(value) for value in row] for row in rows],
                    )
                )
        return scratch.execute(statement)

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------
    def _scatter(self, fn: Callable[[int], Any]) -> list:
        count = self.shard_count
        use_threads = self._fanout.threads
        if faults.INJECTOR is not None:
            try:
                faults.INJECTOR.fire("pool.scatter", target=self, items=count)
            except ParallelUnavailable:
                # Injected scatter failure: degrade this statement to the
                # serial path instead of failing it.
                self.counters["scatter_fallbacks"] += 1
                use_threads = False
        if use_threads:
            return self._fanout.map(fn, count)
        return self._fanout.serial_map(fn, count)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedBackend(shards={self.shard_count}, base={self.base!r}, "
            f"mode={self.mode!r})"
        )


__all__ = ["ShardedBackend", "ShardedBackendError", "ShardRoutingError"]

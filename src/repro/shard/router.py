"""Shard routing: which backend instance stores a given encrypted row.

Two routing modes, both operating on the *ciphertext* the proxy hands the
backend (the backend never sees plaintext):

``det-hash``
    A stable SHA-256 hash of the shard-key cell's DET ciphertext, modulo the
    shard count.  DET encryption is deterministic, so equal plaintexts land
    on the same shard -- equality-heavy workloads co-locate their groups.

``ope-range``
    Contiguous ranges over the OPE ciphertext domain.  OPE preserves order,
    so each shard owns one contiguous slice of the plaintext order -- the
    classic range-partitioning layout.

Routing is **placement only**: every read scatters to all shards and is
merged at the proxy, so correctness never depends on routing stability.  A
later onion adjustment (e.g. JOIN-ADJ re-keying rewrites DET cells in
place) may make the stored bytes of old rows disagree with what a fresh
hash of them would say -- which is fine, because nothing ever re-derives a
row's location from its cells after insert.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any

from repro.errors import ReproError

#: The OPE scheme's default ciphertext range (crypto/ope.py maps a 32-bit
#: plaintext domain into 64-bit ciphertexts); ``ope-range`` boundaries split
#: this domain into equal-width slices unless told otherwise.
DEFAULT_OPE_DOMAIN_BITS = 64

ROUTING_MODES = ("det-hash", "ope-range")


class ShardRoutingError(ReproError):
    """A routing declaration or lookup was invalid."""


def _canonical_bytes(value: Any) -> bytes:
    """A stable byte encoding of a cell for hashing, across storage types."""
    if value is None:
        return b"\x00null"
    if isinstance(value, bytes):
        return b"b" + value
    if isinstance(value, bool):
        return b"i" + str(int(value)).encode("ascii")
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    return b"r" + repr(value).encode("utf-8")


class ShardRouter:
    """Maps one shard-key cell value to a shard index in ``[0, shards)``."""

    def __init__(
        self,
        shards: int,
        mode: str = "det-hash",
        domain_bits: int = DEFAULT_OPE_DOMAIN_BITS,
    ):
        if shards < 1:
            raise ShardRoutingError(f"shard count must be >= 1, got {shards}")
        if mode not in ROUTING_MODES:
            raise ShardRoutingError(
                f"unknown routing mode {mode!r} (one of {ROUTING_MODES})"
            )
        self.shards = shards
        self.mode = mode
        self.domain_bits = domain_bits
        domain = 1 << domain_bits
        #: ``ope-range`` split points: shard i owns [bounds[i-1], bounds[i]).
        self._bounds = [
            (index + 1) * domain // shards for index in range(shards - 1)
        ]

    def route(self, cell: Any) -> int:
        """The shard index for one shard-key cell (NULL keys pin to shard 0)."""
        if cell is None:
            return 0
        if self.mode == "ope-range":
            if isinstance(cell, bool) or not isinstance(cell, int):
                # A non-integer key under range routing (e.g. a plaintext
                # string column): hashing keeps placement deterministic.
                return self._hash(cell)
            if cell < 0:
                return 0
            return bisect_right(self._bounds, cell)
        return self._hash(cell)

    def _hash(self, cell: Any) -> int:
        digest = hashlib.sha256(_canonical_bytes(cell)).digest()
        return int.from_bytes(digest[:8], "big") % self.shards

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ShardRouter(shards={self.shards}, mode={self.mode!r})"

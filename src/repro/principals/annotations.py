"""Parser for CryptDB's schema annotation language (§4.1).

Developers annotate a SQL schema with three constructs:

* ``PRINCTYPE name [EXTERNAL]`` declares a principal type; external
  principals authenticate with a password.
* ``column type ENC FOR (refcol princtype)`` marks a column as encrypted for
  the principal named (per row) by ``refcol``.
* ``(subject subjtype) SPEAKS FOR (object objtype) [IF predicate]`` declares
  a delegation rule: every row of the annotated table grants the subject
  principal access to the object principal's key, optionally guarded by a
  predicate over the row (or a registered SQL function such as HotCRP's
  ``NoConflict``).

The parser accepts both ``ENC FOR`` and ``ENC_FOR`` spellings (same for
``SPEAKS FOR``), returns the clean SQL schema with annotations stripped, and
counts annotations the way Figure 8 does (each annotation invocation plus
each SQL predicate counts as one; unique annotations are de-duplicated by
their structure).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PolicyError


@dataclass(frozen=True)
class PrincipalType:
    """A declared principal type."""

    name: str
    external: bool = False


@dataclass(frozen=True)
class EncForAnnotation:
    """``column ENC FOR (refcol princtype)`` on one table."""

    table: str
    column: str
    ref_column: str
    principal_type: str


@dataclass(frozen=True)
class SpeaksForAnnotation:
    """``(subject subjtype) SPEAKS FOR (object objtype) [IF predicate]``."""

    table: str
    subject: str          # column name, "Table.column", or a quoted constant
    subject_type: str
    object_column: str
    object_type: str
    predicate: Optional[str] = None

    @property
    def subject_is_external_reference(self) -> bool:
        return "." in self.subject

    @property
    def subject_is_constant(self) -> bool:
        return self.subject.startswith("'") and self.subject.endswith("'")


@dataclass
class AnnotatedSchema:
    """The outcome of parsing an annotated schema."""

    principal_types: dict[str, PrincipalType] = field(default_factory=dict)
    enc_for: list[EncForAnnotation] = field(default_factory=list)
    speaks_for: list[SpeaksForAnnotation] = field(default_factory=list)
    create_statements: list[str] = field(default_factory=list)
    annotation_count: int = 0
    unique_annotation_count: int = 0

    def enc_for_on(self, table: str) -> list[EncForAnnotation]:
        return [a for a in self.enc_for if a.table == table]

    def speaks_for_on(self, table: str) -> list[SpeaksForAnnotation]:
        return [a for a in self.speaks_for if a.table == table]

    def external_types(self) -> list[str]:
        return [t.name for t in self.principal_types.values() if t.external]

    def sensitive_fields(self) -> list[tuple[str, str]]:
        """All (table, column) pairs protected by ENC FOR annotations."""
        return [(a.table, a.column) for a in self.enc_for]


_PRINCTYPE_RE = re.compile(r"PRINCTYPE\s+(.+?);", re.IGNORECASE | re.DOTALL)
_ENC_FOR_RE = re.compile(
    r"ENC[\s_]FOR\s*\(\s*(\w+)\s+(\w+)\s*\)", re.IGNORECASE
)
_SPEAKS_FOR_RE = re.compile(
    r"\(\s*([\w\.']+)\s+(\w+)\s*\)\s*SPEAKS[\s_]FOR\s*\(\s*(\w+)\s+(\w+)\s*\)"
    r"(?:\s+IF\s+(\w+\s*\([^\)]*\)|[^,\)]+))?",
    re.IGNORECASE,
)
_CREATE_TABLE_RE = re.compile(
    r"CREATE\s+TABLE\s+(\w+)\s*\((.*?)\)\s*;", re.IGNORECASE | re.DOTALL
)


def parse_annotated_schema(text: str) -> AnnotatedSchema:
    """Parse an annotated schema into clean SQL plus annotation metadata."""
    schema = AnnotatedSchema()
    unique_signatures: set[tuple] = set()

    # PRINCTYPE declarations.
    for match in _PRINCTYPE_RE.finditer(text):
        body = match.group(1).strip()
        external = bool(re.search(r"\bEXTERNAL\b", body, re.IGNORECASE))
        body = re.sub(r"\bEXTERNAL\b", "", body, flags=re.IGNORECASE)
        names = [n.strip() for n in body.split(",") if n.strip()]
        if not names:
            raise PolicyError("PRINCTYPE declaration without principal names")
        for name in names:
            schema.principal_types[name] = PrincipalType(name, external)
        schema.annotation_count += 1
        unique_signatures.add(("PRINCTYPE", external, tuple(sorted(names))))

    # CREATE TABLE bodies.
    for match in _CREATE_TABLE_RE.finditer(text):
        table = match.group(1)
        body = match.group(2)
        clean_columns: list[str] = []
        for raw_definition in _split_definitions(body):
            definition = raw_definition.strip()
            if not definition:
                continue
            speaks = _SPEAKS_FOR_RE.search(definition)
            if speaks is not None:
                predicate = speaks.group(5).strip() if speaks.group(5) else None
                annotation = SpeaksForAnnotation(
                    table=table,
                    subject=speaks.group(1),
                    subject_type=speaks.group(2),
                    object_column=speaks.group(3),
                    object_type=speaks.group(4),
                    predicate=predicate,
                )
                schema.speaks_for.append(annotation)
                schema.annotation_count += 1
                unique_signatures.add(
                    ("SPEAKS_FOR", annotation.subject_type, annotation.object_type)
                )
                if predicate:
                    schema.annotation_count += 1
                    unique_signatures.add(("PREDICATE", predicate.split("(")[0].strip()))
                continue
            enc = _ENC_FOR_RE.search(definition)
            if enc is not None:
                column_name = definition.split()[0]
                annotation = EncForAnnotation(
                    table=table,
                    column=column_name,
                    ref_column=enc.group(1),
                    principal_type=enc.group(2),
                )
                schema.enc_for.append(annotation)
                schema.annotation_count += 1
                unique_signatures.add(("ENC_FOR", table, enc.group(2)))
                definition = _ENC_FOR_RE.sub("", definition).strip().rstrip(",")
            clean_columns.append(definition)
        if not clean_columns:
            raise PolicyError(f"table {table} has no columns after removing annotations")
        schema.create_statements.append(
            f"CREATE TABLE {table} ({', '.join(clean_columns)})"
        )

    schema.unique_annotation_count = len(unique_signatures)
    _validate(schema)
    return schema


def _split_definitions(body: str) -> list[str]:
    """Split a CREATE TABLE body on commas, respecting nested parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def _validate(schema: AnnotatedSchema) -> None:
    declared = set(schema.principal_types)
    for annotation in schema.enc_for:
        if annotation.principal_type not in declared:
            raise PolicyError(
                f"ENC FOR references undeclared principal type {annotation.principal_type}"
            )
    for annotation in schema.speaks_for:
        for ptype in (annotation.subject_type, annotation.object_type):
            if ptype not in declared:
                raise PolicyError(
                    f"SPEAKS FOR references undeclared principal type {ptype}"
                )

"""The multi-principal CryptDB proxy (threat 2, §4).

``MultiPrincipalProxy`` wraps the single-principal proxy: columns without
annotations are protected exactly as before (onions under the master key),
while columns annotated ``ENC FOR`` are encrypted under keys chained to the
principals named by the annotation -- and ultimately to user passwords -- so
that a complete compromise of the application, proxy and DBMS reveals only
the data of users logged in at the time.

The proxy:

* parses the annotated schema (PRINCTYPE / ENC FOR / SPEAKS FOR);
* intercepts INSERTs to maintain delegations (SPEAKS FOR rows) and to encrypt
  annotated fields under the correct principal's key;
* intercepts SELECTs to decrypt annotated fields, which succeeds only when a
  key chain from a logged-in user reaches the row's principal;
* intercepts ``cryptdb_active`` INSERT/DELETE as the login/logout signal the
  paper describes (applications can also call :meth:`login` / :meth:`logout`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from repro.core.proxy import CryptDBProxy
from repro.crypto.keys import MasterKey
from repro.crypto.prf import derive_key
from repro.errors import AccessDeniedError, PolicyError, UnsupportedQueryError
from repro.principals import pubkey
from repro.principals.annotations import (
    AnnotatedSchema,
    EncForAnnotation,
    SpeaksForAnnotation,
    parse_annotated_schema,
)
from repro.principals.keychain import KeyChain, Principal
from repro.sql import ast_nodes as ast
from repro.sql.engine import Database
from repro.sql.executor import ResultSet
from repro.sql.expressions import RowContext, evaluate, is_truthy
from repro.sql.functions import FunctionRegistry
from repro.sql.parser import parse_expression, parse_sql

ACTIVE_TABLE = "cryptdb_active"


class MultiPrincipalProxy:
    """CryptDB proxy enforcing developer annotations via key chaining."""

    def __init__(
        self,
        db: Optional[Database] = None,
        master_key: Optional[MasterKey] = None,
        paillier_bits: int = 1024,
    ):
        self.db = db if db is not None else Database()
        self.inner = CryptDBProxy(self.db, master_key=master_key, paillier_bits=paillier_bits)
        self.keychain = KeyChain(self.db)
        self.schema: Optional[AnnotatedSchema] = None
        self.logged_in: dict[str, Principal] = {}
        self._predicates: dict[str, Callable[..., bool]] = {}
        self._predicate_functions = FunctionRegistry()
        self.lines_of_code_changed = 0   # applications report their login/logout glue here

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def load_schema(self, annotated_sql: str) -> AnnotatedSchema:
        """Parse an annotated schema and create its tables on the inner proxy."""
        schema = parse_annotated_schema(annotated_sql)
        self.schema = schema
        for create_sql in schema.create_statements:
            statement = parse_sql(create_sql)
            assert isinstance(statement, ast.CreateTable)
            enc_columns = {a.column for a in schema.enc_for_on(statement.table)}
            self.inner.create_table(
                statement,
                plaintext_columns=enc_columns,
                sensitive_columns=enc_columns,
            )
        return schema

    def register_predicate(self, name: str, func: Callable[..., bool]) -> None:
        """Register a SQL-function predicate used in SPEAKS FOR (e.g. NoConflict)."""
        self._predicates[name.upper()] = func

    @property
    def external_type(self) -> str:
        if self.schema is None or not self.schema.external_types():
            raise PolicyError("no EXTERNAL principal type declared")
        return self.schema.external_types()[0]

    # ------------------------------------------------------------------
    # login / logout
    # ------------------------------------------------------------------
    def create_user(self, username: str, password: str) -> Principal:
        """Register an external principal (a physical user) with a password."""
        principal = self.keychain.register_external(self.external_type, username, password)
        return principal

    def login(self, username: str, password: str) -> Principal:
        """Provide a user's password to the proxy (the §4.2 login hook)."""
        if not self.keychain.principal_exists(Principal(self.external_type, username)):
            principal = self.create_user(username, password)
        else:
            principal = self.keychain.login(self.external_type, username, password)
        self.logged_in[username] = principal
        return principal

    def logout(self, username: str) -> None:
        """Forget the user's keys (and everything only reachable through them)."""
        self.logged_in.pop(username, None)
        self.keychain.forget_session_keys(keep=set(self.logged_in.values()))

    def end_session(self) -> None:
        """Drop every in-memory key except those of logged-in users.

        Models the steady state of a long-running proxy: only the chains
        rooted at logged-in users' passwords are available to an attacker.
        """
        self.keychain.forget_session_keys(keep=set(self.logged_in.values()))

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def execute(self, sql_or_statement: Union[str, ast.Statement]) -> ResultSet:
        statement = (
            parse_sql(sql_or_statement)
            if isinstance(sql_or_statement, str)
            else sql_or_statement
        )
        if isinstance(statement, ast.Insert) and statement.table == ACTIVE_TABLE:
            return self._handle_active_insert(statement)
        if isinstance(statement, ast.Delete) and statement.table == ACTIVE_TABLE:
            return self._handle_active_delete(statement)
        if self.schema is None:
            return self.inner.execute(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        return self.inner.execute(statement)

    # -- cryptdb_active ------------------------------------------------------
    def _handle_active_insert(self, statement: ast.Insert) -> ResultSet:
        columns = statement.columns or ["username", "password"]
        for row in statement.rows:
            values = {c: v.value for c, v in zip(columns, row) if isinstance(v, ast.Literal)}
            self.login(str(values["username"]), str(values["password"]))
        self.lines_of_code_changed += 1
        return ResultSet([], [], len(statement.rows))

    def _handle_active_delete(self, statement: ast.Delete) -> ResultSet:
        # DELETE FROM cryptdb_active WHERE username = '...'
        username = None
        if isinstance(statement.where, ast.BinaryOp) and statement.where.op == "=":
            right = statement.where.right
            if isinstance(right, ast.Literal):
                username = str(right.value)
        if username is None:
            raise PolicyError("logout requires DELETE ... WHERE username = '<name>'")
        self.logout(username)
        return ResultSet([], [], 1)

    # -- INSERT ---------------------------------------------------------------
    def _execute_insert(self, statement: ast.Insert) -> ResultSet:
        assert self.schema is not None
        enc_annotations = self.schema.enc_for_on(statement.table)
        speaks = self.schema.speaks_for_on(statement.table)
        if not enc_annotations and not speaks:
            return self.inner.execute(statement)

        table_meta = self.inner.schema.table(statement.table)
        columns = statement.columns or table_meta.column_names()
        new_rows = []
        for row_exprs in statement.rows:
            values = {}
            for name, expr in zip(columns, row_exprs):
                if not isinstance(expr, ast.Literal):
                    raise UnsupportedQueryError("multi-principal INSERT values must be constants")
                values[name] = expr.value
            self._apply_speaks_for(speaks, values)
            encrypted = dict(values)
            for annotation in enc_annotations:
                if annotation.column in encrypted and encrypted[annotation.column] is not None:
                    encrypted[annotation.column] = self._encrypt_field(
                        annotation, encrypted[annotation.column], values
                    )
            new_rows.append([ast.Literal(encrypted[c]) for c in columns])
        return self.inner.execute(ast.Insert(statement.table, list(columns), new_rows))

    def _apply_speaks_for(self, rules: list[SpeaksForAnnotation], row: dict[str, Any]) -> None:
        for rule in rules:
            target = Principal.of(rule.object_type, row[rule.object_column])
            if not self.keychain.principal_exists(target):
                self.keychain.create_principal(target)
            for subject_value in self._subject_values(rule, row):
                if not self._predicate_holds(rule, row, subject_value):
                    continue
                holder = Principal.of(rule.subject_type, subject_value)
                if not self.keychain.principal_exists(holder):
                    self.keychain.create_principal(holder)
                self.keychain.delegate(holder, target)

    def _subject_values(self, rule: SpeaksForAnnotation, row: dict[str, Any]) -> list[Any]:
        if rule.subject_is_constant:
            return [rule.subject.strip("'")]
        if rule.subject_is_external_reference:
            table, column = rule.subject.split(".", 1)
            result = self.inner.execute(f"SELECT {column} FROM {table}")
            return [r[0] for r in result.rows if r[0] is not None]
        if rule.subject not in row:
            raise PolicyError(f"SPEAKS FOR subject column {rule.subject} missing from INSERT")
        return [row[rule.subject]]

    def _predicate_holds(
        self, rule: SpeaksForAnnotation, row: dict[str, Any], subject_value: Any
    ) -> bool:
        if rule.predicate is None:
            return True
        predicate = rule.predicate.strip()
        name = predicate.split("(")[0].strip().upper()
        if "(" in predicate and name in self._predicates:
            arg_names = [
                a.strip() for a in predicate[predicate.index("(") + 1 : predicate.rindex(")")].split(",")
            ]
            subject_column = rule.subject.split(".")[-1]
            kwargs = {}
            for arg in arg_names:
                if arg in row:
                    kwargs[arg] = row[arg]
                elif arg == subject_column:
                    kwargs[arg] = subject_value
                else:
                    kwargs[arg] = None
            return bool(self._predicates[name](**kwargs))
        # Plain SQL expression over the inserted row, e.g. "optionid=20".
        expr = parse_expression(predicate)
        context = RowContext({(None, k): v for k, v in row.items()})
        return is_truthy(evaluate(expr, context, self._predicate_functions))

    # -- field encryption -------------------------------------------------------
    def _field_key(self, annotation: EncForAnnotation, principal_key: bytes) -> bytes:
        return derive_key(principal_key, "enc-for", annotation.table, annotation.column, length=16)

    @staticmethod
    def _encode(value: Any) -> bytes:
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int):
            return b"i" + value.to_bytes(16, "big", signed=True)
        if isinstance(value, bytes):
            return b"b" + value
        return b"s" + str(value).encode("utf-8")

    @staticmethod
    def _decode(data: bytes) -> Any:
        marker, payload = data[:1], data[1:]
        if marker == b"i":
            return int.from_bytes(payload, "big", signed=True)
        if marker == b"b":
            return payload
        return payload.decode("utf-8")

    def _encrypt_field(
        self, annotation: EncForAnnotation, value: Any, row: dict[str, Any]
    ) -> bytes:
        if annotation.ref_column not in row:
            raise PolicyError(
                f"INSERT into {annotation.table} must provide {annotation.ref_column} "
                f"to encrypt {annotation.column}"
            )
        principal = Principal.of(annotation.principal_type, row[annotation.ref_column])
        if not self.keychain.principal_exists(principal):
            self.keychain.create_principal(principal)
        principal_key = self.keychain.get_key(principal)
        return pubkey.symmetric_wrap(self._field_key(annotation, principal_key), self._encode(value))

    def _decrypt_field(self, annotation: EncForAnnotation, ciphertext: Any, ref_value: Any) -> Any:
        if ciphertext is None:
            return None
        principal = Principal.of(annotation.principal_type, ref_value)
        principal_key = self.keychain.get_key(principal)
        return self._decode(
            pubkey.symmetric_unwrap(self._field_key(annotation, principal_key), ciphertext)
        )

    # -- SELECT ---------------------------------------------------------------
    def _execute_select(self, statement: ast.Select) -> ResultSet:
        assert self.schema is not None
        if not isinstance(statement.from_clause, ast.TableRef):
            return self.inner.execute(statement)
        table = statement.from_clause.name
        annotations = {a.column: a for a in self.schema.enc_for_on(table)}
        if not annotations:
            return self.inner.execute(statement)

        table_meta = self.inner.schema.table(table)
        # Expand the projection and note which outputs are ENC FOR columns.
        items: list[ast.SelectItem] = []
        labels: list[str] = []
        encrypted_outputs: dict[int, EncForAnnotation] = {}
        for item in statement.items:
            if isinstance(item.expr, ast.Star):
                for name in table_meta.column_names():
                    items.append(ast.SelectItem(ast.ColumnRef(name), None))
                    labels.append(name)
                    if name in annotations:
                        encrypted_outputs[len(items) - 1] = annotations[name]
                continue
            items.append(item)
            label = item.alias or (
                item.expr.name if isinstance(item.expr, ast.ColumnRef) else item.expr.to_sql()
            )
            labels.append(label)
            if isinstance(item.expr, ast.ColumnRef) and item.expr.name in annotations:
                encrypted_outputs[len(items) - 1] = annotations[item.expr.name]

        # Append the principal reference columns needed for decryption.
        ref_positions: dict[str, int] = {}
        for annotation in encrypted_outputs.values():
            if annotation.ref_column not in ref_positions:
                items.append(ast.SelectItem(ast.ColumnRef(annotation.ref_column), None))
                ref_positions[annotation.ref_column] = len(items) - 1

        rewritten = ast.Select(
            items=items,
            from_clause=statement.from_clause,
            where=statement.where,
            group_by=statement.group_by,
            having=statement.having,
            order_by=statement.order_by,
            limit=statement.limit,
            offset=statement.offset,
            distinct=statement.distinct,
        )
        raw = self.inner.execute(rewritten)

        rows = []
        for row in raw.rows:
            out = list(row[: len(labels)])
            for index, annotation in encrypted_outputs.items():
                ref_value = row[ref_positions[annotation.ref_column]]
                out[index] = self._decrypt_field(annotation, row[index], ref_value)
            rows.append(tuple(out))
        return ResultSet(labels, rows, len(rows))

    # -- UPDATE / DELETE --------------------------------------------------------
    def _execute_update(self, statement: ast.Update) -> ResultSet:
        assert self.schema is not None
        annotations = {a.column: a for a in self.schema.enc_for_on(statement.table)}
        touched = [name for name, _ in statement.assignments if name in annotations]
        if touched:
            raise UnsupportedQueryError(
                "updating ENC FOR columns requires re-encryption via SELECT + INSERT "
                f"(columns: {touched})"
            )
        return self.inner.execute(statement)

    def _execute_delete(self, statement: ast.Delete) -> ResultSet:
        assert self.schema is not None
        rules = self.schema.speaks_for_on(statement.table)
        if rules:
            # Deleting a delegation row revokes the corresponding access (§4.2).
            columns = {rule.subject for rule in rules if not rule.subject_is_external_reference}
            columns |= {rule.object_column for rule in rules}
            selectable = ", ".join(sorted(columns))
            select = ast.Select(
                items=[ast.SelectItem(ast.ColumnRef(c), None) for c in sorted(columns)],
                from_clause=ast.TableRef(statement.table),
                where=statement.where,
            )
            doomed = self.inner.execute(select)
            for row in doomed.as_dicts():
                for rule in rules:
                    if rule.subject_is_external_reference or rule.subject_is_constant:
                        continue
                    holder = Principal.of(rule.subject_type, row[rule.subject])
                    target = Principal.of(rule.object_type, row[rule.object_column])
                    self.keychain.revoke(holder, target)
        return self.inner.execute(statement)

    # ------------------------------------------------------------------
    # security evaluation helpers (§8.3)
    # ------------------------------------------------------------------
    def compromise_report(self, table: str, column: str) -> dict[str, int]:
        """Simulate an attacker with full server + proxy memory access.

        Returns how many rows of ``table.column`` the attacker can decrypt
        using only the currently active key chains (i.e. logged-in users),
        versus the total number of rows.
        """
        assert self.schema is not None
        annotations = {a.column: a for a in self.schema.enc_for_on(table)}
        if column not in annotations:
            raise PolicyError(f"{table}.{column} carries no ENC FOR annotation")
        annotation = annotations[column]
        raw = self.inner.execute(
            ast.Select(
                items=[
                    ast.SelectItem(ast.ColumnRef(column), None),
                    ast.SelectItem(ast.ColumnRef(annotation.ref_column), None),
                ],
                from_clause=ast.TableRef(table),
            )
        )
        readable = 0
        total = 0
        for ciphertext, ref_value in raw.rows:
            if ciphertext is None:
                continue
            total += 1
            try:
                self._decrypt_field(annotation, ciphertext, ref_value)
                readable += 1
            except AccessDeniedError:
                continue
        return {"readable": readable, "total": total}

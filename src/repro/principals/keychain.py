"""Key chaining: principals, delegations, and the three key tables (§4.2).

Every principal (an *instance* of a principal type, e.g. ``user 2`` or
``msg 5``) owns a random symmetric key and an EC key pair.  Access control is
a chain of wrapped keys:

* ``access_keys`` -- if B speaks for A, A's key wrapped under B's symmetric
  key (or under B's public key when B is offline).
* ``public_keys`` -- each principal's public key, plus its private key
  wrapped under its own symmetric key.
* ``external_keys`` -- for external principals (physical users), the
  principal key wrapped under a key derived from the user's password.

All three tables live *in the DBMS* (they contain only ciphertext), so a
server compromise reveals nothing about principals whose chains end in the
password of a logged-out user.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.crypto.prf import derive_key
from repro.crypto.primitives import random_bytes
from repro.errors import AccessDeniedError
from repro.principals import pubkey
from repro.sql.engine import Database
from repro.sql.types import BLOB, INT, VARCHAR, ColumnDef

ACCESS_KEYS_TABLE = "cryptdb_access_keys"
PUBLIC_KEYS_TABLE = "cryptdb_public_keys"
EXTERNAL_KEYS_TABLE = "cryptdb_external_keys"

_WRAP_SYMMETRIC = 0
_WRAP_PUBLIC = 1


@dataclass(frozen=True)
class Principal:
    """An instance of a principal type, e.g. ('user', '2') or ('msg', '5')."""

    ptype: str
    name: str

    @classmethod
    def of(cls, ptype: str, value: object) -> "Principal":
        return cls(ptype, str(value))

    def __str__(self) -> str:
        return f"{self.ptype}={self.name}"


class KeyChain:
    """Manages principal keys and the wrapped-key tables stored in the DBMS."""

    def __init__(self, db: Database):
        self.db = db
        self._active_keys: dict[Principal, bytes] = {}
        self._ensure_tables()

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def _ensure_tables(self) -> None:
        if not self.db.has_table(ACCESS_KEYS_TABLE):
            self.db.create_table(
                ACCESS_KEYS_TABLE,
                [
                    ColumnDef("holder_type", VARCHAR(64)),
                    ColumnDef("holder_name", VARCHAR(255)),
                    ColumnDef("target_type", VARCHAR(64)),
                    ColumnDef("target_name", VARCHAR(255)),
                    ColumnDef("wrap_mode", INT()),
                    ColumnDef("wrapped_key", BLOB()),
                ],
            )
        if not self.db.has_table(PUBLIC_KEYS_TABLE):
            self.db.create_table(
                PUBLIC_KEYS_TABLE,
                [
                    ColumnDef("principal_type", VARCHAR(64)),
                    ColumnDef("principal_name", VARCHAR(255)),
                    ColumnDef("public_key", BLOB()),
                    ColumnDef("wrapped_private_key", BLOB()),
                ],
            )
        if not self.db.has_table(EXTERNAL_KEYS_TABLE):
            self.db.create_table(
                EXTERNAL_KEYS_TABLE,
                [
                    ColumnDef("username", VARCHAR(255)),
                    ColumnDef("principal_type", VARCHAR(64)),
                    ColumnDef("wrapped_key", BLOB()),
                ],
            )

    def _access_rows(self) -> list[dict]:
        return [row for _, row in self.db.table(ACCESS_KEYS_TABLE).scan()]

    def _public_row(self, principal: Principal) -> Optional[dict]:
        for _, row in self.db.table(PUBLIC_KEYS_TABLE).scan():
            if (
                row["principal_type"] == principal.ptype
                and row["principal_name"] == principal.name
            ):
                return row
        return None

    # ------------------------------------------------------------------
    # principal lifecycle
    # ------------------------------------------------------------------
    def create_principal(self, principal: Principal) -> bytes:
        """Create a principal: random symmetric key + EC key pair.

        The symmetric key is held in proxy memory (it is an "active" key until
        delegations anchor it); the key pair is persisted with the private key
        wrapped under the symmetric key.
        """
        if principal in self._active_keys:
            return self._active_keys[principal]
        symmetric = random_bytes(16)
        pair = pubkey.KeyPair.generate()
        self.db.insert_row(
            PUBLIC_KEYS_TABLE,
            {
                "principal_type": principal.ptype,
                "principal_name": principal.name,
                "public_key": pair.public,
                "wrapped_private_key": pubkey.symmetric_wrap(
                    symmetric, pair.private.to_bytes(32, "big")
                ),
            },
        )
        self._active_keys[principal] = symmetric
        return symmetric

    def principal_exists(self, principal: Principal) -> bool:
        return self._public_row(principal) is not None

    # ------------------------------------------------------------------
    # external principals (login / logout)
    # ------------------------------------------------------------------
    @staticmethod
    def _password_key(username: str, password: str) -> bytes:
        return derive_key(password.encode("utf-8"), "external-key", username, length=16)

    def register_external(self, ptype: str, username: str, password: str) -> Principal:
        """Create an external principal whose key is wrapped under the password."""
        principal = Principal(ptype, username)
        symmetric = self.create_principal(principal)
        self.db.insert_row(
            EXTERNAL_KEYS_TABLE,
            {
                "username": username,
                "principal_type": ptype,
                "wrapped_key": pubkey.symmetric_wrap(
                    self._password_key(username, password), symmetric
                ),
            },
        )
        return principal

    def login(self, ptype: str, username: str, password: str) -> Principal:
        """Unlock an external principal's key with the user's password."""
        principal = Principal(ptype, username)
        for _, row in self.db.table(EXTERNAL_KEYS_TABLE).scan():
            if row["username"] == username and row["principal_type"] == ptype:
                symmetric = pubkey.symmetric_unwrap(
                    self._password_key(username, password), row["wrapped_key"]
                )
                self._active_keys[principal] = symmetric
                return principal
        raise AccessDeniedError(f"unknown external principal {username}")

    def logout(self, ptype: str, username: str) -> None:
        """Forget the user's key and everything derived from it.

        The paper keeps derived keys only as an optimisation; dropping the
        whole in-memory set except other logged-in users is the conservative
        equivalent.
        """
        self._active_keys.pop(Principal(ptype, username), None)

    def forget_session_keys(self, keep: Optional[set[Principal]] = None) -> None:
        """Drop in-memory keys except those of the given (logged-in) principals.

        This models the steady state in which only logged-in users' chains are
        available to an attacker who compromises the proxy (threat 2).
        """
        keep = keep or set()
        self._active_keys = {
            principal: key for principal, key in self._active_keys.items() if principal in keep
        }

    def active_principals(self) -> list[Principal]:
        return list(self._active_keys)

    # ------------------------------------------------------------------
    # delegation (SPEAKS FOR)
    # ------------------------------------------------------------------
    def delegate(self, holder: Principal, target: Principal) -> None:
        """Record that ``holder`` speaks for ``target`` (holder can get target's key).

        Requires the target's key to be obtainable right now (§4.2: the proxy
        must have access to the key being delegated); the holder's key may be
        offline, in which case the wrap uses the holder's public key.
        """
        target_key = self.get_key(target)
        holder_key = self._try_get_key(holder)
        if holder_key is not None:
            wrapped = pubkey.symmetric_wrap(holder_key, target_key)
            mode = _WRAP_SYMMETRIC
        else:
            holder_row = self._public_row(holder)
            if holder_row is None:
                self.create_principal(holder)
                holder_row = self._public_row(holder)
            wrapped = pubkey.encrypt(holder_row["public_key"], target_key)
            mode = _WRAP_PUBLIC
        self.db.insert_row(
            ACCESS_KEYS_TABLE,
            {
                "holder_type": holder.ptype,
                "holder_name": holder.name,
                "target_type": target.ptype,
                "target_name": target.name,
                "wrap_mode": mode,
                "wrapped_key": wrapped,
            },
        )

    def revoke(self, holder: Principal, target: Principal) -> int:
        """Remove a delegation (SPEAKS FOR row deleted); returns rows removed."""
        table = self.db.table(ACCESS_KEYS_TABLE)
        removed = 0
        for row_id, row in list(table.scan()):
            if (
                row["holder_type"] == holder.ptype
                and row["holder_name"] == holder.name
                and row["target_type"] == target.ptype
                and row["target_name"] == target.name
            ):
                table.delete(row_id)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # key resolution
    # ------------------------------------------------------------------
    def _private_key(self, principal: Principal, symmetric: bytes) -> Optional[int]:
        row = self._public_row(principal)
        if row is None:
            return None
        raw = pubkey.symmetric_unwrap(symmetric, row["wrapped_private_key"])
        return int.from_bytes(raw, "big")

    def _try_get_key(self, principal: Principal) -> Optional[bytes]:
        try:
            return self.get_key(principal)
        except AccessDeniedError:
            return None

    def get_key(self, principal: Principal) -> bytes:
        """Resolve a principal's symmetric key by following key chains.

        Starts from all keys currently in proxy memory (logged-in users plus
        keys created in this session) and walks ``access_keys`` edges,
        unwrapping as it goes.  Raises :class:`AccessDeniedError` when no
        chain reaches the principal -- which is precisely the guarantee that
        protects logged-out users' data after a compromise.
        """
        if principal in self._active_keys:
            return self._active_keys[principal]

        rows = self._access_rows()
        # BFS over the delegation graph starting from every active key.
        frontier = deque(self._active_keys.items())
        known: dict[Principal, bytes] = dict(self._active_keys)
        while frontier:
            holder, holder_key = frontier.popleft()
            private_key = None
            for row in rows:
                if row["holder_type"] != holder.ptype or row["holder_name"] != holder.name:
                    continue
                target = Principal(row["target_type"], row["target_name"])
                if target in known:
                    continue
                try:
                    if row["wrap_mode"] == _WRAP_SYMMETRIC:
                        target_key = pubkey.symmetric_unwrap(holder_key, row["wrapped_key"])
                    else:
                        if private_key is None:
                            private_key = self._private_key(holder, holder_key)
                        if private_key is None:
                            continue
                        target_key = pubkey.decrypt(private_key, row["wrapped_key"])
                except Exception:
                    continue
                known[target] = target_key
                self._active_keys[target] = target_key
                if target == principal:
                    return target_key
                frontier.append((target, target_key))
        raise AccessDeniedError(
            f"no key chain from the active principals reaches {principal}"
        )

    def can_access(self, principal: Principal) -> bool:
        """True when the current active keys can reach the principal's key."""
        return self._try_get_key(principal) is not None

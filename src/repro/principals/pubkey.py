"""Per-principal public-key encryption (EC ElGamal KEM).

Each CryptDB principal owns a symmetric key *and* a public/private key pair
(§4.2).  When the proxy must give principal A access to some key but A's
symmetric key is not currently available (A is offline), it encrypts the key
under A's public key; A recovers it at next login with its private key.

We use a KEM over the same P-192 curve as JOIN-ADJ: an ephemeral scalar ``e``
yields ``C1 = e*G`` and a shared point ``e*Q``; a KDF of the shared point
keys a symmetric wrap of the payload.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto import ecc
from repro.crypto.prf import derive_key, expand
from repro.crypto.primitives import random_bytes, xor_bytes
from repro.errors import CryptoError


@dataclass(frozen=True)
class KeyPair:
    """An EC key pair for one principal."""

    private: int
    public: bytes  # serialised curve point

    @classmethod
    def generate(cls) -> "KeyPair":
        private = secrets.randbelow(ecc.ORDER - 1) + 1
        public = ecc.scalar_multiply(private, ecc.GENERATOR).serialize()
        return cls(private, public)


def _wrap_key(shared_point: bytes, length: int) -> bytes:
    return expand(derive_key(shared_point, "kem-wrap", length=32), b"wrap", length)


def encrypt(public_key: bytes, payload: bytes) -> bytes:
    """Encrypt a payload to a principal's public key.

    Output layout: ``C1 (49 bytes) || payload XOR keystream || MAC (16 bytes)``.
    """
    recipient = ecc.Point.deserialize(public_key)
    ephemeral = secrets.randbelow(ecc.ORDER - 1) + 1
    c1 = ecc.scalar_multiply(ephemeral, ecc.GENERATOR).serialize()
    shared = ecc.scalar_multiply(ephemeral, recipient).serialize()
    keystream = _wrap_key(shared, len(payload))
    mac = expand(derive_key(shared, "kem-mac", length=32), payload, 16)
    return c1 + xor_bytes(payload, keystream) + mac


def decrypt(private_key: int, ciphertext: bytes) -> bytes:
    """Invert :func:`encrypt` with the principal's private scalar."""
    if len(ciphertext) < 49 + 16:
        raise CryptoError("malformed KEM ciphertext")
    c1 = ecc.Point.deserialize(ciphertext[:49])
    body, mac = ciphertext[49:-16], ciphertext[-16:]
    shared = ecc.scalar_multiply(private_key, c1).serialize()
    keystream = _wrap_key(shared, len(body))
    payload = xor_bytes(body, keystream)
    expected = expand(derive_key(shared, "kem-mac", length=32), payload, 16)
    if expected != mac:
        raise CryptoError("KEM ciphertext failed authentication")
    return payload


def symmetric_wrap(key: bytes, payload: bytes) -> bytes:
    """Wrap a payload under a symmetric key (used for online principals)."""
    nonce = random_bytes(16)
    keystream = expand(derive_key(key, "sym-wrap", nonce, length=32), b"stream", len(payload))
    mac = expand(derive_key(key, "sym-mac", nonce, length=32), payload, 16)
    return nonce + xor_bytes(payload, keystream) + mac


def symmetric_unwrap(key: bytes, ciphertext: bytes) -> bytes:
    """Invert :func:`symmetric_wrap`."""
    if len(ciphertext) < 32:
        raise CryptoError("malformed symmetric wrap")
    nonce, body, mac = ciphertext[:16], ciphertext[16:-16], ciphertext[-16:]
    keystream = expand(derive_key(key, "sym-wrap", nonce, length=32), b"stream", len(body))
    payload = xor_bytes(body, keystream)
    expected = expand(derive_key(key, "sym-mac", nonce, length=32), payload, 16)
    if expected != mac:
        raise CryptoError("symmetric wrap failed authentication")
    return payload

"""Multi-principal mode: chaining encryption keys to user passwords (§4).

* :mod:`repro.principals.annotations` -- the PRINCTYPE / ENC FOR / SPEAKS FOR
  schema annotation language and its parser.
* :mod:`repro.principals.pubkey` -- the per-principal public-key (EC ElGamal
  KEM) used to deliver keys to principals that are not currently online.
* :mod:`repro.principals.keychain` -- principals, their symmetric/public key
  pairs, and the access_keys / public_keys / external_keys tables.
* :mod:`repro.principals.multi_proxy` -- the proxy enforcing the annotations:
  it encrypts annotated fields under principal keys, maintains delegations on
  INSERT, and releases plaintext only to sessions holding a key chain.
"""

from repro.principals.annotations import AnnotatedSchema, parse_annotated_schema
from repro.principals.keychain import KeyChain, Principal
from repro.principals.multi_proxy import MultiPrincipalProxy

__all__ = [
    "AnnotatedSchema",
    "parse_annotated_schema",
    "KeyChain",
    "Principal",
    "MultiPrincipalProxy",
]

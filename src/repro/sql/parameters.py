"""SQL-text utilities for ``?`` (qmark) parameter handling.

Two text-level operations back the prepared-statement machinery:

* :func:`normalize_statement_text` canonicalises a statement's *shape* --
  keywords uppercased, whitespace collapsed, literals re-escaped -- so the
  proxy's rewrite-plan cache can key on it cheaply (one tokenizer pass, no
  parse).  Two textual spellings of the same statement share one cache slot.
* :func:`inline_parameters` safely splices bound values into SQL text for
  backends that do not understand placeholders (the plain, unencrypted
  :class:`~repro.sql.engine.Database` path).  Values go through the same
  escaping as :meth:`Literal.to_sql`, so quotes, ``?`` characters and unicode
  inside a *value* can never alter the statement's structure.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import SQLSyntaxError
from repro.sql.ast_nodes import _format_value
from repro.sql.lexer import Token, TokenType, tokenize


def _render_token(token: Token, params: Optional[Sequence[Any]], counter: list[int]) -> str:
    if token.type is TokenType.KEYWORD:
        return str(token.value)
    if token.type is TokenType.IDENTIFIER:
        text = str(token.value)
        if text.isidentifier():
            return text
        return '"%s"' % text
    if token.type in (TokenType.NUMBER, TokenType.STRING, TokenType.BLOB):
        return _format_value(token.value)
    if token.type is TokenType.PLACEHOLDER:
        if params is None:
            return "?"
        index = counter[0]
        counter[0] += 1
        if index >= len(params):
            raise SQLSyntaxError(
                f"statement has more placeholders than the {len(params)} bound parameters"
            )
        return _format_value(params[index])
    return str(token.value)


def _render(sql: str, params: Optional[Sequence[Any]]) -> str:
    counter = [0]
    pieces = [
        _render_token(token, params, counter)
        for token in tokenize(sql)
        if token.type is not TokenType.END
    ]
    if params is not None and counter[0] != len(params):
        raise SQLSyntaxError(
            f"statement has {counter[0]} placeholders but {len(params)} parameters were bound"
        )
    return " ".join(pieces)


def normalize_statement_text(sql: str) -> str:
    """Canonical text of a statement, used as the rewrite-plan cache key."""
    return _render(sql, None)


def inline_parameters(sql: str, params: Sequence[Any]) -> str:
    """Substitute ``?`` placeholders with safely escaped literal values."""
    return _render(sql, params)

"""Secondary indexes over table columns.

The DBMS builds indexes on encrypted data exactly as it would on plaintext
(section 3.3): a hash index over DET/JOIN ciphertexts supports equality
look-ups, and an ordered index over OPE ciphertexts supports range scans,
which is precisely why the strawman design (everything under RND) loses its
indexes and collapses in Figure 11.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Optional


class HashIndex:
    """Equality index: value -> set of row ids."""

    def __init__(self, column: str):
        self.column = column
        self._buckets: dict[Any, set[int]] = {}

    def insert(self, value: Any, row_id: int) -> None:
        if value is None:
            return
        self._buckets.setdefault(value, set()).add(row_id)

    def remove(self, value: Any, row_id: int) -> None:
        if value is None:
            return
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> set[int]:
        if value is None:
            return set()
        return set(self._buckets.get(value, ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class OrderedIndex:
    """Ordered index supporting range scans (used over OPE ciphertexts)."""

    def __init__(self, column: str):
        self.column = column
        self._entries: list[tuple[Any, int]] = []

    def insert(self, value: Any, row_id: int) -> None:
        if value is None:
            return
        bisect.insort(self._entries, (value, row_id))

    def remove(self, value: Any, row_id: int) -> None:
        if value is None:
            return
        position = bisect.bisect_left(self._entries, (value, row_id))
        if position < len(self._entries) and self._entries[position] == (value, row_id):
            self._entries.pop(position)

    def lookup(self, value: Any) -> set[int]:
        if value is None:
            return set()
        result = set()
        position = bisect.bisect_left(self._entries, (value, -1))
        while position < len(self._entries) and self._entries[position][0] == value:
            result.add(self._entries[position][1])
            position += 1
        return result

    def scan_sorted(self, descending: bool = False) -> Iterable[int]:
        """Row ids in index-key order (ties broken by ascending row id).

        This is what lets the executor stream ``ORDER BY col LIMIT k``
        straight off the index instead of materialising and sorting the full
        match set.
        """
        if not descending:
            for _value, row_id in self._entries:
                yield row_id
            return
        # Descending: walk the key groups back to front, but keep row ids
        # ascending within a group, matching the stable full-sort order.
        entries = self._entries
        end = len(entries)
        while end:
            start = bisect.bisect_left(entries, (entries[end - 1][0], -1), 0, end)
            for position in range(start, end):
                yield entries[position][1]
            end = start

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> set[int]:
        """Row ids whose value falls in the given (possibly open) interval."""
        result = set()
        for value, row_id in self._entries:
            if low is not None:
                if value < low or (value == low and not include_low):
                    continue
            if high is not None:
                if value > high:
                    break
                if value == high and not include_high:
                    continue
            result.add(row_id)
        return result

    def __len__(self) -> int:
        return len(self._entries)


class IndexSet:
    """All indexes attached to one table."""

    def __init__(self) -> None:
        self.hash_indexes: dict[str, HashIndex] = {}
        self.ordered_indexes: dict[str, OrderedIndex] = {}

    def columns(self) -> set[str]:
        return set(self.hash_indexes) | set(self.ordered_indexes)

    def add_hash(self, column: str) -> HashIndex:
        index = self.hash_indexes.setdefault(column, HashIndex(column))
        return index

    def add_ordered(self, column: str) -> OrderedIndex:
        index = self.ordered_indexes.setdefault(column, OrderedIndex(column))
        return index

    def insert_row(self, row: dict[str, Any], row_id: int) -> None:
        for column, index in self.hash_indexes.items():
            index.insert(row.get(column), row_id)
        for column, index in self.ordered_indexes.items():
            index.insert(row.get(column), row_id)

    def remove_row(self, row: dict[str, Any], row_id: int) -> None:
        for column, index in self.hash_indexes.items():
            index.remove(row.get(column), row_id)
        for column, index in self.ordered_indexes.items():
            index.remove(row.get(column), row_id)

    def equality_lookup(self, column: str, value: Any) -> Optional[set[int]]:
        """Row ids matching an equality predicate, or None if no usable index."""
        if column in self.hash_indexes:
            return self.hash_indexes[column].lookup(value)
        if column in self.ordered_indexes:
            return self.ordered_indexes[column].lookup(value)
        return None

    def range_lookup(
        self, column: str, low: Any, high: Any, include_low: bool, include_high: bool
    ) -> Optional[set[int]]:
        """Row ids matching a range predicate, or None if no usable index."""
        if column in self.ordered_indexes:
            return self.ordered_indexes[column].range(low, high, include_low, include_high)
        return None

    def populate(self, rows: Iterable[tuple[int, dict[str, Any]]]) -> None:
        for row_id, row in rows:
            self.insert_row(row, row_id)

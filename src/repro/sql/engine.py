"""The Database facade: the "unmodified DBMS server" of the paper.

A :class:`Database` accepts SQL text or pre-parsed statements, executes them,
and returns :class:`ResultSet` objects.  CryptDB's proxy talks to exactly
this interface, installing its cryptographic UDFs through
:meth:`register_scalar_udf` / :meth:`register_aggregate_udf` -- the same way
the real system ships UDF shared objects to MySQL/Postgres.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from repro.sql import ast_nodes as ast
from repro.sql.executor import Executor, ResultSet
from repro.sql.functions import FunctionRegistry
from repro.sql.parser import parse_sql
from repro.sql.storage import Catalog, Table
from repro.sql.transactions import TransactionManager
from repro.sql.types import ColumnDef

StatementLike = Union[str, ast.Statement]


class Database:
    """An in-memory SQL database with UDF support."""

    def __init__(self, name: str = "main"):
        self.name = name
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self.transactions = TransactionManager(self.catalog)
        self.executor = Executor(self.catalog, self.functions, self.transactions)
        self._statements_executed = 0

    # -- statement execution ----------------------------------------------
    def execute(self, statement: StatementLike) -> ResultSet:
        """Execute one statement (SQL text or a parsed AST node)."""
        if isinstance(statement, str):
            statement = parse_sql(statement)
        self._statements_executed += 1
        return self.executor.execute(statement)

    def execute_script(self, script: str) -> list[ResultSet]:
        """Execute several ';'-separated statements."""
        results = []
        for part in split_statements(script):
            results.append(self.execute(part))
        return results

    @property
    def statements_executed(self) -> int:
        """Total number of statements this server has processed."""
        return self._statements_executed

    # -- UDF registration ----------------------------------------------------
    def register_scalar_udf(
        self,
        name: str,
        func: Callable[..., Any],
        batch: Optional[Callable[..., list]] = None,
    ) -> None:
        """Install a scalar UDF callable from SQL expressions.

        ``batch``, when given, is a vectorized variant (one list per
        argument, returning the result list) used for full-column UPDATEs.
        """
        self.functions.register_scalar(name, func, batch=batch)

    def register_aggregate_udf(
        self,
        name: str,
        initial: Callable[[], Any],
        step: Callable[[Any, Any], Any],
        finalize: Callable[[Any], Any],
    ) -> None:
        """Install an aggregate UDF (e.g. CryptDB's Paillier SUM)."""
        self.functions.register_aggregate(name, initial, step, finalize)

    # -- schema helpers --------------------------------------------------------
    def create_table(self, name: str, columns: list[ColumnDef], if_not_exists: bool = False) -> Table:
        """Create a table directly from column definitions."""
        return self.catalog.create_table(name, columns, if_not_exists)

    def table(self, name: str) -> Table:
        """Access a table object (tests and analyses use this)."""
        return self.catalog.table(name)

    def has_table(self, name: str) -> bool:
        return self.catalog.has_table(name)

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def insert_row(self, table: str, values: dict[str, Any]) -> int:
        """Insert a row bypassing the parser (used by data loaders)."""
        row_id = self.catalog.table(table).insert(values)
        self.transactions.record_insert(table, row_id)
        return row_id

    # -- statistics -------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Approximate total storage of all tables (section 8.4.3 analysis)."""
        return sum(table.storage_bytes() for table in self.catalog.tables())

    def row_counts(self) -> dict[str, int]:
        return {name: self.catalog.table(name).row_count() for name in self.table_names()}


def split_statements(script: str) -> list[str]:
    """Split a SQL script on ';' while respecting string literals.

    Shared by every backend adapter that offers ``execute_script``.
    """
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    i = 0
    while i < len(script):
        ch = script[i]
        if ch == "'":
            in_string = not in_string
            current.append(ch)
        elif ch == ";" and not in_string:
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(ch)
        i += 1
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements

"""Minimal transaction support: an undo log over row mutations.

CryptDB simply forwards BEGIN/COMMIT/ROLLBACK to the DBMS (section 3.3) and
wraps each onion-layer adjustment in a transaction to avoid exposing clients
to half-adjusted columns, so the substrate needs working (single-connection)
transactions even though it does not need concurrency control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SQLExecutionError
from repro.sql.storage import Catalog


@dataclass
class _UndoRecord:
    kind: str  # "insert" | "delete" | "update"
    table: str
    row_id: int
    row: dict[str, Any] | None = None


@dataclass
class TransactionManager:
    """Records row-level changes while a transaction is open."""

    catalog: Catalog
    _active: bool = False
    _undo_log: list[_UndoRecord] = field(default_factory=list)

    @property
    def in_transaction(self) -> bool:
        return self._active

    def begin(self) -> None:
        if self._active:
            raise SQLExecutionError("a transaction is already in progress")
        self._active = True
        self._undo_log.clear()

    def commit(self) -> None:
        if not self._active:
            # Stock MySQL tolerates COMMIT outside a transaction; so do we.
            return
        self._active = False
        self._undo_log.clear()

    def rollback(self) -> None:
        if not self._active:
            return
        for record in reversed(self._undo_log):
            table = self.catalog.table(record.table)
            if record.kind == "insert":
                table.delete(record.row_id)
            elif record.kind == "delete":
                assert record.row is not None
                table.restore(record.row_id, record.row)
            elif record.kind == "update":
                assert record.row is not None
                table.update(record.row_id, record.row)
        self._active = False
        self._undo_log.clear()

    # -- hooks called by the executor ---------------------------------------
    def record_insert(self, table: str, row_id: int) -> None:
        if self._active:
            self._undo_log.append(_UndoRecord("insert", table, row_id))

    def record_delete(self, table: str, row_id: int, row: dict[str, Any]) -> None:
        if self._active:
            self._undo_log.append(_UndoRecord("delete", table, row_id, dict(row)))

    def record_update(self, table: str, row_id: int, previous: dict[str, Any]) -> None:
        if self._active:
            self._undo_log.append(_UndoRecord("update", table, row_id, dict(previous)))

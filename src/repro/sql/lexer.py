"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "ASC", "DESC", "DISTINCT", "AS", "AND", "OR", "NOT", "IN",
    "BETWEEN", "LIKE", "IS", "NULL", "TRUE", "FALSE", "INSERT", "INTO",
    "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "DROP", "TABLE", "INDEX",
    "UNIQUE", "ON", "JOIN", "INNER", "LEFT", "OUTER", "PRIMARY", "KEY",
    "IF", "EXISTS", "BEGIN", "COMMIT", "ROLLBACK", "START", "TRANSACTION",
}


class TokenType(Enum):
    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    BLOB = auto()
    OPERATOR = auto()
    PUNCTUATION = auto()
    PLACEHOLDER = auto()
    END = auto()


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: object
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in keywords


_OPERATORS = ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%"]
_PUNCTUATION = "(),."


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL string into a list of tokens ending with an END token."""
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < length and sql[i + 1] == "-":
            # Line comment.
            while i < length and sql[i] != "\n":
                i += 1
            continue
        # Hex blob literal X'...'
        if ch in ("X", "x") and i + 1 < length and sql[i + 1] == "'":
            end = sql.find("'", i + 2)
            if end == -1:
                raise SQLSyntaxError("unterminated blob literal")
            hex_text = sql[i + 2 : end]
            try:
                value = bytes.fromhex(hex_text)
            except ValueError as exc:
                raise SQLSyntaxError(f"invalid hex blob: {hex_text!r}") from exc
            tokens.append(Token(TokenType.BLOB, value, i))
            i = end + 1
            continue
        # String literal with '' escaping.
        if ch == "'":
            j = i + 1
            pieces = []
            while True:
                if j >= length:
                    raise SQLSyntaxError("unterminated string literal")
                if sql[j] == "'":
                    if j + 1 < length and sql[j + 1] == "'":
                        pieces.append("'")
                        j += 2
                        continue
                    break
                pieces.append(sql[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(pieces), i))
            i = j + 1
            continue
        # Quoted identifier (backticks or double quotes).
        if ch in ('`', '"'):
            end = sql.find(ch, i + 1)
            if end == -1:
                raise SQLSyntaxError("unterminated quoted identifier")
            tokens.append(Token(TokenType.IDENTIFIER, sql[i + 1 : end], i))
            i = end + 1
            continue
        # Number.
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            j = i
            has_dot = False
            while j < length and (sql[j].isdigit() or (sql[j] == "." and not has_dot)):
                if sql[j] == ".":
                    has_dot = True
                j += 1
            text = sql[i:j]
            value = float(text) if has_dot else int(text)
            tokens.append(Token(TokenType.NUMBER, value, i))
            i = j
            continue
        # Identifier or keyword.
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
            continue
        # Operators.
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCTUATION or ch == ";":
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        # DB-API qmark parameter placeholder.
        if ch == "?":
            tokens.append(Token(TokenType.PLACEHOLDER, "?", i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.END, None, length))
    return tokens

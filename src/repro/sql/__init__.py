"""In-memory relational engine: the unmodified DBMS server substrate.

CryptDB runs on top of an unmodified MySQL/Postgres server extended only with
user-defined functions.  This package provides that substrate: a SQL lexer
and parser, an expression evaluator with SQL three-valued logic, row storage
with hash and ordered indexes, a query executor (selection, projection,
joins, grouping, aggregation, ordering), simple transactions, and a UDF
registry that CryptDB uses to install its server-side cryptographic helpers.
"""

from repro.sql.engine import Database, ResultSet
from repro.sql.parser import parse_sql
from repro.sql.types import ColumnDef, DataType

__all__ = ["Database", "ResultSet", "parse_sql", "ColumnDef", "DataType"]

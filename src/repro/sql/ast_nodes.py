"""Abstract syntax tree for the SQL dialect understood by the engine.

The CryptDB proxy parses application queries into these nodes, rewrites them
(anonymising identifiers, replacing constants with ciphertexts, swapping
operators for UDF calls) and hands the rewritten tree to the DBMS engine.
Every node can be serialised back to SQL text with :meth:`to_sql`, which is
what the proxy logs and what the "resend as SQL text" mode uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.sql.types import ColumnDef


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class Expression:
    """Base class for all expression nodes."""

    def to_sql(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


def _format_value(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, bytes):
        return "X'%s'" % value.hex()
    text = str(value).replace("'", "''")
    return "'%s'" % text


@dataclass
class Literal(Expression):
    """A constant value (number, string, blob, NULL)."""

    value: Any

    def to_sql(self) -> str:
        return _format_value(self.value)


@dataclass
class Placeholder(Expression):
    """A ``?`` parameter placeholder (DB-API *qmark* style).

    Placeholders are assigned zero-based indices in lexical order by the
    parser; values are bound at execution time, so the same parsed (and
    rewritten) statement can be re-executed with different parameters.
    """

    index: int

    def to_sql(self) -> str:
        return "?"


@dataclass
class ColumnRef(Expression):
    """A reference to a column, optionally qualified by table name/alias."""

    name: str
    table: Optional[str] = None

    def to_sql(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name

    @property
    def key(self) -> tuple[Optional[str], str]:
        return (self.table, self.name)


@dataclass
class Star(Expression):
    """``*`` or ``table.*`` in a projection or in ``COUNT(*)``."""

    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass
class BinaryOp(Expression):
    """Arithmetic, comparison or logical binary operator."""

    op: str
    left: Expression
    right: Expression

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass
class UnaryOp(Expression):
    """``NOT expr`` or ``-expr``."""

    op: str
    operand: Expression

    def to_sql(self) -> str:
        return f"({self.op} {self.operand.to_sql()})"


@dataclass
class FunctionCall(Expression):
    """A scalar function, aggregate, or CryptDB UDF call."""

    name: str
    args: list[Expression] = field(default_factory=list)
    distinct: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        if self.distinct:
            inner = "DISTINCT " + inner
        return f"{self.name.upper()}({inner})"


@dataclass
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    expr: Expression
    items: list[Expression]
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"({self.expr.to_sql()} {op} ({', '.join(i.to_sql() for i in self.items)}))"


@dataclass
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.expr.to_sql()} {op} {self.low.to_sql()} AND {self.high.to_sql()})"


@dataclass
class Like(Expression):
    """``expr [NOT] LIKE pattern``."""

    expr: Expression
    pattern: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.expr.to_sql()} {op} {self.pattern.to_sql()})"


@dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    expr: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.expr.to_sql()} {op})"


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------
@dataclass
class TableRef:
    """A base table in a FROM clause, with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name


@dataclass
class Join:
    """``left JOIN right ON condition`` (inner or left outer)."""

    left: "FromClause"
    right: TableRef
    condition: Optional[Expression] = None
    join_type: str = "INNER"

    def to_sql(self) -> str:
        on = f" ON {self.condition.to_sql()}" if self.condition is not None else ""
        return f"{self.left.to_sql()} {self.join_type} JOIN {self.right.to_sql()}{on}"


FromClause = Union[TableRef, Join]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
class Statement:
    """Base class for all statements."""

    def to_sql(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


@dataclass
class SelectItem:
    """One entry of a SELECT projection list."""

    expr: Expression
    alias: Optional[str] = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expr.to_sql()} AS {self.alias}"
        return self.expr.to_sql()


@dataclass
class OrderItem:
    """One entry of an ORDER BY clause."""

    expr: Expression
    ascending: bool = True

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclass
class Select(Statement):
    """A SELECT statement."""

    items: list[SelectItem]
    from_clause: Optional[FromClause] = None
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(i.to_sql() for i in self.items))
        if self.from_clause is not None:
            parts.append("FROM " + self.from_clause.to_sql())
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(g.to_sql() for g in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass
class Insert(Statement):
    """An INSERT statement with one or more VALUES rows."""

    table: str
    columns: list[str]
    rows: list[list[Expression]]

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        values = ", ".join(
            "(" + ", ".join(v.to_sql() for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {values}"


@dataclass
class Update(Statement):
    """An UPDATE statement."""

    table: str
    assignments: list[tuple[str, Expression]]
    where: Optional[Expression] = None

    def to_sql(self) -> str:
        sets = ", ".join(f"{col} = {expr.to_sql()}" for col, expr in self.assignments)
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{where}"


@dataclass
class Delete(Statement):
    """A DELETE statement."""

    table: str
    where: Optional[Expression] = None

    def to_sql(self) -> str:
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{where}"


@dataclass
class CreateTable(Statement):
    """A CREATE TABLE statement."""

    table: str
    columns: list[ColumnDef]
    if_not_exists: bool = False

    def to_sql(self) -> str:
        exists = "IF NOT EXISTS " if self.if_not_exists else ""
        cols = ", ".join(c.to_sql() for c in self.columns)
        return f"CREATE TABLE {exists}{self.table} ({cols})"


@dataclass
class DropTable(Statement):
    """A DROP TABLE statement."""

    table: str
    if_exists: bool = False

    def to_sql(self) -> str:
        exists = "IF EXISTS " if self.if_exists else ""
        return f"DROP TABLE {exists}{self.table}"


@dataclass
class CreateIndex(Statement):
    """A CREATE INDEX statement."""

    name: str
    table: str
    columns: list[str]
    unique: bool = False

    def to_sql(self) -> str:
        unique = "UNIQUE " if self.unique else ""
        return f"CREATE {unique}INDEX {self.name} ON {self.table} ({', '.join(self.columns)})"


@dataclass
class Begin(Statement):
    """BEGIN (start a transaction)."""

    def to_sql(self) -> str:
        return "BEGIN"


@dataclass
class Commit(Statement):
    """COMMIT the current transaction."""

    def to_sql(self) -> str:
        return "COMMIT"


@dataclass
class Rollback(Statement):
    """ROLLBACK the current transaction."""

    def to_sql(self) -> str:
        return "ROLLBACK"


def statement_expressions(statement: Statement):
    """Yield the top-level expressions of a statement (not sub-expressions)."""
    if isinstance(statement, Select):
        for item in statement.items:
            yield item.expr
        clause = statement.from_clause
        while isinstance(clause, Join):
            if clause.condition is not None:
                yield clause.condition
            clause = clause.left
        if statement.where is not None:
            yield statement.where
        yield from statement.group_by
        if statement.having is not None:
            yield statement.having
        for order in statement.order_by:
            yield order.expr
    elif isinstance(statement, Insert):
        for row in statement.rows:
            yield from row
    elif isinstance(statement, Update):
        for _, expr in statement.assignments:
            yield expr
        if statement.where is not None:
            yield statement.where
    elif isinstance(statement, Delete):
        if statement.where is not None:
            yield statement.where


def count_placeholders(statement: Statement) -> int:
    """Number of ``?`` placeholders appearing anywhere in a statement."""
    return sum(
        1
        for top in statement_expressions(statement)
        for node in walk_expression(top)
        if isinstance(node, Placeholder)
    )


def walk_expression(expr: Optional[Expression]):
    """Yield ``expr`` and all of its sub-expressions, depth-first."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk_expression(expr.left)
        yield from walk_expression(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk_expression(arg)
    elif isinstance(expr, InList):
        yield from walk_expression(expr.expr)
        for item in expr.items:
            yield from walk_expression(item)
    elif isinstance(expr, Between):
        yield from walk_expression(expr.expr)
        yield from walk_expression(expr.low)
        yield from walk_expression(expr.high)
    elif isinstance(expr, Like):
        yield from walk_expression(expr.expr)
        yield from walk_expression(expr.pattern)
    elif isinstance(expr, IsNull):
        yield from walk_expression(expr.expr)

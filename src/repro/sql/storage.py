"""Row storage: tables, rows, and the catalog."""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import SchemaError, SQLExecutionError
from repro.sql.indexes import IndexSet
from repro.sql.types import ColumnDef


class Table:
    """An in-memory heap table with secondary indexes."""

    def __init__(self, name: str, columns: list[ColumnDef]):
        if not columns:
            raise SchemaError(f"table {name} must have at least one column")
        seen = set()
        for column in columns:
            if column.name in seen:
                raise SchemaError(f"duplicate column {column.name} in table {name}")
            seen.add(column.name)
        self.name = name
        self.columns = list(columns)
        self._column_map = {c.name: c for c in columns}
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_row_id = 1
        self.indexes = IndexSet()
        # Index primary keys by default, as a stock DBMS would.
        for column in columns:
            if column.primary_key:
                self.indexes.add_hash(column.name)

    # -- schema -----------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> ColumnDef:
        if name not in self._column_map:
            raise SchemaError(f"table {self.name} has no column {name}")
        return self._column_map[name]

    def has_column(self, name: str) -> bool:
        return name in self._column_map

    def add_column(self, column: ColumnDef, default: Any = None) -> None:
        """ALTER TABLE ADD COLUMN (used when onions add IV columns)."""
        if column.name in self._column_map:
            raise SchemaError(f"column {column.name} already exists in {self.name}")
        self.columns.append(column)
        self._column_map[column.name] = column
        for row in self._rows.values():
            row[column.name] = default

    # -- rows ---------------------------------------------------------------
    def insert(self, values: dict[str, Any]) -> int:
        """Insert one row given a column->value mapping; returns the row id."""
        row: dict[str, Any] = {}
        for column in self.columns:
            if column.name in values:
                row[column.name] = column.data_type.coerce(values[column.name])
            else:
                row[column.name] = column.default
        unknown = set(values) - set(self._column_map)
        if unknown:
            raise SQLExecutionError(
                f"unknown columns {sorted(unknown)} in INSERT into {self.name}"
            )
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = row
        self.indexes.insert_row(row, row_id)
        return row_id

    def delete(self, row_id: int) -> dict[str, Any]:
        """Delete a row by id, returning the removed row."""
        row = self._rows.pop(row_id, None)
        if row is None:
            raise SQLExecutionError(f"row {row_id} not found in {self.name}")
        self.indexes.remove_row(row, row_id)
        return row

    def update(self, row_id: int, changes: dict[str, Any]) -> dict[str, Any]:
        """Apply column changes to a row, returning the previous values."""
        row = self._rows.get(row_id)
        if row is None:
            raise SQLExecutionError(f"row {row_id} not found in {self.name}")
        previous = dict(row)
        self.indexes.remove_row(row, row_id)
        for column, value in changes.items():
            if column not in self._column_map:
                raise SQLExecutionError(f"unknown column {column} in UPDATE of {self.name}")
            row[column] = self._column_map[column].data_type.coerce(value)
        self.indexes.insert_row(row, row_id)
        return previous

    def restore(self, row_id: int, row: dict[str, Any]) -> None:
        """Re-insert a deleted row under its original id (transaction undo)."""
        if row_id in self._rows:
            raise SQLExecutionError(f"row {row_id} already present in {self.name}")
        self._rows[row_id] = dict(row)
        self.indexes.insert_row(row, row_id)
        self._next_row_id = max(self._next_row_id, row_id + 1)

    def get(self, row_id: int) -> dict[str, Any]:
        row = self._rows.get(row_id)
        if row is None:
            raise SQLExecutionError(f"row {row_id} not found in {self.name}")
        return row

    def scan(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Yield (row_id, row) pairs in insertion order."""
        yield from list(self._rows.items())

    def row_count(self) -> int:
        return len(self._rows)

    # -- index management ---------------------------------------------------
    def create_index(self, column: str, ordered: bool = False) -> None:
        """Create (and populate) a secondary index on a column."""
        self.column(column)
        index = self.indexes.add_ordered(column) if ordered else self.indexes.add_hash(column)
        for row_id, row in self._rows.items():
            index.insert(row.get(column), row_id)

    # -- statistics ----------------------------------------------------------
    def storage_bytes(self) -> int:
        """Approximate storage footprint of the table's data."""
        total = 0
        for row in self._rows.values():
            for column in self.columns:
                total += column.data_type.storage_size(row.get(column.name))
        return total


class Catalog:
    """The set of tables of one database."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, columns: list[ColumnDef], if_not_exists: bool = False) -> Table:
        if name in self._tables:
            if if_not_exists:
                return self._tables[name]
            raise SchemaError(f"table {name} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        if name not in self._tables:
            if if_exists:
                return
            raise SchemaError(f"table {name} does not exist")
        del self._tables[name]

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise SchemaError(f"table {name} does not exist")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> list[Table]:
        return list(self._tables.values())

"""Built-in SQL functions, aggregates, and the UDF registry.

CryptDB never modifies the DBMS itself: all server-side cryptographic
operations (RND layer decryption, Paillier SUM, SEARCH matching, JOIN-ADJ key
adjustment) are installed as user-defined functions.  The registry here is
the engine-side mechanism that makes that possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SQLExecutionError


@dataclass
class AggregateSpec:
    """An aggregate defined by init/step/finalize callables."""

    initial: Callable[[], Any]
    step: Callable[[Any, Any], Any]
    finalize: Callable[[Any], Any]
    skip_nulls: bool = True


def _builtin_scalars() -> dict[str, Callable[..., Any]]:
    def sql_substring(value: Any, start: int, length: Optional[int] = None) -> Any:
        if value is None:
            return None
        text = str(value)
        begin = max(start - 1, 0)
        if length is None:
            return text[begin:]
        return text[begin : begin + length]

    def sql_coalesce(*args: Any) -> Any:
        for arg in args:
            if arg is not None:
                return arg
        return None

    def sql_ifnull(value: Any, fallback: Any) -> Any:
        return fallback if value is None else value

    def sql_concat(*args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return "".join(str(a) for a in args)

    return {
        "UPPER": lambda v: None if v is None else str(v).upper(),
        "LOWER": lambda v: None if v is None else str(v).lower(),
        "LENGTH": lambda v: None if v is None else len(v if isinstance(v, bytes) else str(v)),
        "ABS": lambda v: None if v is None else abs(v),
        "SUBSTRING": sql_substring,
        "SUBSTR": sql_substring,
        "COALESCE": sql_coalesce,
        "IFNULL": sql_ifnull,
        "CONCAT": sql_concat,
        "ROUND": lambda v, digits=0: None if v is None else round(v, int(digits)),
        "MOD": lambda a, b: None if a is None or b is None else a % b,
    }


def _builtin_aggregates() -> dict[str, AggregateSpec]:
    def min_step(state: Any, value: Any) -> Any:
        return value if state is None or value < state else state

    def max_step(state: Any, value: Any) -> Any:
        return value if state is None or value > state else state

    def avg_step(state: tuple[float, int], value: Any) -> tuple[float, int]:
        total, count = state
        return total + value, count + 1

    return {
        "COUNT": AggregateSpec(lambda: 0, lambda s, v: s + 1, lambda s: s),
        "SUM": AggregateSpec(lambda: None, lambda s, v: v if s is None else s + v, lambda s: s),
        "MIN": AggregateSpec(lambda: None, min_step, lambda s: s),
        "MAX": AggregateSpec(lambda: None, max_step, lambda s: s),
        "AVG": AggregateSpec(
            lambda: (0.0, 0),
            avg_step,
            lambda s: None if s[1] == 0 else s[0] / s[1],
        ),
    }


@dataclass
class FunctionRegistry:
    """Scalar and aggregate functions available to the executor."""

    scalars: dict[str, Callable[..., Any]] = field(default_factory=_builtin_scalars)
    aggregates: dict[str, AggregateSpec] = field(default_factory=_builtin_aggregates)
    #: Optional vectorized variants of scalar UDFs.  A batch variant takes
    #: one list per argument (each holding that argument's value for every
    #: row) and returns the list of results; the executor uses it to apply
    #: full-column UPDATEs (CryptDB's onion-adjustment statements) without
    #: re-doing per-row setup such as key schedules.
    batch_scalars: dict[str, Callable[..., list]] = field(default_factory=dict)

    def register_scalar(
        self,
        name: str,
        func: Callable[..., Any],
        batch: Optional[Callable[..., list]] = None,
    ) -> None:
        """Install a scalar UDF (e.g. CryptDB's SEARCH match or JOIN adjust)."""
        self.scalars[name.upper()] = func
        if batch is not None:
            self.batch_scalars[name.upper()] = batch

    def batch_scalar(self, name: str) -> Optional[Callable[..., list]]:
        """The vectorized variant of a scalar function, if one is registered."""
        return self.batch_scalars.get(name.upper())

    def register_aggregate(
        self,
        name: str,
        initial: Callable[[], Any],
        step: Callable[[Any, Any], Any],
        finalize: Callable[[Any], Any],
        skip_nulls: bool = True,
    ) -> None:
        """Install an aggregate UDF (e.g. CryptDB's Paillier SUM)."""
        self.aggregates[name.upper()] = AggregateSpec(initial, step, finalize, skip_nulls)

    def is_aggregate(self, name: str) -> bool:
        return name.upper() in self.aggregates

    def call_scalar(self, name: str, args: list[Any]) -> Any:
        func = self.scalars.get(name.upper())
        if func is None:
            raise SQLExecutionError(f"unknown function {name}")
        return func(*args)

    def aggregate(self, name: str) -> AggregateSpec:
        spec = self.aggregates.get(name.upper())
        if spec is None:
            raise SQLExecutionError(f"unknown aggregate {name}")
        return spec

"""SQL data types and column definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchemaError


@dataclass(frozen=True)
class DataType:
    """A SQL column type.

    The engine is dynamically typed like SQLite: the declared type guides
    coercion and storage-size accounting but arbitrary Python values (for
    example 2048-bit Paillier ciphertexts) can be stored in any column, which
    is exactly what CryptDB's anonymised tables need.
    """

    name: str
    length: int | None = None

    def __str__(self) -> str:
        if self.length is not None:
            return f"{self.name}({self.length})"
        return self.name

    @property
    def is_integer(self) -> bool:
        return self.name in ("INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT")

    @property
    def is_text(self) -> bool:
        return self.name in ("VARCHAR", "CHAR", "TEXT")

    @property
    def is_binary(self) -> bool:
        return self.name in ("BLOB", "VARBINARY", "BINARY")

    @property
    def is_numeric(self) -> bool:
        return self.is_integer or self.name in ("FLOAT", "DOUBLE", "DECIMAL", "NUMERIC", "REAL")

    def coerce(self, value: Any) -> Any:
        """Best-effort coercion of a Python value to this type."""
        if value is None:
            return None
        if self.is_integer:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, (int, float)):
                return int(value)
            if isinstance(value, str) and value.strip().lstrip("+-").isdigit():
                return int(value)
            return value
        if self.name in ("FLOAT", "DOUBLE", "DECIMAL", "NUMERIC", "REAL"):
            if isinstance(value, (int, float)):
                return float(value)
            try:
                return float(value)
            except (TypeError, ValueError):
                return value
        if self.is_text:
            if isinstance(value, bytes):
                return value
            return str(value)
        return value

    def sqlite_affinity(self) -> str:
        """The SQLite type name whose affinity matches :meth:`coerce`.

        Backend adapters use this when forwarding CREATE TABLE to sqlite3:
        BLOB columns must keep no-conversion affinity (onion ciphertexts are
        stored verbatim), numeric/text affinities mirror the engine's own
        best-effort coercions.
        """
        if self.is_integer or self.name in ("BOOLEAN", "BOOL"):
            return "INTEGER"
        if self.name in ("FLOAT", "DOUBLE", "DECIMAL", "NUMERIC", "REAL"):
            return "REAL"
        if self.is_binary:
            return "BLOB"
        # Text, dates and anything else the engine stores as strings.
        return "TEXT"

    def storage_size(self, value: Any) -> int:
        """Approximate on-disk size in bytes of a stored value.

        Used by the storage-overhead analysis of section 8.4.3.
        """
        if value is None:
            return 1
        if isinstance(value, bool):
            return 1
        if isinstance(value, int):
            return max(4, (value.bit_length() + 7) // 8)
        if isinstance(value, float):
            return 8
        if isinstance(value, bytes):
            return len(value)
        if isinstance(value, str):
            return len(value.encode("utf-8"))
        return 8


# Common type constructors used throughout the code base.
def INT() -> DataType:
    return DataType("INT")


def BIGINT() -> DataType:
    return DataType("BIGINT")


def VARCHAR(length: int = 255) -> DataType:
    return DataType("VARCHAR", length)


def TEXT() -> DataType:
    return DataType("TEXT")


def BLOB() -> DataType:
    return DataType("BLOB")


def DECIMAL() -> DataType:
    return DataType("DECIMAL")


def DATETIME() -> DataType:
    return DataType("DATETIME")


@dataclass
class ColumnDef:
    """A column of a CREATE TABLE statement."""

    name: str
    data_type: DataType = field(default_factory=INT)
    nullable: bool = True
    primary_key: bool = False
    default: Any = None

    def to_sql(self) -> str:
        parts = [self.name, str(self.data_type)]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        if not self.nullable:
            parts.append("NOT NULL")
        return " ".join(parts)


def parse_type(name: str, length: int | None = None) -> DataType:
    """Normalise a type name from the parser into a :class:`DataType`."""
    upper = name.upper()
    known = {
        "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT",
        "VARCHAR", "CHAR", "TEXT", "BLOB", "VARBINARY", "BINARY",
        "FLOAT", "DOUBLE", "DECIMAL", "NUMERIC", "REAL",
        "DATETIME", "DATE", "TIMESTAMP", "BOOLEAN", "BOOL",
    }
    if upper not in known:
        raise SchemaError(f"unknown column type: {name}")
    return DataType(upper, length)

"""Recursive-descent SQL parser producing :mod:`repro.sql.ast_nodes` trees."""

from __future__ import annotations

from typing import Optional

from repro.errors import SQLSyntaxError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.types import ColumnDef, parse_type


def parse_sql(sql: str) -> ast.Statement:
    """Parse a single SQL statement."""
    parser = Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone expression (used by annotation predicates)."""
    parser = Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_end()
    return expr


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._param_index = 0  # next ? placeholder index, assigned lexically

    # -- token helpers ----------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.END:
            self._pos += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        return self._peek().matches_keyword(*keywords)

    def _accept_keyword(self, *keywords: str) -> bool:
        if self._check_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise SQLSyntaxError(
                f"expected {keyword}, found {self._peek().value!r} at {self._peek().position}"
            )

    def _accept_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise SQLSyntaxError(
                f"expected {value!r}, found {self._peek().value!r} at {self._peek().position}"
            )

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return str(token.value)
        # Allow non-reserved keyword-looking identifiers such as KEY.
        if token.type is TokenType.KEYWORD and token.value in ("KEY", "INDEX"):
            self._advance()
            return str(token.value)
        raise SQLSyntaxError(f"expected identifier, found {token.value!r} at {token.position}")

    def expect_end(self) -> None:
        """Assert that all tokens (apart from a trailing ';') were consumed."""
        self._accept_punct(";")
        if self._peek().type is not TokenType.END:
            token = self._peek()
            raise SQLSyntaxError(f"unexpected trailing token {token.value!r} at {token.position}")

    # -- statements -------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.matches_keyword("SELECT"):
            return self.parse_select()
        if token.matches_keyword("INSERT"):
            return self.parse_insert()
        if token.matches_keyword("UPDATE"):
            return self.parse_update()
        if token.matches_keyword("DELETE"):
            return self.parse_delete()
        if token.matches_keyword("CREATE"):
            return self.parse_create()
        if token.matches_keyword("DROP"):
            return self.parse_drop()
        if token.matches_keyword("BEGIN"):
            self._advance()
            return ast.Begin()
        if token.matches_keyword("START"):
            self._advance()
            self._expect_keyword("TRANSACTION")
            return ast.Begin()
        if token.matches_keyword("COMMIT"):
            self._advance()
            return ast.Commit()
        if token.matches_keyword("ROLLBACK"):
            self._advance()
            return ast.Rollback()
        raise SQLSyntaxError(f"unsupported statement starting with {token.value!r}")

    def parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        from_clause: Optional[ast.FromClause] = None
        if self._accept_keyword("FROM"):
            from_clause = self._parse_from()

        where = self.parse_expr() if self._accept_keyword("WHERE") else None

        group_by: list[ast.Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self._accept_punct(","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self._accept_keyword("HAVING") else None

        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())

        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_integer()
            if self._accept_punct(","):
                # MySQL's LIMIT offset, count form.
                offset, limit = limit, self._parse_integer()
            elif self._accept_keyword("OFFSET"):
                offset = self._parse_integer()

        return ast.Select(
            items=items,
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_integer(self) -> int:
        token = self._peek()
        if token.type is TokenType.NUMBER and isinstance(token.value, int):
            self._advance()
            return token.value
        raise SQLSyntaxError(f"expected integer, found {token.value!r}")

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return ast.SelectItem(expr, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_identifier()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return ast.TableRef(name, alias)

    def _parse_from(self) -> ast.FromClause:
        clause: ast.FromClause = self._parse_table_ref()
        while True:
            if self._accept_punct(","):
                # Implicit cross join; the WHERE clause carries the predicate.
                right = self._parse_table_ref()
                clause = ast.Join(clause, right, None, "INNER")
                continue
            join_type = None
            if self._check_keyword("JOIN"):
                join_type = "INNER"
                self._advance()
            elif self._check_keyword("INNER"):
                self._advance()
                self._expect_keyword("JOIN")
                join_type = "INNER"
            elif self._check_keyword("LEFT"):
                self._advance()
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                join_type = "LEFT"
            if join_type is None:
                break
            right = self._parse_table_ref()
            condition = None
            if self._accept_keyword("ON"):
                condition = self.parse_expr()
            clause = ast.Join(clause, right, condition, join_type)
        return clause

    def parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier())
            while self._accept_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self._accept_punct(","):
            rows.append(self._parse_value_row())
        return ast.Insert(table, columns, rows)

    def _parse_value_row(self) -> list[ast.Expression]:
        self._expect_punct("(")
        values = [self.parse_expr()]
        while self._accept_punct(","):
            values.append(self.parse_expr())
        self._expect_punct(")")
        return values

    def parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self._accept_keyword("WHERE") else None
        return ast.Update(table, assignments, where)

    def _parse_assignment(self) -> tuple[str, ast.Expression]:
        column = self._expect_identifier()
        token = self._peek()
        if token.type is not TokenType.OPERATOR or token.value != "=":
            raise SQLSyntaxError("expected = in SET assignment")
        self._advance()
        return column, self.parse_expr()

    def parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = self.parse_expr() if self._accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    def parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            if_not_exists = False
            if self._accept_keyword("IF"):
                self._expect_keyword("NOT")
                self._expect_keyword("EXISTS")
                if_not_exists = True
            table = self._expect_identifier()
            self._expect_punct("(")
            columns = [self._parse_column_def()]
            while self._accept_punct(","):
                columns.append(self._parse_column_def())
            self._expect_punct(")")
            return ast.CreateTable(table, columns, if_not_exists)
        unique = self._accept_keyword("UNIQUE")
        if self._accept_keyword("INDEX"):
            name = self._expect_identifier()
            self._expect_keyword("ON")
            table = self._expect_identifier()
            self._expect_punct("(")
            columns = [self._expect_identifier()]
            while self._accept_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
            return ast.CreateIndex(name, table, columns, unique)
        raise SQLSyntaxError("expected TABLE or INDEX after CREATE")

    def _parse_column_def(self) -> ColumnDef:
        name = self._expect_identifier()
        type_token = self._peek()
        if type_token.type is TokenType.IDENTIFIER:
            type_name = self._expect_identifier()
        elif type_token.type is TokenType.KEYWORD:
            type_name = str(self._advance().value)
        else:
            raise SQLSyntaxError(f"expected column type for {name}")
        length = None
        if self._accept_punct("("):
            length = self._parse_integer()
            # Ignore a precision component such as DECIMAL(10, 2).
            if self._accept_punct(","):
                self._parse_integer()
            self._expect_punct(")")
        column = ColumnDef(name, parse_type(type_name, length))
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                column.primary_key = True
                continue
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                column.nullable = False
                continue
            if self._accept_keyword("NULL"):
                column.nullable = True
                continue
            break
        return column

    def parse_drop(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        table = self._expect_identifier()
        return ast.DropTable(table, if_exists)

    # -- expressions (precedence climbing) ---------------------------------
    def parse_expr(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ("=", "<", ">", "<=", ">=", "<>", "!="):
            op = str(self._advance().value)
            if op == "<>":
                op = "!="
            return ast.BinaryOp(op, left, self._parse_additive())
        negated = False
        if self._check_keyword("NOT") and self._peek(1).matches_keyword("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            items = [self.parse_expr()]
            while self._accept_punct(","):
                items.append(self.parse_expr())
            self._expect_punct(")")
            return ast.InList(left, items, negated)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self._accept_keyword("LIKE"):
            return ast.Like(left, self._parse_additive(), negated)
        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(left, is_negated)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                op = str(self._advance().value)
                left = ast.BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                op = str(self._advance().value)
                left = ast.BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.BLOB:
            self._advance()
            return ast.Literal(token.value)
        if token.matches_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.type is TokenType.PLACEHOLDER:
            self._advance()
            placeholder = ast.Placeholder(self._param_index)
            self._param_index += 1
            return placeholder
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()
        if self._accept_punct("("):
            expr = self.parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENTIFIER or token.matches_keyword("LEFT", "KEY"):
            return self._parse_identifier_expression()
        raise SQLSyntaxError(f"unexpected token {token.value!r} at {token.position}")

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self._expect_identifier()
        # Function call.
        if self._accept_punct("("):
            distinct = self._accept_keyword("DISTINCT")
            args: list[ast.Expression] = []
            if not self._accept_punct(")"):
                args.append(self.parse_expr())
                while self._accept_punct(","):
                    args.append(self.parse_expr())
                self._expect_punct(")")
            return ast.FunctionCall(name, args, distinct)
        # Qualified column reference or table.*.
        if self._accept_punct("."):
            if self._peek().type is TokenType.OPERATOR and self._peek().value == "*":
                self._advance()
                return ast.Star(table=name)
            column = self._expect_identifier()
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

"""Query execution: translate AST statements into operations on storage."""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SQLExecutionError
from repro.sql import ast_nodes as ast
from repro.sql.expressions import (
    RowContext,
    evaluate,
    find_aggregates,
    is_truthy,
)
from repro.sql.functions import FunctionRegistry
from repro.sql.storage import Catalog, Table
from repro.sql.transactions import TransactionManager


class ResultSet:
    """The outcome of a statement: column names, result rows and a rowcount."""

    def __init__(self, columns: list[str], rows: list[tuple], rowcount: int = 0):
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount if rowcount else len(rows)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """Return the single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLExecutionError("result is not a single scalar")
        return self.rows[0][0]

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"


class Executor:
    """Executes parsed statements against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        functions: FunctionRegistry,
        transactions: TransactionManager,
    ):
        self.catalog = catalog
        self.functions = functions
        self.transactions = transactions
        #: SELECTs served by streaming ORDER BY ... LIMIT off an ordered index.
        self.index_order_scans = 0

    # -- dispatch -----------------------------------------------------------
    def execute(self, statement: ast.Statement) -> ResultSet:
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.CreateTable):
            self.catalog.create_table(statement.table, statement.columns, statement.if_not_exists)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.table, statement.if_exists)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.CreateIndex):
            table = self.catalog.table(statement.table)
            for column in statement.columns:
                table.create_index(column)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.Begin):
            self.transactions.begin()
            return ResultSet([], [], 0)
        if isinstance(statement, ast.Commit):
            self.transactions.commit()
            return ResultSet([], [], 0)
        if isinstance(statement, ast.Rollback):
            self.transactions.rollback()
            return ResultSet([], [], 0)
        raise SQLExecutionError(f"unsupported statement type {type(statement).__name__}")

    # -- INSERT / UPDATE / DELETE --------------------------------------------
    def _execute_insert(self, statement: ast.Insert) -> ResultSet:
        table = self.catalog.table(statement.table)
        columns = statement.columns or table.column_names
        count = 0
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise SQLExecutionError(
                    f"INSERT into {statement.table} has {len(row_exprs)} values "
                    f"for {len(columns)} columns"
                )
            values = {
                column: evaluate(expr, None, self.functions)
                for column, expr in zip(columns, row_exprs)
            }
            row_id = table.insert(values)
            self.transactions.record_insert(table.name, row_id)
            count += 1
        return ResultSet([], [], count)

    def _execute_update(self, statement: ast.Update) -> ResultSet:
        table = self.catalog.table(statement.table)
        matching = self._matching_rows(table, statement.where)
        # Assignments that call a UDF with a registered batch variant (the
        # shape of CryptDB's onion-adjustment UPDATEs) are evaluated
        # column-at-a-time, so per-row setup such as key schedules happens
        # once per column instead of once per cell.
        batch_values = self._batch_assignment_columns(statement, table, matching)
        count = 0
        for row_index, (row_id, row) in enumerate(matching):
            context = None
            changes = {}
            for position, (column, expr) in enumerate(statement.assignments):
                if position in batch_values:
                    changes[column] = batch_values[position][row_index]
                    continue
                if context is None:
                    context = RowContext.from_row(table.name, row)
                changes[column] = evaluate(expr, context, self.functions)
            previous = table.update(row_id, changes)
            self.transactions.record_update(table.name, row_id, previous)
            count += 1
        return ResultSet([], [], count)

    def _batch_assignment_columns(
        self,
        statement: ast.Update,
        table: Table,
        matching: list[tuple[int, dict[str, Any]]],
    ) -> dict[int, list]:
        """Evaluate batchable UDF assignments column-wise.

        Returns per-assignment-position result columns for assignments of
        the form ``col = UDF(literal-or-column, ...)`` where the UDF has a
        vectorized variant registered; everything else stays on the per-row
        path.
        """
        results: dict[int, list] = {}
        if not matching:
            return results
        for position, (_column, expr) in enumerate(statement.assignments):
            if not isinstance(expr, ast.FunctionCall):
                continue
            batch = self.functions.batch_scalar(expr.name)
            if batch is None or not expr.args:
                continue
            arg_columns: list[list] = []
            for arg in expr.args:
                if isinstance(arg, ast.Literal):
                    arg_columns.append([arg.value] * len(matching))
                elif (
                    isinstance(arg, ast.ColumnRef)
                    and (arg.table is None or arg.table == table.name)
                    and table.has_column(arg.name)
                ):
                    arg_columns.append([row[arg.name] for _, row in matching])
                else:
                    arg_columns = []
                    break
            else:
                results[position] = batch(*arg_columns)
        return results

    def _execute_delete(self, statement: ast.Delete) -> ResultSet:
        table = self.catalog.table(statement.table)
        matching = self._matching_rows(table, statement.where)
        count = 0
        for row_id, row in matching:
            removed = table.delete(row_id)
            self.transactions.record_delete(table.name, row_id, removed)
            count += 1
        return ResultSet([], [], count)

    def _matching_rows(
        self, table: Table, where: Optional[ast.Expression]
    ) -> list[tuple[int, dict[str, Any]]]:
        candidates = self._candidate_rows(table, where)
        if where is None:
            return candidates
        matched = []
        for row_id, row in candidates:
            context = RowContext.from_row(table.name, row)
            if is_truthy(evaluate(where, context, self.functions)):
                matched.append((row_id, row))
        return matched

    # -- index-aware row scans ------------------------------------------------
    def _candidate_rows(
        self, table: Table, where: Optional[ast.Expression]
    ) -> list[tuple[int, dict[str, Any]]]:
        """Use an index to narrow the scan when the WHERE clause allows it."""
        row_ids = self._index_candidates(table, where)
        if row_ids is None:
            return list(table.scan())
        return [(row_id, table.get(row_id)) for row_id in sorted(row_ids)]

    def _index_candidates(
        self, table: Table, where: Optional[ast.Expression]
    ) -> Optional[set[int]]:
        if where is None:
            return None
        for conjunct in _conjuncts(where):
            candidate = self._index_for_predicate(table, conjunct)
            if candidate is not None:
                return candidate
        return None

    def _where_index_narrowable(
        self, table: Table, where: Optional[ast.Expression]
    ) -> bool:
        """Whether :meth:`_index_candidates` would find a usable index.

        The same per-conjunct analysis, but probing eligibility only -- no
        candidate row-id set is materialised.
        """
        if where is None:
            return False
        return any(
            self._index_for_predicate(table, conjunct, probe=True) is not None
            for conjunct in _conjuncts(where)
        )

    def _index_for_predicate(
        self, table: Table, predicate: ast.Expression, probe: bool = False
    ):
        """Row ids matching an indexable predicate, or None if no usable index.

        With ``probe`` the method only answers eligibility (returning True
        instead of a row-id set), so callers can test index coverage without
        paying for the lookup.
        """
        indexes = table.indexes
        if isinstance(predicate, ast.BinaryOp) and predicate.op in ("=", "<", "<=", ">", ">="):
            column, literal = _column_and_literal(predicate, table)
            if column is None:
                return None
            value = literal.value
            if predicate.op == "=":
                if probe:
                    return True if column in indexes.hash_indexes \
                        or column in indexes.ordered_indexes else None
                return indexes.equality_lookup(column, value)
            if probe:
                return True if column in indexes.ordered_indexes else None
            swapped = isinstance(predicate.right, ast.ColumnRef)
            op = predicate.op
            if swapped:
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            if op in ("<", "<="):
                return indexes.range_lookup(column, None, value, True, op == "<=")
            return indexes.range_lookup(column, value, None, op == ">=", True)
        if isinstance(predicate, ast.Between) and not predicate.negated:
            if isinstance(predicate.expr, ast.ColumnRef) and isinstance(predicate.low, ast.Literal) \
                    and isinstance(predicate.high, ast.Literal):
                column = predicate.expr.name
                if table.has_column(column):
                    if probe:
                        return True if column in indexes.ordered_indexes else None
                    return indexes.range_lookup(
                        column, predicate.low.value, predicate.high.value, True, True
                    )
        return None

    # -- SELECT ---------------------------------------------------------------
    def _execute_select(self, statement: ast.Select) -> ResultSet:
        fast = self._indexed_order_limit(statement)
        if fast is not None:
            return fast
        contexts = self._from_contexts(statement)

        if statement.where is not None:
            contexts = [
                c for c in contexts
                if is_truthy(evaluate(statement.where, c, self.functions))
            ]

        aggregates = self._collect_aggregates(statement)
        if statement.group_by or aggregates:
            rows, columns, order_keys = self._grouped_select(statement, contexts, aggregates)
        else:
            rows, columns, order_keys = self._plain_select(statement, contexts)

        if statement.distinct:
            seen = set()
            unique_rows = []
            unique_keys = []
            for position, row in enumerate(rows):
                key = tuple(_hashable(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique_rows.append(row)
                    if order_keys:
                        unique_keys.append(order_keys[position])
            rows, order_keys = unique_rows, unique_keys

        if statement.order_by:
            paired = sorted(zip(order_keys, rows), key=lambda pair: pair[0])
            rows = [row for _, row in paired]

        offset = statement.offset or 0
        if offset:
            rows = rows[offset:]
        if statement.limit is not None:
            rows = rows[: statement.limit]

        return ResultSet(columns, rows)

    def _indexed_order_limit(self, statement: ast.Select) -> Optional[ResultSet]:
        """Serve ``ORDER BY col LIMIT k`` by streaming an ordered index.

        When the sort column has an ordered index over a single-table FROM,
        rows are visited in sort order and the scan stops after
        ``OFFSET + LIMIT`` matches, instead of materialising and sorting the
        full match set.  Returns None when the statement does not qualify
        (joins, grouping, aggregates, DISTINCT, a non-column sort key, a
        WHERE clause an index can already narrow, or a sort column with
        NULLs, which the index does not cover).
        """
        if not statement.limit or statement.distinct:  # None or LIMIT 0
            return None
        if statement.group_by or statement.having is not None:
            return None
        if len(statement.order_by) != 1:
            return None
        if not isinstance(statement.from_clause, ast.TableRef):
            return None
        order = statement.order_by[0]
        if not isinstance(order.expr, ast.ColumnRef):
            return None
        effective = statement.from_clause.effective_name
        if order.expr.table is not None and order.expr.table != effective:
            return None
        table = self.catalog.table(statement.from_clause.name)
        index = table.indexes.ordered_indexes.get(order.expr.name)
        if index is None:
            return None
        if len(index) != table.row_count():
            return None  # NULL sort keys are absent from the index
        if self._collect_aggregates(statement):
            return None
        if self._where_index_narrowable(table, statement.where):
            # A selective indexed WHERE (e.g. the TPC-C "latest order for
            # one customer" shape) narrows better than walking the whole
            # ordered index; keep the materialising path for it.
            return None
        self.index_order_scans += 1
        needed = (statement.offset or 0) + statement.limit
        contexts: list[RowContext] = []
        for row_id in index.scan_sorted(descending=not order.ascending):
            context = RowContext.from_row(effective, table.get(row_id))
            if statement.where is not None and not is_truthy(
                evaluate(statement.where, context, self.functions)
            ):
                continue
            contexts.append(context)
            if len(contexts) >= needed:
                break
        contexts = contexts[statement.offset or 0 :]
        # Contexts already arrive in sort order and sliced to LIMIT, so the
        # shared projection's order keys are computed but not needed.
        rows, columns, _order_keys = self._plain_select(statement, contexts)
        return ResultSet(columns, rows)

    def _collect_aggregates(self, statement: ast.Select) -> list[ast.FunctionCall]:
        aggregates: list[ast.FunctionCall] = []
        for item in statement.items:
            aggregates.extend(find_aggregates(item.expr, self.functions))
        aggregates.extend(find_aggregates(statement.having, self.functions))
        for order in statement.order_by:
            aggregates.extend(find_aggregates(order.expr, self.functions))
        return aggregates

    # -- FROM clause ------------------------------------------------------------
    def _from_contexts(self, statement: ast.Select) -> list[RowContext]:
        if statement.from_clause is None:
            return [RowContext({})]
        return self._clause_contexts(statement.from_clause, statement.where)

    def _clause_contexts(
        self, clause: ast.FromClause, where: Optional[ast.Expression]
    ) -> list[RowContext]:
        if isinstance(clause, ast.TableRef):
            table = self.catalog.table(clause.name)
            effective = clause.effective_name
            rows = self._candidate_rows(table, where if _single_table(where, effective, table) else None)
            return [RowContext.from_row(effective, row) for _, row in rows]
        if isinstance(clause, ast.Join):
            left_contexts = self._clause_contexts(clause.left, None)
            right_table = self.catalog.table(clause.right.name)
            right_name = clause.right.effective_name
            right_rows = [
                RowContext.from_row(right_name, row) for _, row in right_table.scan()
            ]
            # NULL-extension template for LEFT joins, built from the schema:
            # an empty right table must still contribute its column names.
            null_row = RowContext(
                {(right_name, column): None for column in right_table.column_names}
            )
            return self._join(left_contexts, right_rows, clause, null_row)
        raise SQLExecutionError(f"unsupported FROM clause {clause!r}")

    def _join(
        self,
        left_contexts: list[RowContext],
        right_contexts: list[RowContext],
        clause: ast.Join,
        null_row: RowContext,
    ) -> list[RowContext]:
        """Join two context sets, hash-joining on any equality conjunct.

        Equality terms may be plain column references or single-column UDF
        calls -- in particular the ``ADJ_PART(C_Eq) = ADJ_PART(C_Eq)``
        comparisons CryptDB's rewriter emits for equi-joins over DET-JOIN
        ciphertexts, which previously fell through to the nested loop and
        paid two UDF evaluations per candidate *pair*.  The hash join
        evaluates each side's key expression once per row; remaining
        conjuncts are applied as a residual filter.  Non-equi conditions
        fall back to the nested loop.
        """
        for terms in _hash_join_candidates(clause.condition):
            joined = self._try_hash_join(
                left_contexts, right_contexts, clause, terms, null_row
            )
            if joined is not None:
                return joined
        return self._nested_loop_join(left_contexts, right_contexts, clause, null_row)

    def _try_hash_join(
        self,
        left_contexts: list[RowContext],
        right_contexts: list[RowContext],
        clause: ast.Join,
        terms: tuple[tuple[ast.Expression, ast.Expression], Optional[ast.Expression]],
        null_row: RowContext,
    ) -> Optional[list[RowContext]]:
        """Hash-join on one equality term, or None if it cannot key a side.

        A key expression that is not evaluable against one side alone (e.g.
        it mixes columns of both tables) would silently drop rows, so the
        caller falls through to the next candidate term -- and ultimately to
        the nested loop.
        """
        (left_expr, right_expr), residual = terms
        buckets: dict[Any, list[RowContext]] = {}
        for context in right_contexts:
            key = self._join_key(right_expr, left_expr, context)
            if key is _UNRESOLVED:
                return None
            if key is not None:
                buckets.setdefault(key, []).append(context)
        joined: list[RowContext] = []
        for left in left_contexts:
            key = self._join_key(left_expr, right_expr, left)
            if key is _UNRESOLVED:
                return None
            matched = False
            if key is not None:
                for right in buckets.get(key, ()):
                    merged = left.merged_with(right)
                    if residual is None or is_truthy(
                        evaluate(residual, merged, self.functions)
                    ):
                        joined.append(merged)
                        matched = True
            if not matched and clause.join_type == "LEFT":
                joined.append(left.merged_with(null_row))
        return joined

    def _join_key(
        self, primary: ast.Expression, fallback: ast.Expression, context: RowContext
    ) -> Any:
        """Evaluate a row's join key, trying the term bound to its side first.

        Returns ``_UNRESOLVED`` when neither term can be evaluated against
        this context, and None for a genuine NULL key (which joins nothing).
        """
        for expr in (primary, fallback):
            try:
                value = evaluate(expr, context, self.functions)
            except SQLExecutionError:
                continue
            return None if value is None else _hashable(value)
        return _UNRESOLVED

    def _nested_loop_join(
        self,
        left_contexts: list[RowContext],
        right_contexts: list[RowContext],
        clause: ast.Join,
        null_row: RowContext,
    ) -> list[RowContext]:
        condition = clause.condition
        joined: list[RowContext] = []
        for left in left_contexts:
            matched = False
            for right in right_contexts:
                merged = left.merged_with(right)
                if condition is None or is_truthy(evaluate(condition, merged, self.functions)):
                    joined.append(merged)
                    matched = True
            if not matched and clause.join_type == "LEFT":
                joined.append(left.merged_with(null_row))
        return joined

    # -- projection --------------------------------------------------------------
    def _expand_items(
        self, statement: ast.Select, sample: Optional[RowContext]
    ) -> list[ast.SelectItem]:
        items: list[ast.SelectItem] = []
        for item in statement.items:
            if isinstance(item.expr, ast.Star):
                if sample is None:
                    raise SQLExecutionError("SELECT * requires a FROM clause")
                for table, column in sample.columns():
                    if item.expr.table is None or item.expr.table == table:
                        items.append(ast.SelectItem(ast.ColumnRef(column, table), None))
            else:
                items.append(item)
        return items

    def _output_name(self, item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        return item.expr.to_sql()

    def _plain_select(
        self, statement: ast.Select, contexts: list[RowContext]
    ) -> tuple[list[tuple], list[str], list]:
        sample = contexts[0] if contexts else self._sample_context(statement)
        items = self._expand_items(statement, sample)
        columns = [self._output_name(i) for i in items]
        rows = []
        order_keys = []
        for context in contexts:
            row = tuple(evaluate(i.expr, context, self.functions) for i in items)
            rows.append(row)
            if statement.order_by:
                order_keys.append(
                    self._order_keys(statement, row, columns, context, None)
                )
        return rows, columns, order_keys

    def _sample_context(self, statement: ast.Select) -> Optional[RowContext]:
        """A row context with NULLs for every column, used when no rows match."""
        if statement.from_clause is None:
            return None
        values: dict[tuple[Optional[str], str], Any] = {}

        def add_table(ref: ast.TableRef) -> None:
            table = self.catalog.table(ref.name)
            for column in table.column_names:
                values[(ref.effective_name, column)] = None

        clause = statement.from_clause
        while isinstance(clause, ast.Join):
            add_table(clause.right)
            clause = clause.left
        add_table(clause)
        return RowContext(values)

    # -- grouping / aggregation -----------------------------------------------
    def _grouped_select(
        self,
        statement: ast.Select,
        contexts: list[RowContext],
        aggregates: list[ast.FunctionCall],
    ) -> tuple[list[tuple], list[str], list]:
        sample = contexts[0] if contexts else self._sample_context(statement)
        items = self._expand_items(statement, sample)
        columns = [self._output_name(i) for i in items]

        groups: dict[tuple, list[RowContext]] = {}
        if statement.group_by:
            for context in contexts:
                key = tuple(
                    _hashable(evaluate(g, context, self.functions)) for g in statement.group_by
                )
                groups.setdefault(key, []).append(context)
        else:
            groups[()] = contexts

        rows: list[tuple] = []
        order_keys: list = []
        for _, members in groups.items():
            aggregate_values = self._compute_aggregates(aggregates, members)
            representative = members[0] if members else sample
            if statement.having is not None:
                having_value = evaluate(
                    statement.having, representative, self.functions, aggregate_values
                )
                if not is_truthy(having_value):
                    continue
            row = tuple(
                evaluate(i.expr, representative, self.functions, aggregate_values)
                for i in items
            )
            rows.append(row)
            if statement.order_by:
                order_keys.append(
                    self._order_keys(statement, row, columns, representative, aggregate_values)
                )
        return rows, columns, order_keys

    def _compute_aggregates(
        self, aggregates: list[ast.FunctionCall], members: list[RowContext]
    ) -> dict[int, Any]:
        results: dict[int, Any] = {}
        for call in aggregates:
            spec = self.functions.aggregate(call.name)
            state = spec.initial()
            seen_distinct: set = set()
            for context in members:
                if call.args and not isinstance(call.args[0], ast.Star):
                    value = evaluate(call.args[0], context, self.functions)
                else:
                    value = 1  # COUNT(*)
                if value is None and spec.skip_nulls:
                    continue
                if call.distinct:
                    key = _hashable(value)
                    if key in seen_distinct:
                        continue
                    seen_distinct.add(key)
                state = spec.step(state, value)
            results[id(call)] = spec.finalize(state)
        return results

    # -- ordering ----------------------------------------------------------------
    def _order_keys(
        self,
        statement: ast.Select,
        row: tuple,
        columns: list[str],
        context: Optional[RowContext],
        aggregate_values: Optional[dict[int, Any]],
    ) -> list["_SortKey"]:
        """Sort keys for one result row.

        ORDER BY may reference an output column (alias or position), or any
        column/expression of the underlying row -- including columns that are
        not projected -- so we evaluate against the row's context when the
        output row does not carry the value.
        """
        keys = []
        for order in statement.order_by:
            value = self._order_value(order.expr, row, columns, context, aggregate_values)
            keys.append(_SortKey(value, order.ascending))
        return keys

    def _order_value(
        self,
        expr: ast.Expression,
        row: tuple,
        columns: list[str],
        context: Optional[RowContext],
        aggregate_values: Optional[dict[int, Any]],
    ) -> Any:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if 0 <= position < len(row):
                return row[position]
        if context is not None:
            try:
                return evaluate(expr, context, self.functions, aggregate_values)
            except SQLExecutionError:
                pass
        if isinstance(expr, ast.ColumnRef) and expr.name in columns:
            return row[columns.index(expr.name)]
        output_context = RowContext({(None, name): value for name, value in zip(columns, row)})
        try:
            return evaluate(expr, output_context, self.functions, aggregate_values)
        except SQLExecutionError:
            return None


class _SortKey:
    """Sort helper implementing NULLS FIRST and DESC ordering."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: Any, ascending: bool):
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return self.ascending
        if b is None:
            return not self.ascending
        try:
            less = a < b
        except TypeError:
            less = str(a) < str(b)
        return less if self.ascending else (not less and a != b)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


#: Sentinel for join keys that could not be evaluated against one side.
_UNRESOLVED = object()


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


def _conjuncts(expr: ast.Expression) -> list[ast.Expression]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _column_and_literal(
    predicate: ast.BinaryOp, table: Table
) -> tuple[Optional[str], ast.Literal]:
    left, right = predicate.left, predicate.right
    if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
        if table.has_column(left.name):
            return left.name, right
    if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
        if table.has_column(right.name):
            return right.name, left
    return None, ast.Literal(None)


def _single_table(
    where: Optional[ast.Expression], table_name: str, table: Table
) -> bool:
    """True when the WHERE clause only references this table's columns."""
    if where is None:
        return True
    for node in ast.walk_expression(where):
        if isinstance(node, ast.ColumnRef):
            if node.table is not None and node.table != table_name:
                return False
            if node.table is None and not table.has_column(node.name):
                return False
    return True


def _is_join_key_expression(expr: ast.Expression) -> bool:
    """True for expressions usable as one side of a hash-join key.

    A plain column reference, or a scalar function call over column
    references and literals (at least one column) -- the shape the CryptDB
    rewriter produces for DET-JOIN equality (``ADJ_PART(C_Eq)``).
    """
    if isinstance(expr, ast.ColumnRef):
        return True
    if isinstance(expr, ast.FunctionCall) and expr.args:
        has_column = False
        for arg in expr.args:
            if isinstance(arg, ast.ColumnRef):
                has_column = True
            elif not isinstance(arg, ast.Literal):
                return False
        return has_column
    return False


def _hash_join_candidates(
    condition: Optional[ast.Expression],
) -> list[tuple[tuple[ast.Expression, ast.Expression], Optional[ast.Expression]]]:
    """Split a join condition into hashable equalities and residual filters.

    Returns one ``((left_term, right_term), residual)`` entry per
    ``expr = expr`` conjunct whose sides are both join-key expressions, with
    the remaining conjuncts folded back into one residual predicate (or
    None).  The executor tries each candidate in turn, since an equality
    whose sides both live in one table cannot key a hash join even though it
    is shaped like one.
    """
    if condition is None:
        return []
    conjuncts = _conjuncts(condition)
    candidates = []
    for position, conjunct in enumerate(conjuncts):
        if (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and _is_join_key_expression(conjunct.left)
            and _is_join_key_expression(conjunct.right)
        ):
            rest = conjuncts[:position] + conjuncts[position + 1 :]
            residual = None
            for other in rest:
                residual = other if residual is None else ast.BinaryOp("AND", residual, other)
            candidates.append(((conjunct.left, conjunct.right), residual))
    return candidates



"""Expression evaluation with SQL three-valued logic.

Comparisons and arithmetic involving NULL yield NULL; AND/OR follow Kleene
logic; the WHERE clause keeps a row only when the predicate evaluates to a
truthy (non-NULL, non-false) value.  CryptDB exposes NULLs to the DBMS
unencrypted (section 3.3), so the engine's NULL semantics must match a stock
DBMS for rewritten queries to behave identically.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.errors import SQLExecutionError
from repro.sql import ast_nodes as ast
from repro.sql.functions import FunctionRegistry


class RowContext:
    """Resolves column references against the current row.

    ``values`` maps ``(table_or_alias, column)`` tuples to values; unqualified
    lookups succeed when the column name is unambiguous across tables.
    """

    def __init__(self, values: dict[tuple[Optional[str], str], Any]):
        self._values = values
        self._unqualified: dict[str, list[Any]] = {}
        for (table, column), value in values.items():
            self._unqualified.setdefault(column, []).append(value)

    @classmethod
    def from_row(cls, table_name: Optional[str], row: dict[str, Any]) -> "RowContext":
        return cls({(table_name, column): value for column, value in row.items()})

    def merged_with(self, other: "RowContext") -> "RowContext":
        combined = dict(self._values)
        combined.update(other._values)
        return RowContext(combined)

    def lookup(self, ref: ast.ColumnRef) -> Any:
        if ref.table is not None:
            key = (ref.table, ref.name)
            if key in self._values:
                return self._values[key]
            raise SQLExecutionError(f"unknown column {ref.table}.{ref.name}")
        candidates = self._unqualified.get(ref.name)
        if candidates is None:
            raise SQLExecutionError(f"unknown column {ref.name}")
        if len(candidates) > 1:
            raise SQLExecutionError(f"ambiguous column {ref.name}")
        return candidates[0]

    def columns(self) -> list[tuple[Optional[str], str]]:
        return list(self._values.keys())

    def value_map(self) -> dict[tuple[Optional[str], str], Any]:
        return dict(self._values)


def is_truthy(value: Any) -> bool:
    """SQL WHERE semantics: NULL and false both reject the row."""
    if value is None:
        return False
    return bool(value)


def like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern (%, _) to a compiled regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


def evaluate(
    expr: ast.Expression,
    context: Optional[RowContext],
    functions: FunctionRegistry,
    aggregate_values: Optional[dict[int, Any]] = None,
) -> Any:
    """Evaluate an expression against a row context.

    ``aggregate_values`` maps ``id(FunctionCall)`` of already-computed
    aggregate calls to their value, which is how grouped queries inject
    aggregate results into HAVING and projection expressions.
    """
    if aggregate_values is not None and id(expr) in aggregate_values:
        return aggregate_values[id(expr)]

    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        if context is None:
            raise SQLExecutionError(f"column {expr.name} referenced without a row context")
        return context.lookup(expr)
    if isinstance(expr, ast.Star):
        raise SQLExecutionError("* is only valid in projections and COUNT(*)")
    if isinstance(expr, ast.BinaryOp):
        return _evaluate_binary(expr, context, functions, aggregate_values)
    if isinstance(expr, ast.UnaryOp):
        operand = evaluate(expr.operand, context, functions, aggregate_values)
        if expr.op == "NOT":
            if operand is None:
                return None
            return not is_truthy(operand)
        if expr.op == "-":
            return None if operand is None else -operand
        raise SQLExecutionError(f"unknown unary operator {expr.op}")
    if isinstance(expr, ast.FunctionCall):
        if functions.is_aggregate(expr.name):
            raise SQLExecutionError(
                f"aggregate {expr.name} used outside of a grouped query context"
            )
        args = [evaluate(a, context, functions, aggregate_values) for a in expr.args]
        return functions.call_scalar(expr.name, args)
    if isinstance(expr, ast.InList):
        value = evaluate(expr.expr, context, functions, aggregate_values)
        if value is None:
            return None
        found = False
        saw_null = False
        for item in expr.items:
            candidate = evaluate(item, context, functions, aggregate_values)
            if candidate is None:
                saw_null = True
            elif _compare_equal(value, candidate):
                found = True
                break
        if found:
            return not expr.negated
        if saw_null:
            return None
        return expr.negated
    if isinstance(expr, ast.Between):
        value = evaluate(expr.expr, context, functions, aggregate_values)
        low = evaluate(expr.low, context, functions, aggregate_values)
        high = evaluate(expr.high, context, functions, aggregate_values)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if expr.negated else result
    if isinstance(expr, ast.Like):
        value = evaluate(expr.expr, context, functions, aggregate_values)
        pattern = evaluate(expr.pattern, context, functions, aggregate_values)
        if value is None or pattern is None:
            return None
        result = bool(like_to_regex(str(pattern)).match(str(value)))
        return not result if expr.negated else result
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.expr, context, functions, aggregate_values)
        result = value is None
        return not result if expr.negated else result
    raise SQLExecutionError(f"cannot evaluate expression {expr!r}")


def _compare_equal(a: Any, b: Any) -> bool:
    try:
        return a == b
    except TypeError:
        return False


def _coerce_comparison(a: Any, b: Any) -> tuple[Any, Any]:
    """Allow numeric-vs-string comparisons the way MySQL loosely does."""
    if isinstance(a, (int, float)) and isinstance(b, str):
        try:
            return a, float(b) if "." in b else int(b)
        except ValueError:
            return str(a), b
    if isinstance(b, (int, float)) and isinstance(a, str):
        try:
            return float(a) if "." in a else int(a), b
        except ValueError:
            return a, str(b)
    if isinstance(a, bool):
        a = int(a)
    if isinstance(b, bool):
        b = int(b)
    return a, b


def _evaluate_binary(
    expr: ast.BinaryOp,
    context: Optional[RowContext],
    functions: FunctionRegistry,
    aggregate_values: Optional[dict[int, Any]],
) -> Any:
    op = expr.op
    if op in ("AND", "OR"):
        left = evaluate(expr.left, context, functions, aggregate_values)
        right = evaluate(expr.right, context, functions, aggregate_values)
        return _kleene(op, left, right)

    left = evaluate(expr.left, context, functions, aggregate_values)
    right = evaluate(expr.right, context, functions, aggregate_values)
    if left is None or right is None:
        return None

    if op in ("=", "!=", "<", "<=", ">", ">="):
        a, b = _coerce_comparison(left, right)
        try:
            if op == "=":
                return a == b
            if op == "!=":
                return a != b
            if op == "<":
                return a < b
            if op == "<=":
                return a <= b
            if op == ">":
                return a > b
            return a >= b
        except TypeError as exc:
            raise SQLExecutionError(
                f"cannot compare {type(left).__name__} and {type(right).__name__}"
            ) from exc

    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None
        result = left / right
        return result
    if op == "%":
        if right == 0:
            return None
        return left % right
    raise SQLExecutionError(f"unknown operator {op}")


def _kleene(op: str, left: Any, right: Any) -> Any:
    left_bool = None if left is None else is_truthy(left)
    right_bool = None if right is None else is_truthy(right)
    if op == "AND":
        if left_bool is False or right_bool is False:
            return False
        if left_bool is None or right_bool is None:
            return None
        return True
    # OR
    if left_bool is True or right_bool is True:
        return True
    if left_bool is None or right_bool is None:
        return None
    return False


def find_aggregates(expr: Optional[ast.Expression], functions: FunctionRegistry) -> list[ast.FunctionCall]:
    """Return all aggregate FunctionCall nodes inside ``expr``."""
    found: list[ast.FunctionCall] = []
    for node in ast.walk_expression(expr):
        if isinstance(node, ast.FunctionCall) and functions.is_aggregate(node.name):
            found.append(node)
    return found

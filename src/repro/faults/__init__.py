"""Deterministic, seeded fault injection for the whole proxy stack.

Production hardening needs failures on demand: a peer that dies mid-COMMIT,
a crypto worker SIGKILLed mid-scatter, a backend statement that errors out
halfway through an onion adjustment.  This package is the single registry
those experiments share.  A :class:`FaultPlan` -- a seed plus per-site
rules -- is *armed* process-wide; instrumented call sites then ask the
active :class:`FaultInjector` whether a fault fires at their site, and the
injector answers deterministically from per-rule RNG streams seeded only by
``(plan seed, rule index, site)``.  Replaying the same plan against the
same statement stream reproduces the same fault schedule.

Instrumented sites (each hook threaded through the corresponding layer):

=======================  ====================================================
``transport.send``       sealing a record in :class:`SecureChannel.seal`
``transport.recv``       opening a record in :class:`SecureChannel.open`
``server.session.execute``  statement admission in ``SessionManager.execute``
``pool.scatter``         a batch entering ``CryptoWorkerPool.scatter``
``backend.execute``      a statement entering a backend adapter
``paillier.refill``      scheduling a background HOM randomness refill
=======================  ====================================================

**Zero overhead disarmed.**  Every hook is written as::

    if faults.INJECTOR is not None:
        faults.INJECTOR.fire("backend.execute", target=self, head=...)

so the disarmed cost is one module-attribute load and an ``is not None``
test -- no call, no context construction (the keyword arguments are only
evaluated inside the guard).  ``bench_server_concurrency.py`` asserts the
end-to-end cost of the disarmed layer stays under 2% of the p50 statement
latency.

Rules fire by probability, by explicit 1-based hit numbers, or on every Nth
hit, optionally capped by ``max_fires`` and filtered by context (``match``/
``exclude`` on the keyword arguments the site passes, ``scope`` compared by
identity against the site's ``target``).  The effect is an exception
(``kind="error"``, with a per-site default class that surfaces as a clean
DB-API error), a delay (``kind="delay"``), or an arbitrary callable
(``kind="call"`` -- e.g. :func:`kill_one_worker`).
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ReproError

#: Crash points of the durable metadata catalog and the two-phase onion
#: adjustment protocol (:mod:`repro.durability`).  A fault here raises
#: :class:`~repro.errors.SimulatedCrash`, which by contract no layer treats
#: as recoverable: it models the process dying at that exact instruction.
CRASH_SITES = (
    "wal.append",      # before a record enters the WAL buffer
    "wal.fsync",       # before buffered records reach the file + fsync
    "adjust.intent",   # INTENT durable, before the backend UPDATEs begin
    "adjust.applied",  # UPDATEs executed, before the backend COMMIT
    "adjust.commit",   # backend committed, before the COMMIT record logs
    "snapshot.write",  # before a compacted snapshot replaces the WAL
)

#: The instrumented site names, for validation and documentation.
SITES = (
    "transport.send",
    "transport.recv",
    "server.session.execute",
    "pool.scatter",
    "backend.execute",
    "paillier.refill",
) + CRASH_SITES


class FaultInjected(ReproError):
    """Default exception for injected faults without a configured class."""


def _default_exception(site: str) -> BaseException:
    """A site-appropriate exception so reactions engage realistically.

    Imports are deferred: this module must stay importable from every layer
    it instruments without creating cycles.
    """
    if site.startswith("transport."):
        from repro.server.transport import TransportError

        return TransportError(f"injected fault at {site}")
    if site == "server.session.execute":
        from repro.api import exceptions

        return exceptions.OperationalError(
            f"injected fault at {site} (retryable)"
        )
    if site == "backend.execute":
        from repro.errors import SQLExecutionError

        return SQLExecutionError(f"injected fault at {site}")
    if site == "pool.scatter":
        from repro.parallel.pool import ParallelUnavailable

        return ParallelUnavailable(f"injected fault at {site}")
    if site in CRASH_SITES:
        from repro.errors import SimulatedCrash

        return SimulatedCrash(f"simulated crash at {site}")
    return FaultInjected(f"injected fault at {site}")


@dataclass(frozen=True)
class FaultRule:
    """When and how one fault fires at one site.

    ``match`` maps context keys to allowed value tuples (the site's context
    value must be in the tuple); ``exclude`` maps keys to forbidden tuples.
    A rule with ``scope`` set only fires when the site's ``target`` is that
    exact object -- how a test confines backend faults to the chaos lane's
    backend while an identical shadow backend runs fault-free.
    """

    site: str
    probability: float = 0.0
    trigger_hits: tuple = ()
    every_n: int = 0
    max_fires: Optional[int] = None
    kind: str = "error"  # error | delay | call
    exception: Optional[Callable[[], BaseException]] = None
    delay: float = 0.05
    action: Optional[Callable[[dict], None]] = None
    match: dict = field(default_factory=dict)
    exclude: dict = field(default_factory=dict)
    scope: Any = None

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r} (one of {SITES})")
        if self.kind not in ("error", "delay", "call"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "call" and self.action is None:
            raise ValueError("kind='call' requires an action callable")

    def accepts(self, context: dict) -> bool:
        if self.scope is not None and context.get("target") is not self.scope:
            return False
        for key, allowed in self.match.items():
            if context.get(key) not in allowed:
                return False
        for key, forbidden in self.exclude.items():
            if context.get(key) in forbidden:
                return False
        return True

    def decides_to_fire(self, hit: int, fires: int, rng: random.Random) -> bool:
        """Deterministic decision for the ``hit``-th *accepted* call."""
        if self.max_fires is not None and fires >= self.max_fires:
            return False
        if hit in self.trigger_hits:
            return True
        if self.every_n and hit % self.every_n == 0:
            return True
        if self.probability > 0 and rng.random() < self.probability:
            return True
        return False


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules of one reproducible fault schedule."""

    seed: int
    rules: tuple

    def __init__(self, seed: int, rules):
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "rules", tuple(rules))

    def describe(self) -> str:
        lines = [f"FaultPlan(seed={self.seed})"]
        lines.extend(f"  {rule}" for rule in self.rules)
        return "\n".join(lines)


@dataclass
class FiredFault:
    """One fault that actually fired, for assertions and reports."""

    site: str
    rule_index: int
    kind: str
    hit: int


class FaultInjector:
    """The armed state of one plan: counters, RNG streams, fired log."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._paused = 0
        # Per-(rule, accepted-hit) decisions must not depend on thread
        # interleaving across *sites*, so each rule keeps its own accepted-hit
        # counter and its own RNG stream, seeded by stable strings (str seeds
        # hash through SHA-512 in random.seed, independent of PYTHONHASHSEED).
        self._rule_hits = [0] * len(plan.rules)
        self._rule_fires = [0] * len(plan.rules)
        self._rngs = [
            random.Random(f"{plan.seed}:{index}:{rule.site}")
            for index, rule in enumerate(plan.rules)
        ]
        self.site_hits: dict[str, int] = {}
        self.fired: list[FiredFault] = []

    # -- hot path ----------------------------------------------------------
    def fire(self, site: str, **context: Any) -> None:
        """Maybe inject a fault at ``site``; raises/sleeps/calls per rule.

        At most one rule fires per call (the first that decides to), so a
        plan with overlapping rules still produces one fault per event.
        """
        with self._lock:
            if self._paused:
                return
            self.site_hits[site] = self.site_hits.get(site, 0) + 1
            chosen: Optional[tuple[int, FaultRule]] = None
            for index, rule in enumerate(self.plan.rules):
                if rule.site != site or not rule.accepts(context):
                    continue
                self._rule_hits[index] += 1
                if chosen is None and rule.decides_to_fire(
                    self._rule_hits[index], self._rule_fires[index], self._rngs[index]
                ):
                    chosen = (index, rule)
            if chosen is None:
                return
            index, rule = chosen
            self._rule_fires[index] += 1
            self.fired.append(
                FiredFault(site, index, rule.kind, self.site_hits[site])
            )
        # Effects run outside the lock: a delay must not serialize other
        # threads' hooks, and an action may re-enter (e.g. killing a worker
        # makes the pool's machinery run).
        if rule.kind == "delay":
            time.sleep(rule.delay)
            return
        if rule.kind == "call":
            rule.action(context)
            return
        if rule.exception is not None:
            raise rule.exception()
        raise _default_exception(site)

    # -- bookkeeping -------------------------------------------------------
    @property
    def fired_count(self) -> int:
        return len(self.fired)

    def stats(self) -> dict:
        """Per-site hits and per-rule fires (for reports and assertions)."""
        return {
            "site_hits": dict(self.site_hits),
            "rule_fires": list(self._rule_fires),
            "fired": len(self.fired),
        }

    @contextmanager
    def pause(self):
        """Suspend injection (e.g. while an invariant probe runs)."""
        with self._lock:
            self._paused += 1
        try:
            yield
        finally:
            with self._lock:
                self._paused -= 1


#: The process-wide armed injector; ``None`` means injection is disarmed
#: and every hook short-circuits on this very check.
INJECTOR: Optional[FaultInjector] = None


def arm(plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` process-wide; returns the injector for inspection."""
    global INJECTOR
    injector = FaultInjector(plan)
    INJECTOR = injector
    return injector


def disarm() -> None:
    global INJECTOR
    INJECTOR = None


@contextmanager
def armed(plan: FaultPlan):
    """``with faults.armed(plan) as injector:`` -- always disarms on exit."""
    injector = arm(plan)
    try:
        yield injector
    finally:
        disarm()


@contextmanager
def paused():
    """Suspend the armed injector, if any (no-op when disarmed)."""
    injector = INJECTOR
    if injector is None:
        yield
    else:
        with injector.pause():
            yield


# ---------------------------------------------------------------------------
# stock actions for kind="call" rules
# ---------------------------------------------------------------------------
def crash(site: str, at_hit: int = 1, scope: Any = None) -> FaultRule:
    """A one-shot rule that kills the process at a named crash point.

    The rule raises :class:`~repro.errors.SimulatedCrash` on the
    ``at_hit``-th accepted hit of ``site`` (one of :data:`CRASH_SITES`) and
    never fires again; ``scope`` confines it to one catalog or proxy so a
    fault-free shadow can run alongside.  The recovery harness arms one of
    these, lets the stream run until the proxy "dies", then rebuilds it from
    snapshot+WAL and verifies zero divergence.
    """
    if site not in CRASH_SITES:
        raise ValueError(f"{site!r} is not a crash point (one of {CRASH_SITES})")
    from repro.errors import SimulatedCrash

    return FaultRule(
        site=site,
        trigger_hits=(at_hit,),
        max_fires=1,
        kind="error",
        exception=lambda: SimulatedCrash(f"simulated crash at {site}"),
        scope=scope,
    )


def kill_one_worker(context: dict) -> None:
    """SIGKILL one live process of the pool passed as the site's ``target``.

    For ``pool.scatter`` rules: the batch then runs against a pool with a
    freshly dead worker, exercising the timeout + self-healing machinery
    exactly like a real worker crash.
    """
    pool = context.get("target")
    raw = getattr(pool, "_pool", None)
    workers = list(getattr(raw, "_pool", None) or [])
    for process in workers:
        if process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
            return

"""Static functional analysis: which computation classes does each column need?

This reproduces the offline analysis the paper runs over the sql.mit.edu
trace and over each application's query set (the left half of Figure 9):
for every column it determines whether CryptDB can support the observed
queries over ciphertext, which encryption schemes are required (HOM for
SUM/increments, SEARCH for word search), and the steady-state onion level the
column would end up at.  It works purely on parsed SQL -- no keys, no data --
so it scales to trace-sized inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.onion import ComputationClass
from repro.errors import SQLError
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_sql

#: Scalar functions CryptDB cannot evaluate over ciphertext when applied to a
#: column inside a predicate (string/date manipulation, maths, bit twiddling).
_PLAINTEXT_FUNCTIONS = {
    "LOWER", "UPPER", "SUBSTRING", "SUBSTR", "CONCAT", "LENGTH", "ROUND",
    "ABS", "MOD", "YEAR", "MONTH", "DAY", "DATE_FORMAT",
}

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG"}


@dataclass
class ColumnUsage:
    """Accumulated computation classes for one column."""

    table: str
    column: str
    classes: set[ComputationClass] = field(default_factory=set)

    @property
    def needs_plaintext(self) -> bool:
        return ComputationClass.PLAINTEXT in self.classes

    @property
    def needs_hom(self) -> bool:
        return ComputationClass.ADDITION in self.classes

    @property
    def needs_search(self) -> bool:
        return ComputationClass.WORD_SEARCH in self.classes

    def min_enc(self) -> str:
        """Steady-state MinEnc class (RND / SEARCH / DET / OPE / PLAINTEXT)."""
        if self.needs_plaintext:
            return "PLAINTEXT"
        if {ComputationClass.ORDER, ComputationClass.RANGE_JOIN} & self.classes:
            return "OPE"
        if {ComputationClass.EQUALITY, ComputationClass.EQUI_JOIN} & self.classes:
            return "DET"
        if self.needs_search:
            return "SEARCH"
        return "RND"


@dataclass
class FunctionalReport:
    """The Figure-9-left style summary for one application or trace."""

    name: str
    total_columns: int
    considered_columns: int
    usages: dict[tuple[str, str], ColumnUsage]

    def count(self, predicate) -> int:
        return sum(1 for usage in self.usages.values() if predicate(usage))

    @property
    def needs_plaintext(self) -> int:
        return self.count(lambda u: u.needs_plaintext)

    @property
    def needs_hom(self) -> int:
        return self.count(lambda u: u.needs_hom and not u.needs_plaintext)

    @property
    def needs_search(self) -> int:
        return self.count(lambda u: u.needs_search and not u.needs_plaintext)

    def min_enc_counts(self) -> dict[str, int]:
        counts = {"RND": 0, "SEARCH": 0, "DET": 0, "OPE": 0, "PLAINTEXT": 0}
        for usage in self.usages.values():
            counts[usage.min_enc()] += 1
        # Columns never referenced by any query stay at RND.
        counts["RND"] += self.considered_columns - len(self.usages)
        return counts

    @property
    def supported_fraction(self) -> float:
        if self.considered_columns == 0:
            return 1.0
        return 1.0 - self.needs_plaintext / self.considered_columns

    def as_row(self) -> dict[str, object]:
        counts = self.min_enc_counts()
        return {
            "application": self.name,
            "total_cols": self.total_columns,
            "consider_for_enc": self.considered_columns,
            "needs_plaintext": self.needs_plaintext,
            "needs_HOM": self.needs_hom,
            "needs_SEARCH": self.needs_search,
            "RND": counts["RND"],
            "SEARCH": counts["SEARCH"],
            "DET": counts["DET"],
            "OPE": counts["OPE"],
        }


class ColumnClassifier:
    """Classifies column usage from CREATE TABLE statements and a query set."""

    def __init__(self, name: str = "workload"):
        self.name = name
        self._tables: dict[str, list[str]] = {}
        self._usages: dict[tuple[str, str], ColumnUsage] = {}
        self.unsupported_queries: list[str] = []

    # -- schema ----------------------------------------------------------
    def add_schema(self, statements: Iterable[str]) -> None:
        for sql in statements:
            statement = parse_sql(sql)
            if isinstance(statement, ast.CreateTable):
                self._tables[statement.table] = [c.name for c in statement.columns]

    def total_columns(self) -> int:
        return sum(len(cols) for cols in self._tables.values())

    # -- queries -----------------------------------------------------------
    def add_queries(self, queries: Iterable[str]) -> None:
        for sql in queries:
            try:
                statement = parse_sql(sql)
            except SQLError:
                self.unsupported_queries.append(sql)
                continue
            self._classify_statement(statement, sql)

    def report(self, considered: Optional[int] = None) -> FunctionalReport:
        return FunctionalReport(
            name=self.name,
            total_columns=self.total_columns(),
            considered_columns=considered if considered is not None else self.total_columns(),
            usages=dict(self._usages),
        )

    # -- classification ------------------------------------------------------
    def _usage(self, table: Optional[str], column: str) -> Optional[ColumnUsage]:
        owner = table
        if owner is None:
            candidates = [t for t, cols in self._tables.items() if column in cols]
            if len(candidates) != 1:
                owner = candidates[0] if candidates else None
            else:
                owner = candidates[0]
        if owner is None or column not in self._tables.get(owner, ()):
            return None
        key = (owner, column)
        if key not in self._usages:
            self._usages[key] = ColumnUsage(owner, column)
        return self._usages[key]

    def _mark(self, ref: ast.ColumnRef, computation: ComputationClass, tables: list[str]) -> None:
        table = ref.table if ref.table in self._tables else None
        if table is None and ref.table is not None:
            # Alias: fall back to searching the FROM tables.
            table = next((t for t in tables if ref.name in self._tables.get(t, ())), None)
        elif table is None:
            table = next((t for t in tables if ref.name in self._tables.get(t, ())), None)
        usage = self._usage(table, ref.name)
        if usage is not None:
            usage.classes.add(computation)

    def _from_tables(self, clause: Optional[ast.FromClause]) -> list[str]:
        tables: list[str] = []
        while isinstance(clause, ast.Join):
            tables.append(clause.right.name)
            clause = clause.left
        if isinstance(clause, ast.TableRef):
            tables.append(clause.name)
        return tables

    def _classify_statement(self, statement: ast.Statement, sql: str) -> None:
        if isinstance(statement, ast.Select):
            tables = self._from_tables(statement.from_clause)
            for item in statement.items:
                self._classify_projection(item.expr, tables)
            self._classify_predicate(statement.where, tables, sql)
            self._classify_predicate(statement.having, tables, sql)
            for group in statement.group_by:
                if isinstance(group, ast.ColumnRef):
                    self._mark(group, ComputationClass.EQUALITY, tables)
            for order in statement.order_by:
                if isinstance(order.expr, ast.ColumnRef):
                    self._mark(order.expr, ComputationClass.ORDER, tables)
            if isinstance(statement.from_clause, ast.Join):
                self._classify_predicate(statement.from_clause.condition, tables, sql)
        elif isinstance(statement, ast.Update):
            tables = [statement.table]
            for column, expr in statement.assignments:
                usage = self._usage(statement.table, column)
                if usage is None:
                    continue
                if isinstance(expr, ast.Literal):
                    usage.classes.add(ComputationClass.NONE)
                elif isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-"):
                    usage.classes.add(ComputationClass.ADDITION)
                else:
                    usage.classes.add(ComputationClass.PLAINTEXT)
            self._classify_predicate(statement.where, tables, sql)
        elif isinstance(statement, ast.Delete):
            self._classify_predicate(statement.where, [statement.table], sql)
        elif isinstance(statement, ast.Insert):
            for column in statement.columns:
                usage = self._usage(statement.table, column)
                if usage is not None:
                    usage.classes.add(ComputationClass.NONE)

    def _classify_projection(self, expr: ast.Expression, tables: list[str]) -> None:
        if isinstance(expr, ast.ColumnRef):
            self._mark(expr, ComputationClass.NONE, tables)
        elif isinstance(expr, ast.Star):
            for table in tables:
                for column in self._tables.get(table, ()):
                    usage = self._usage(table, column)
                    if usage is not None:
                        usage.classes.add(ComputationClass.NONE)
        elif isinstance(expr, ast.FunctionCall):
            name = expr.name.upper()
            for arg in expr.args:
                if not isinstance(arg, ast.ColumnRef):
                    continue
                if name in ("SUM", "AVG"):
                    self._mark(arg, ComputationClass.ADDITION, tables)
                elif name in ("MIN", "MAX"):
                    self._mark(arg, ComputationClass.ORDER, tables)
                elif name == "COUNT":
                    computation = (
                        ComputationClass.EQUALITY if expr.distinct else ComputationClass.NONE
                    )
                    self._mark(arg, computation, tables)
                elif name in _PLAINTEXT_FUNCTIONS:
                    self._mark(arg, ComputationClass.PLAINTEXT, tables)
                else:
                    self._mark(arg, ComputationClass.NONE, tables)

    def _classify_predicate(
        self, expr: Optional[ast.Expression], tables: list[str], sql: str
    ) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.BinaryOp) and expr.op in ("AND", "OR"):
            self._classify_predicate(expr.left, tables, sql)
            self._classify_predicate(expr.right, tables, sql)
            return
        if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
            self._classify_predicate(expr.operand, tables, sql)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op in ("=", "!=", "<", "<=", ">", ">="):
            left_col = expr.left if isinstance(expr.left, ast.ColumnRef) else None
            right_col = expr.right if isinstance(expr.right, ast.ColumnRef) else None
            if left_col is not None and right_col is not None:
                computation = (
                    ComputationClass.EQUI_JOIN if expr.op == "=" else ComputationClass.RANGE_JOIN
                )
                self._mark(left_col, computation, tables)
                self._mark(right_col, computation, tables)
                return
            column = left_col or right_col
            if column is None:
                # A function or arithmetic over a column inside a predicate
                # requires plaintext processing.
                self._mark_embedded_plaintext(expr, tables, sql)
                return
            computation = (
                ComputationClass.EQUALITY if expr.op in ("=", "!=") else ComputationClass.ORDER
            )
            self._mark(column, computation, tables)
            return
        if isinstance(expr, ast.InList) and isinstance(expr.expr, ast.ColumnRef):
            self._mark(expr.expr, ComputationClass.EQUALITY, tables)
            return
        if isinstance(expr, ast.Between) and isinstance(expr.expr, ast.ColumnRef):
            self._mark(expr.expr, ComputationClass.ORDER, tables)
            return
        if isinstance(expr, ast.Like) and isinstance(expr.expr, ast.ColumnRef):
            pattern = expr.pattern.value if isinstance(expr.pattern, ast.Literal) else None
            if isinstance(pattern, str):
                stripped = pattern.strip("%").strip()
                if stripped and "%" not in stripped and "_" not in stripped:
                    computation = (
                        ComputationClass.WORD_SEARCH
                        if pattern.startswith("%") or pattern.endswith("%")
                        else ComputationClass.EQUALITY
                    )
                    self._mark(expr.expr, computation, tables)
                    return
            self._mark(expr.expr, ComputationClass.PLAINTEXT, tables)
            self.unsupported_queries.append(sql)
            return
        if isinstance(expr, ast.IsNull) and isinstance(expr.expr, ast.ColumnRef):
            self._mark(expr.expr, ComputationClass.NONE, tables)
            return
        self._mark_embedded_plaintext(expr, tables, sql)

    def _mark_embedded_plaintext(
        self, expr: ast.Expression, tables: list[str], sql: str
    ) -> None:
        found = False
        for node in ast.walk_expression(expr):
            if isinstance(node, ast.ColumnRef):
                self._mark(node, ComputationClass.PLAINTEXT, tables)
                found = True
        if found:
            self.unsupported_queries.append(sql)

"""Storage overhead analysis (§8.4.3).

CryptDB stores several onions per column plus per-row IVs, and HOM expands
32-bit integers to ciphertexts of twice the Paillier modulus, so the
encrypted database is larger than the plaintext one: the paper measures
3.76x for TPC-C (dominated by HOM expansion) and about 1.2x for phpBB.
``storage_comparison`` loads the same workload into a plain database and an
encrypted one and reports the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.proxy import CryptDBProxy
from repro.sql.engine import Database


@dataclass
class StorageReport:
    """Plain vs encrypted storage footprint."""

    plain_bytes: int
    encrypted_bytes: int

    @property
    def expansion(self) -> float:
        if self.plain_bytes == 0:
            return float("inf")
        return self.encrypted_bytes / self.plain_bytes


def storage_comparison(
    schema_statements: Iterable[str],
    data_statements: Iterable[str],
    proxy_factory: Callable[[Database], CryptDBProxy] | None = None,
) -> StorageReport:
    """Load the same schema + data plain and encrypted; compare storage."""
    schema_statements = list(schema_statements)
    data_statements = list(data_statements)

    plain_db = Database()
    for statement in schema_statements + data_statements:
        plain_db.execute(statement)

    encrypted_db = Database()
    if proxy_factory is None:
        proxy = CryptDBProxy(encrypted_db, paillier_bits=1024)
    else:
        proxy = proxy_factory(encrypted_db)
    for statement in schema_statements + data_statements:
        proxy.execute(statement)

    return StorageReport(
        plain_bytes=plain_db.storage_bytes(),
        encrypted_bytes=encrypted_db.storage_bytes(),
    )


def breakdown_by_table(proxy: CryptDBProxy) -> dict[str, int]:
    """Per-table encrypted storage, for the phpBB-style breakdown in §8.4.3."""
    return {
        name: proxy.db.table(name).storage_bytes() for name in proxy.db.table_names()
    }

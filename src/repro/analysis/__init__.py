"""Analyses that regenerate the paper's evaluation tables.

* :mod:`repro.analysis.functional` -- static per-column computation-class
  analysis (the left half of Figure 9 and the trace analysis).
* :mod:`repro.analysis.security` -- MinEnc / HIGH classification over a live
  proxy (the right half of Figure 9 and §8.3).
* :mod:`repro.analysis.storage` -- ciphertext expansion accounting (§8.4.3).
"""

from repro.analysis.functional import ColumnClassifier, FunctionalReport
from repro.analysis.security import high_classification, min_enc_summary
from repro.analysis.storage import StorageReport, storage_comparison

__all__ = [
    "ColumnClassifier",
    "FunctionalReport",
    "high_classification",
    "min_enc_summary",
    "StorageReport",
    "storage_comparison",
]

"""Security analysis: MinEnc and the HIGH class (§8.3, right half of Figure 9).

MinEnc of a column is the weakest onion level exposed on any of its onions in
the steady state.  HIGH comprises RND and HOM, plus DET for columns with no
repeated values (where DET is logically equivalent to RND).  The functions
here operate either on a live proxy (so DET repeats can be checked against
the actual data) or on a static functional report.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.functional import FunctionalReport
from repro.core.onion import SecurityLevel
from repro.core.proxy import CryptDBProxy


def min_enc_summary(proxy: CryptDBProxy) -> dict[str, int]:
    """Counts of columns per MinEnc level for every table managed by a proxy."""
    counts = {level.name: 0 for level in SecurityLevel}
    for table in proxy.schema.table_names():
        for column in proxy.schema.table(table).column_names():
            counts[proxy.min_enc(table, column).name] += 1
    return counts


def _det_has_repeats(proxy: CryptDBProxy, table: str, column: str) -> bool:
    """Check on the server whether a DET column has duplicate ciphertexts."""
    from repro.core.onion import Onion

    meta = proxy.schema.column(table, column)
    if not meta.has_onion(Onion.EQ):
        return False
    anon_table = proxy.schema.table(table).anon_name
    anon_column = meta.onion_state(Onion.EQ).anon_name
    values = [
        row[anon_column]
        for _, row in proxy.db.table(anon_table).scan()
        if row.get(anon_column) is not None
    ]
    hashable = [bytes(v) if isinstance(v, (bytes, bytearray)) else v for v in values]
    return len(hashable) != len(set(hashable))


def high_classification(
    proxy: CryptDBProxy,
    sensitive_columns: Iterable[tuple[str, str]],
) -> dict[str, object]:
    """How many of the given sensitive columns end up in the HIGH class.

    HIGH = RND/HOM, or DET with no repeats (§8.3).  OPE and DET-with-repeats
    are excluded because they reveal relations to the DBMS server.
    """
    high = 0
    total = 0
    per_column = {}
    for table, column in sensitive_columns:
        total += 1
        level = proxy.min_enc(table, column)
        if level >= SecurityLevel.SEARCH:
            is_high = True
        elif level == SecurityLevel.DET:
            is_high = not _det_has_repeats(proxy, table, column)
        else:
            is_high = False
        per_column[(table, column)] = (level.name, is_high)
        high += int(is_high)
    return {"high": high, "total": total, "columns": per_column}


def static_min_enc_summary(report: FunctionalReport) -> dict[str, int]:
    """MinEnc counts from a static functional report (trace-scale analysis)."""
    return report.min_enc_counts()


def ope_usage_breakdown(report: FunctionalReport) -> dict[str, float]:
    """Fraction of columns at OPE, as discussed for the trace in §8.3."""
    counts = report.min_enc_counts()
    considered = max(report.considered_columns, 1)
    return {
        "ope_fraction": counts["OPE"] / considered,
        "det_or_better_fraction": (
            (counts["RND"] + counts["SEARCH"] + counts["DET"]) / considered
        ),
    }

"""Server-side user-defined functions installed by CryptDB in the DBMS.

The DBMS itself is never modified (§7): every server-side cryptographic
operation is a UDF.  The functions here receive any key material explicitly
as arguments embedded in the rewritten query (exactly like the paper's
``DECRYPT_RND(K, C2-Ord, C2-IV)`` example) and therefore hold no secrets of
their own; the Paillier SUM aggregate closes only over the *public* key.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.crypto import join_adj
from repro.crypto.det import DET
from repro.crypto.paillier import (
    PackingConfig,
    PaillierPublicKey,
    encode_partial_sums,
)
from repro.crypto.rnd import RND
from repro.crypto.search import SEARCH, SearchCiphertext, SearchToken
from repro.sql.engine import Database

# UDF names, referenced by the rewriter when it builds queries.
DECRYPT_RND_EQ = "CRYPTDB_DECRYPT_RND_EQ"
DECRYPT_RND_ORD = "CRYPTDB_DECRYPT_RND_ORD"
DECRYPT_DET_EQ = "CRYPTDB_DECRYPT_DET_EQ"
JOIN_ADJUST = "CRYPTDB_JOIN_ADJUST"
ADJ_PART = "CRYPTDB_ADJ_PART"
SEARCH_MATCH = "CRYPTDB_SEARCH_MATCH"
HOM_ADD = "CRYPTDB_HOM_ADD"
HOM_ADD_PACKED = "CRYPTDB_HOM_ADD_PACKED"
HOM_SUM = "CRYPTDB_HOM_SUM"


def _decrypt_rnd_eq(key: Optional[bytes], ciphertext: Optional[bytes], iv: Optional[bytes]) -> Any:
    """Strip the RND layer of an Eq onion value (bytes ciphertext)."""
    if ciphertext is None:
        return None
    return RND(key).decrypt_bytes(ciphertext, iv)


def _decrypt_rnd_ord(key: Optional[bytes], ciphertext: Optional[int], iv: Optional[bytes]) -> Any:
    """Strip the RND layer of an Ord onion value (64-bit integer ciphertext)."""
    if ciphertext is None:
        return None
    return RND(key).decrypt_int(ciphertext, iv)


def _decrypt_det_eq(key: Optional[bytes], ciphertext: Optional[bytes]) -> Any:
    """Strip the DET layer of an Eq onion value, exposing the JOIN layer."""
    if ciphertext is None:
        return None
    return DET(key).decrypt_bytes(ciphertext)


def _join_adjust(ciphertext: Optional[bytes], delta_bytes: Optional[bytes]) -> Any:
    """Re-key the JOIN-ADJ component of a JOIN-layer ciphertext (§3.4)."""
    if ciphertext is None:
        return None
    parsed = join_adj.JoinCiphertext.deserialize(ciphertext)
    delta = int.from_bytes(delta_bytes, "big")
    adjusted = join_adj.adjust(parsed.adj, delta)
    return join_adj.JoinCiphertext(adjusted, parsed.det).serialize()


def _adj_part(ciphertext: Optional[bytes]) -> Any:
    """Extract the JOIN-ADJ component used for cross-column equality."""
    if ciphertext is None:
        return None
    return ciphertext[: join_adj.ADJ_SIZE]


def _group_by_key(keys: list, ciphertexts: list) -> dict[bytes, list[int]]:
    """Row positions of the non-NULL ciphertexts, grouped by their key."""
    groups: dict[bytes, list[int]] = {}
    for index, (key, ciphertext) in enumerate(zip(keys, ciphertexts)):
        if ciphertext is not None:
            groups.setdefault(key, []).append(index)
    return groups


def _decrypt_rnd_eq_many(keys: list, ciphertexts: list, ivs: list) -> list:
    """Batch variant of the RND-Eq strip: one key schedule per column."""
    out: list = [None] * len(ciphertexts)
    for key, positions in _group_by_key(keys, ciphertexts).items():
        stripped = RND(key).decrypt_bytes_many(
            [ciphertexts[i] for i in positions], [ivs[i] for i in positions]
        )
        for position, plaintext in zip(positions, stripped):
            out[position] = plaintext
    return out


def _decrypt_rnd_ord_many(keys: list, ciphertexts: list, ivs: list) -> list:
    """Batch variant of the RND-Ord strip: one key schedule per column."""
    out: list = [None] * len(ciphertexts)
    for key, positions in _group_by_key(keys, ciphertexts).items():
        stripped = RND(key).decrypt_int_many(
            [ciphertexts[i] for i in positions], [ivs[i] for i in positions]
        )
        for position, value in zip(positions, stripped):
            out[position] = value
    return out


def _decrypt_det_eq_many(keys: list, ciphertexts: list) -> list:
    """Batch variant of the DET-Eq strip.

    One key schedule per column, and -- because DET is deterministic, so
    equal plaintexts stored equal ciphertexts -- each distinct ciphertext is
    decrypted once via :meth:`DET.decrypt_bytes_many`.
    """
    out: list = [None] * len(ciphertexts)
    for key, positions in _group_by_key(keys, ciphertexts).items():
        stripped = DET(key).decrypt_bytes_many([ciphertexts[i] for i in positions])
        for position, plaintext in zip(positions, stripped):
            out[position] = plaintext
    return out


def _join_adjust_many(ciphertexts: list, deltas: list) -> list:
    """Batch variant of the JOIN-ADJ re-keying.

    Rows are grouped per delta (in practice one delta per UPDATE) and handed
    to :func:`join_adj.adjust_many`, which shares the scalar's wNAF expansion
    across the column and converts every re-scaled point back to affine form
    with batched inversions.
    """
    out: list = [None] * len(ciphertexts)
    by_delta: dict[bytes, list[int]] = {}
    for index, (ciphertext, delta_bytes) in enumerate(zip(ciphertexts, deltas)):
        if ciphertext is not None:
            by_delta.setdefault(delta_bytes, []).append(index)
    for delta_bytes, positions in by_delta.items():
        delta = int.from_bytes(delta_bytes, "big")
        parsed = [
            join_adj.JoinCiphertext.deserialize(ciphertexts[i]) for i in positions
        ]
        adjusted = join_adj.adjust_many([c.adj for c in parsed], delta)
        for position, cipher, adj in zip(positions, parsed, adjusted):
            out[position] = join_adj.JoinCiphertext(adj, cipher.det).serialize()
    return out


def _search_match(
    ciphertext: Optional[bytes],
    token_left: Optional[bytes],
    token_right: Optional[bytes],
    prf_key: Optional[bytes],
) -> Any:
    """Check whether any encrypted keyword matches the query token."""
    if ciphertext is None:
        return None
    token = SearchToken(token_left, token_right, prf_key)
    return SEARCH.matches(SearchCiphertext.deserialize(ciphertext), token)


def install_udfs(
    db: Database,
    public_key: PaillierPublicKey,
    packing: Optional[PackingConfig] = None,
) -> None:
    """Install all CryptDB UDFs into a DBMS instance.

    ``packing`` switches the HOM aggregate path to the packed-slot layout
    (§8.4): ``HOM_SUM`` then closes its running product every ``chunk_rows``
    rows so no slot's count subfield can overflow, and the packed increment
    UDF becomes available.
    """
    n_squared = public_key.n_squared

    def hom_add(a: Optional[int], b: Optional[int]) -> Any:
        if a is None or b is None:
            return None
        return (a * b) % n_squared

    def hom_add_packed(
        packed: Optional[int], delta: Optional[int], sentinel: Any
    ) -> Any:
        # ``sentinel`` is the member's Eq-onion cell: NULL exactly when the
        # application value is NULL.  SQL says NULL + k stays NULL, so the
        # packed cell (whose slot already carries count 0) passes through
        # untouched; folding the delta in would fabricate a value.
        if packed is None or delta is None or sentinel is None:
            return packed
        return (packed * delta) % n_squared

    def register(name, func, batch=None):
        if batch is None:
            db.register_scalar_udf(name, func)
            return
        try:
            db.register_scalar_udf(name, func, batch=batch)
        except TypeError:
            # Backend adapters predating vectorized UDFs take no batch
            # argument; the scalar variant alone keeps them correct.
            db.register_scalar_udf(name, func)

    register(DECRYPT_RND_EQ, _decrypt_rnd_eq, _decrypt_rnd_eq_many)
    register(DECRYPT_RND_ORD, _decrypt_rnd_ord, _decrypt_rnd_ord_many)
    register(DECRYPT_DET_EQ, _decrypt_det_eq, _decrypt_det_eq_many)
    register(JOIN_ADJUST, _join_adjust, _join_adjust_many)
    db.register_scalar_udf(ADJ_PART, _adj_part)
    db.register_scalar_udf(SEARCH_MATCH, _search_match)
    db.register_scalar_udf(HOM_ADD, hom_add)
    db.register_scalar_udf(HOM_ADD_PACKED, hom_add_packed)
    # SUM over zero rows is NULL in SQL, not the Paillier encryption of 0:
    # the state stays None until the first (non-NULL) ciphertext is folded
    # in, so the proxy decrypts an empty aggregate to NULL like a stock DBMS.
    if packing is None:
        db.register_aggregate_udf(
            HOM_SUM,
            initial=lambda: None,
            step=lambda state, value: ((1 if state is None else state) * value) % n_squared,
            finalize=lambda state: state,
        )
    else:
        chunk_rows = packing.chunk_rows

        def packed_step(state, value):
            # state: (running product, rows folded into it, closed chunks).
            # Folding more than ``chunk_rows`` rows could carry a slot's
            # count subfield into its neighbour, so the product is closed at
            # exactly that headroom boundary and a fresh chunk starts.
            if state is None:
                state = (1, 0, [])
            product, rows, closed = state
            product = (product * value) % n_squared
            rows += 1
            if rows >= chunk_rows:
                return (1, 0, closed + [product])
            return (product, rows, closed)

        def packed_finalize(state):
            if state is None:
                return None
            product, rows, closed = state
            if rows:
                closed = closed + [product]
            if len(closed) == 1:
                return closed[0]
            return encode_partial_sums(closed)

        db.register_aggregate_udf(
            HOM_SUM,
            initial=lambda: None,
            step=packed_step,
            finalize=packed_finalize,
        )

"""The CryptDB database proxy (single-principal mode, threat 1).

The proxy intercepts every SQL statement the application issues, rewrites it
to execute over encrypted data, forwards it (together with any onion
adjustment UPDATEs) to the unmodified DBMS, and decrypts the results.  It
holds the master key MK, the plaintext schema, and the current onion level of
every column; the DBMS only ever sees anonymised identifiers, ciphertexts and
CryptDB's UDFs (Figure 1).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional, Sequence, Union

from repro import faults
from repro.core import udfs
from repro.core.cache import CacheStatistics, CryptoCache
from repro.core.encryptor import Encryptor
from repro.core.joins import JoinManager
from repro.core.onion import EncryptionScheme, Onion, SecurityLevel
from repro.core.plan_cache import (
    PlanCache,
    PreparedStatement,
    bind_parameters,
    bind_parameters_batch,
    statement_kind,
)
from repro.core.rewriter import RewritePlan, Rewriter
from repro.core.results import decrypt_results
from repro.core.schema import ProxySchema
from repro.core.training import TrainingReport, build_report
from repro.crypto.keys import KeyManager, MasterKey
from repro.crypto.paillier import PackingConfig, PaillierKeyPair
from repro.durability import CatalogState, MetadataCatalog, tag_value, untag_value
from repro.errors import (
    CatalogError,
    ProxyError,
    ReproError,
    SimulatedCrash,
    UnsupportedQueryError,
)
from repro.parallel.jobs import HomRandomnessJob
from repro.parallel.pool import CryptoWorkerPool, ParallelConfig, ParallelUnavailable
from repro.sql import ast_nodes as ast
from repro.sql.engine import Database
from repro.sql.executor import ResultSet
from repro.sql.parameters import normalize_statement_text
from repro.sql.parser import parse_sql

# A modest default keeps pure-Python Paillier fast; the paper uses 1024-bit
# moduli (2048-bit ciphertexts), which callers can request explicitly.
DEFAULT_PAILLIER_BITS = 1024


@dataclass
class ProxyStatistics:
    """Operational counters exposed for the evaluation benchmarks."""

    queries_processed: int = 0
    queries_rewritten: int = 0
    onion_adjustments: int = 0
    unsupported_queries: int = 0
    proxy_time_seconds: float = 0.0
    server_time_seconds: float = 0.0
    #: Time spent parsing + rewriting statement shapes (the prepare phase);
    #: plan-cache hits skip this entirely.
    prepare_time_seconds: float = 0.0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0
    #: Statements executed through the batched executemany pipeline, and how
    #: many parameter rows they covered.
    batched_statements: int = 0
    batched_rows: int = 0
    #: End-to-end per-statement wall times, keyed by statement kind
    #: ("SELECT", "INSERT", ...), populated by every execute() call.
    per_query_type_seconds: dict[str, list] = field(default_factory=dict)
    #: The proxy's unified ciphertext cache (DET/OPE/SEARCH memos, HOM pool);
    #: set by the proxy, excluded from reset()'s zeroing.
    cache: Optional[CryptoCache] = None
    #: The proxy's crypto worker pool (None when serial); set by the proxy,
    #: excluded from reset()'s zeroing.  Its health counters are merged into
    #: cache_stats() so they travel the STATS frame with the cache block.
    pool: Optional[Any] = None
    #: The sharded backend (None when single-node); set by the proxy,
    #: excluded from reset()'s zeroing like cache/pool -- reset() asks it to
    #: zero its own scatter/merge counters instead.
    shard: Optional[Any] = None

    def cache_stats(self) -> CacheStatistics:
        """DET/OPE/SEARCH memo hit/miss counters and the HOM pool state."""
        stats = CacheStatistics() if self.cache is None else self.cache.statistics()
        if self.pool is not None:
            stats.pool_restarts = self.pool.restarts
            stats.pool_failures = self.pool.failures
            stats.pool_circuit_opens = self.pool.circuit_opens
            stats.pool_circuit_open = int(self.pool.circuit_open)
        return stats

    def record_query_type(self, kind: str, seconds: float) -> None:
        self.per_query_type_seconds.setdefault(kind, []).append(seconds)

    def record_query_type_batch(self, kind: str, seconds: float, rows: int) -> None:
        """Record a batch as per-row samples so means stay per-statement.

        An N-row executemany contributes N samples of ``seconds / N`` --
        count and total line up with the scalar path's bookkeeping instead
        of one N-row sample inflating the mean.
        """
        rows = max(rows, 1)
        self.per_query_type_seconds.setdefault(kind, []).extend(
            [seconds / rows] * rows
        )

    def query_type_summary(self) -> dict[str, dict[str, float]]:
        """Per-statement-type count/total/mean, for the benchmark reports."""
        summary: dict[str, dict[str, float]] = {}
        for kind, samples in sorted(self.per_query_type_seconds.items()):
            total = sum(samples)
            summary[kind] = {
                "count": len(samples),
                "total_seconds": total,
                "mean_ms": (total / len(samples)) * 1000 if samples else 0.0,
            }
        return summary

    def reset(self) -> None:
        """Zero every counter (timing series and cache hit/miss included).

        Cached ciphertext entries and the HOM pool survive a reset -- only
        the counters are cleared.
        """
        fresh = ProxyStatistics()
        for name, value in vars(fresh).items():
            if name in ("cache", "pool", "shard"):
                continue
            setattr(self, name, value)
        if self.cache is not None:
            self.cache.reset_counters()
        if self.pool is not None:
            self.pool.reset_counters()
        if self.shard is not None:
            self.shard.reset_counters()

    def shard_stats(self) -> Optional[dict]:
        """The sharded backend's scatter/merge counters, or None."""
        return self.shard.stats() if self.shard is not None else None


class CryptDBProxy:
    """Single-principal CryptDB proxy in front of an (unmodified) DBMS."""

    def __init__(
        self,
        db: Optional[Database] = None,
        master_key: Optional[MasterKey] = None,
        paillier_bits: int = DEFAULT_PAILLIER_BITS,
        paillier: Optional[PaillierKeyPair] = None,
        anonymize_names: bool = True,
        in_proxy_processing: bool = False,
        use_ciphertext_cache: bool = True,
        hom_precompute: int = 256,
        plan_cache_size: int = 256,
        workers: int = 0,
        parallelism: Optional[ParallelConfig] = None,
        hom_packing: Union[bool, PackingConfig] = True,
        cache_budget_bytes: Optional[int] = None,
        catalog: Optional[Union[str, MetadataCatalog]] = None,
    ):
        self.db = db if db is not None else Database()
        self.master_key = master_key if master_key is not None else MasterKey.generate()
        self.keys = KeyManager(self.master_key)
        self.paillier = paillier if paillier is not None else PaillierKeyPair.generate(paillier_bits)
        self.joins = JoinManager(self.master_key.material)
        # Packed HOM slots (§8.4): ``True`` uses the default layout, a
        # PackingConfig customises it, ``False`` keeps one scalar Paillier
        # ciphertext per value (the ``enc-packed-off`` conformance lane).
        if hom_packing is True:
            packing: Optional[PackingConfig] = PackingConfig()
        elif hom_packing:
            packing = hom_packing
        else:
            packing = None
        if packing is not None and packing.slot_width >= self.paillier.public.n.bit_length():
            # A demo-sized modulus that cannot hold even one slot falls back
            # to scalar ciphertexts rather than refusing to start.
            packing = None
        self.hom_packing = packing
        self.cache = CryptoCache(
            self.paillier,
            enabled=use_ciphertext_cache,
            budget_bytes=cache_budget_bytes,
        )
        # ``workers=N`` is shorthand for ``parallelism=ParallelConfig(workers=N)``;
        # an explicit config wins, with a bare ``workers`` overriding its count.
        if parallelism is None:
            parallelism = ParallelConfig(workers=workers)
        elif workers and parallelism.workers != workers:
            parallelism = replace(parallelism, workers=workers)
        self.parallelism = parallelism
        self.pool: Optional[CryptoWorkerPool] = None
        if parallelism.enabled:
            self.pool = CryptoWorkerPool(
                parallelism, self.paillier, stats_sink=self.cache.absorb_worker_counters
            )
        self.encryptor = Encryptor(
            self.keys,
            self.joins,
            self.paillier,
            use_ope_cache=use_ciphertext_cache,
            cache=self.cache,
            pool=self.pool,
            packing=self.hom_packing,
        )
        self.schema = ProxySchema(
            anonymize_names=anonymize_names,
            hom_slots=(
                self.hom_packing.slots_for(self.paillier.public.n)
                if self.hom_packing is not None
                else None
            ),
        )
        self.rewriter = Rewriter(
            self.schema, self.encryptor, self.joins, in_proxy_processing=in_proxy_processing
        )
        if use_ciphertext_cache and hom_precompute:
            self.cache.precompute_hom(hom_precompute)
        # Background HOM pool refill: when the randomness pool runs low the
        # Paillier key pair pings this proxy, which hands a precompute batch
        # to a crypto worker instead of letting the next INSERT burst stall
        # on inline ``r^n`` exponentiations.
        # Pool generation of the refill currently in flight, or None.  Keyed
        # on the generation so a restart that killed the job's callbacks
        # (they never fire after terminate) cannot wedge refills forever.
        self._hom_refill_inflight: Optional[int] = None
        self._hom_refill_hook = self._schedule_hom_refill
        if self.pool is not None and use_ciphertext_cache:
            self.paillier.refill_watermark = parallelism.hom_low_watermark
            self.paillier.refill_hook = self._hom_refill_hook
        self.stats = ProxyStatistics(cache=self.cache, pool=self.pool)
        self.plan_cache = PlanCache(plan_cache_size)
        self._onion_snapshot: Optional[tuple] = None
        self._computation_log: dict[tuple[str, str], set] = {}
        self._unsupported_log: list[str] = []
        self._training = False
        udfs.install_udfs(self.db, self.paillier.public, packing=self.hom_packing)
        if getattr(self.db, "is_sharded", False):
            # Hand the merge layer the Paillier *public* key (and packing
            # layout) so per-shard HOM partials recombine homomorphically at
            # the backend -- the private key never leaves the proxy.
            self.db.configure_crypto(self.paillier.public, self.hom_packing)
            self.stats.shard = self.db
        # Durable metadata catalog: the proxy writes a WAL record through at
        # every metadata mutation, and a catalog with history rebuilds this
        # proxy's state (schema, onion levels, JOIN-ADJ groups, routing,
        # schema version) against the existing backend -- the restart path.
        self.catalog: Optional[MetadataCatalog] = None
        #: Adjustment intents whose resolution rides an open application
        #: transaction: COMMIT logs their commit records, ROLLBACK aborts.
        self._txn_pending_intents: list[int] = []
        if catalog is not None:
            self._attach_catalog(catalog)

    # ------------------------------------------------------------------
    # parallel crypto lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release proxy resources: flushes the catalog, terminates the pool.

        The durable catalog is flushed and fsynced *first*, before any other
        resource is released, so buffered metadata records cannot be lost by
        a clean shutdown.  Idempotent -- including after a flush failure: the
        catalog reference is detached before flushing, so a failed fsync
        surfaces exactly once and a second close() is a no-op.  The proxy
        remains usable afterwards (batch kernels simply run serially), but
        without its catalog attached.
        """
        catalog, self.catalog = self.catalog, None
        try:
            if catalog is not None:
                catalog.close()
        finally:
            if self.paillier.refill_hook is self._hom_refill_hook:
                self.paillier.refill_hook = None
            if self.pool is not None:
                self.pool.close()
                self.pool = None
                self.encryptor.pool = None

    def _schedule_hom_refill(self) -> None:
        """Hand one Paillier randomness precompute batch to the worker pool."""
        pool = self.pool
        if pool is None or pool.broken or pool.closed:
            return
        if self._hom_refill_inflight == pool.generation:
            return  # one refill per pool generation at a time
        if faults.INJECTOR is not None:
            try:
                faults.INJECTOR.fire("paillier.refill", target=self)
            except ReproError:
                # An injected refill failure skips this batch; the next
                # encryption that drops through the watermark re-triggers,
                # and correctness never depends on pooled randomness.
                return
        self._hom_refill_inflight = pool.generation

        def on_done(factors: list) -> None:
            # Runs on the pool's result-handler thread; list.extend is a
            # single C-level call, and the counter bump goes through the
            # cache's lock-protected merge.
            self.paillier._randomness_pool.extend(factors)
            self.cache.note_async_refill()
            self._hom_refill_inflight = None

        def on_error(_exc: BaseException) -> None:
            self._hom_refill_inflight = None

        try:
            pool.submit_async(
                HomRandomnessJob(self.parallelism.hom_refill_batch), on_done, on_error
            )
        except ParallelUnavailable:
            self._hom_refill_inflight = None

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def create_table(
        self,
        sql_or_statement: Union[str, ast.CreateTable],
        plaintext_columns: Optional[Iterable[str]] = None,
        sensitive_columns: Optional[Iterable[str]] = None,
        minimum_levels: Optional[dict[str, SecurityLevel]] = None,
    ) -> None:
        """Create an application table; the DBMS receives the anonymised layout.

        ``plaintext_columns`` implements the §3.5.2 developer annotation that
        leaves non-sensitive fields unencrypted; ``minimum_levels`` implements
        the §3.5.1 minimum-onion-layer constraint; ``sensitive_columns`` only
        tags columns for the security analysis.
        """
        statement = (
            parse_sql(sql_or_statement) if isinstance(sql_or_statement, str) else sql_or_statement
        )
        if not isinstance(statement, ast.CreateTable):
            raise ProxyError("create_table expects a CREATE TABLE statement")
        table_meta = self.schema.add_table(
            statement.table,
            statement.columns,
            plaintext_columns=set(plaintext_columns or ()),
            sensitive_columns=set(sensitive_columns or ()),
            minimum_levels=dict(minimum_levels or {}),
        )
        for column_def in statement.columns:
            column = table_meta.column(column_def.name)
            if not column.plaintext:
                self.joins.register_column(column.table, column.name)
        if self.catalog is not None:
            # Write-ahead: the record must be durable before the backend DDL
            # runs, so a crash between the two leaves a catalog that knows
            # the table and a recovery that completes the missing DDL.
            record = self.schema.describe_table(statement.table)
            record["t"] = "create_table"
            record["version"] = self.schema.version
            self.catalog.append(record, sync=True)
        anon_columns = self._anonymized_columns(statement)
        self.db.execute(ast.CreateTable(table_meta.anon_name, anon_columns, statement.if_not_exists))
        if getattr(self.db, "is_sharded", False):
            rewind = (self.schema.snapshot_levels(), self.joins.snapshot(), self.schema.version)
            declared = self._declare_shard_key(statement.table)
            if self.catalog is not None:
                meta = self._catalog_meta_diff(rewind) or {}
                if declared is not None:
                    meta["routing"] = [list(declared)]
                if meta:
                    self.catalog.append(dict(meta, t="meta"), sync=True)

    def _declare_shard_key(self, table: str) -> Optional[tuple[str, str, str]]:
        """Tell a sharded backend which anonymised column routes inserts.

        The shard key's routing onion is peeled ahead of time -- DET for
        det-hash routing, OPE for ope-range -- so equal/ordered plaintexts
        land on predictable shards.  The table is empty here, so the peel is
        metadata-only (no server-side UPDATEs), and it is the same §3.5.1
        static trade-off as any pre-lowered column: the shard key leaks
        equality (or order) to the DBMS from the start instead of after the
        first query that needs it.  Routing stays placement-only, so a key
        whose onion later adjusts further (e.g. JOIN-ADJ re-keying) never
        breaks reads.
        """
        table_meta = self.schema.table(table)
        preferred = getattr(self.db, "shard_key", None)
        names = table_meta.column_names()
        key = preferred if preferred in names else names[0]
        column = table_meta.column(key)
        mode = getattr(self.db, "mode", "det-hash")
        if column.plaintext:
            self.db.declare_routing(table_meta.anon_name, column.name, mode=mode)
            return (table_meta.anon_name, column.name, mode)
        if mode == "ope-range" and column.has_onion(Onion.ORD):
            self.schema.lower_onion(table, key, Onion.ORD, EncryptionScheme.OPE)
            anon = column.onion_state(Onion.ORD).anon_name
            self.db.declare_routing(table_meta.anon_name, anon, mode="ope-range")
            return (table_meta.anon_name, anon, "ope-range")
        if column.has_onion(Onion.EQ):
            self.schema.lower_onion(table, key, Onion.EQ, EncryptionScheme.DET)
            anon = column.onion_state(Onion.EQ).anon_name
            self.db.declare_routing(table_meta.anon_name, anon, mode="det-hash")
            return (table_meta.anon_name, anon, "det-hash")
        # No usable onion: the table stays undeclared and all rows pin to
        # shard 0 -- correct, just not distributed.
        return None

    def _anonymized_columns(self, statement: ast.CreateTable):
        from repro.sql.types import BIGINT, BLOB, ColumnDef

        table_meta = self.schema.table(statement.table)
        anon_columns: list[ColumnDef] = []
        for column_def in statement.columns:
            column = table_meta.column(column_def.name)
            if column.plaintext:
                anon_columns.append(ColumnDef(column_def.name, column_def.data_type))
                continue
            for onion, state in column.onions.items():
                if onion is Onion.ADD and column.hom_packed:
                    continue  # stored once per group, below
                if onion in (Onion.EQ, Onion.SEARCH):
                    anon_columns.append(ColumnDef(state.anon_name, BLOB()))
                elif onion is Onion.ORD:
                    anon_columns.append(ColumnDef(state.anon_name, BIGINT()))
                elif onion is Onion.ADD:
                    anon_columns.append(ColumnDef(state.anon_name, BLOB()))
            anon_columns.append(ColumnDef(column.iv_column, BLOB()))
        for group in table_meta.hom_groups:
            # One shared packed-Add ciphertext column per group (§8.4).
            anon_columns.append(ColumnDef(group.anon_name, BLOB()))
        return anon_columns

    def create_index(self, table: str, column: str) -> None:
        """Create indexes over the column's DET/JOIN and OPE onions (§3.3)."""
        column_meta = self.schema.column(table, column)
        anon_table = self.db.table(self.schema.table(table).anon_name)
        if column_meta.plaintext:
            anon_table.create_index(column)
            return
        if column_meta.has_onion(Onion.EQ):
            anon_table.create_index(column_meta.onion_state(Onion.EQ).anon_name)
        if column_meta.has_onion(Onion.ORD):
            anon_table.create_index(column_meta.onion_state(Onion.ORD).anon_name, ordered=True)

    def declare_range_join(self, columns: list[tuple[str, str]], group: str = "default") -> None:
        """Declare ahead of time that columns will be range-joined (§3.4).

        All declared columns share one OPE key; must be called before data is
        inserted into those columns.
        """
        for table, column in columns:
            self.schema.column(table, column).ope_join_group = group
        if self.catalog is not None:
            self.catalog.append(
                {"t": "meta", "ope_groups": [[t, c, group] for t, c in columns]},
                sync=True,
            )

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def execute(
        self,
        sql_or_statement: Union[str, ast.Statement],
        params: Optional[Sequence[Any]] = None,
    ) -> ResultSet:
        """Execute one application statement over encrypted data.

        ``params`` binds ``?`` placeholders (DB-API *qmark* style).  SQL text
        goes through the rewrite-plan cache, so repeated executions of the
        same parameterized shape skip re-parsing and re-rewriting and only
        pay for encrypting the bound parameters.
        """
        if isinstance(sql_or_statement, str):
            prepared = self.prepare(sql_or_statement)
        else:
            prepared = self._prepare_statement(sql_or_statement, cache_key=None)
        return self.execute_prepared(prepared, params)

    def executemany(
        self, sql: str, seq_of_params: Iterable[Sequence[Any]]
    ) -> int:
        """Execute one statement shape for every parameter tuple.

        A fully parameterized shape is prepared (rewritten) exactly once and
        then executed through the **batched pipeline**: all parameter rows
        are encrypted column-at-a-time through the plan's deferred slots
        (deterministic layers deduplicated via the ciphertext cache), and a
        single-row INSERT shape is forwarded to the DBMS as one multi-row
        INSERT.  Shapes that bake per-execution randomness into the plan
        (literal values written to encrypted columns) fall back to per-row
        re-rewriting so RND IVs and HOM ciphertexts are never replayed.
        Returns the total affected rowcount.
        """
        rows = [tuple(params) for params in seq_of_params]
        if not rows:
            # PEP 249: an empty parameter sequence is a pure no-op.  Not even
            # prepare() runs -- preparing has side effects (onion-adjustment
            # UPDATEs, plan-cache population) that a no-op must not trigger,
            # and a bad shape will still fail loudly on first real use.
            return 0
        prepared = self.prepare(sql)
        plan = prepared.plan
        # A row with the wrong parameter count fails the whole batch before
        # any row is written -- on the per-row fallback path too.
        for index, params in enumerate(rows):
            if len(params) != prepared.param_count:
                raise ProxyError(
                    f"statement expects {prepared.param_count} parameters, "
                    f"got {len(params)} (row {index})"
                )
        batchable = (
            not prepared.is_ddl
            and not plan.passthrough
            and plan.cacheable
            and prepared.param_count > 0
        )
        if batchable:
            return self._execute_prepared_batch(prepared, rows)
        reusable = (
            prepared.is_ddl or plan.passthrough or plan.cacheable
        )
        total = 0
        for params in rows:
            total += self.execute_prepared(prepared, params).rowcount
            if not reusable:
                prepared = self.prepare(sql)
        return total

    def _execute_prepared_batch(
        self, prepared: PreparedStatement, rows: list[tuple]
    ) -> int:
        """Run one cacheable statement shape over a batch of parameter rows."""
        plan = prepared.plan
        total_start = time.perf_counter()
        self.stats.queries_processed += len(rows)
        try:
            bind_start = time.perf_counter()
            bound_rows = bind_parameters_batch(plan, rows, self.encryptor)
            bind_time = time.perf_counter() - bind_start

            statement = plan.statement
            slots = plan.param_slots
            server_start = time.perf_counter()
            if (
                isinstance(statement, ast.Insert)
                and len(statement.rows) == 1
                and all(isinstance(expr, ast.Literal) for expr in statement.rows[0])
            ):
                # One multi-row INSERT: bind each row into the template and
                # snapshot the literals, so the server executes a single
                # statement for the whole batch.
                template = statement.rows[0]
                insert_rows = []
                for bound in bound_rows:
                    for slot, value in zip(slots, bound):
                        slot.target.value = value
                    insert_rows.append([ast.Literal(expr.value) for expr in template])
                total = self.db.execute(
                    ast.Insert(statement.table, statement.columns, insert_rows)
                ).rowcount
            else:
                total = 0
                for row_index, bound in enumerate(bound_rows):
                    for slot, value in zip(slots, bound):
                        slot.target.value = value
                    if plan.hom_rmw:
                        total += self._execute_with_rmw(
                            plan, rows[row_index]
                        ).rowcount
                    else:
                        total += self.db.execute(statement).rowcount
            server_time = time.perf_counter() - server_start

            self.stats.proxy_time_seconds += bind_time
            self.stats.server_time_seconds += server_time
            self.stats.batched_statements += 1
            self.stats.batched_rows += len(rows)
            return total
        finally:
            self.stats.record_query_type_batch(
                prepared.kind, time.perf_counter() - total_start, len(rows)
            )
            self.cache.enforce_budget()

    #: Statement heads that never produce a cacheable rewrite plan; prepare()
    #: skips the cache for them so hit/miss counters reflect only real plans.
    _UNCACHED_HEADS = frozenset({"CREATE", "DROP", "BEGIN", "COMMIT", "ROLLBACK", "START"})

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse + rewrite a statement shape once, via the plan cache."""
        key = normalize_statement_text(sql)
        if key.split(" ", 1)[0] in self._UNCACHED_HEADS:
            return self._prepare_statement(parse_sql(sql), cache_key=None)
        cached = self.plan_cache.get(key, self.schema.version, self.stats)
        if cached is not None:
            return cached
        return self._prepare_statement(parse_sql(sql), cache_key=key)

    def _prepare_statement(
        self, statement: ast.Statement, cache_key: Optional[str]
    ) -> PreparedStatement:
        """Rewrite a parsed statement, run its onion adjustments, maybe cache."""
        kind = statement_kind(statement)
        param_count = ast.count_placeholders(statement)
        if isinstance(statement, (ast.CreateTable, ast.CreateIndex, ast.DropTable)):
            if param_count:
                raise ProxyError("DDL statements cannot take ? parameters")
            return PreparedStatement(statement, None, 0, self.schema.version, kind)

        prepare_start = time.perf_counter()
        # Rewriting mutates onion metadata (lower_onion, JOIN re-keying) as
        # clauses are analysed, but the matching adjustment UPDATEs only run
        # after the whole statement rewrites successfully.  If a later clause
        # turns out to be unsupported, the metadata must be rewound or the
        # schema would claim levels the stored ciphertexts never reached --
        # and every subsequent range query would silently compare garbage
        # (found by the differential conformance harness).
        rewind = (self.schema.snapshot_levels(), self.joins.snapshot(), self.schema.version)
        try:
            plan = self.rewriter.rewrite(statement)
            if not plan.passthrough:
                bound_indices = {slot.index for slot in plan.param_slots}
                if bound_indices != set(range(param_count)):
                    raise UnsupportedQueryError(
                        "a ? placeholder appears in a position that cannot be bound "
                        "over encrypted data"
                    )
        except UnsupportedQueryError as exc:
            self._restore_onion_state(rewind)
            self.stats.unsupported_queries += 1
            self._unsupported_log.append(str(exc))
            raise
        except Exception:
            self._restore_onion_state(rewind)
            raise
        self.stats.queries_rewritten += 1
        self.stats.onion_adjustments = self.rewriter.onion_adjustments
        self.record_computations(plan)
        rewrite_time = time.perf_counter() - prepare_start
        self.stats.proxy_time_seconds += rewrite_time
        self.stats.prepare_time_seconds += rewrite_time

        # Any metadata the rewrite mutated (onion lowers, JOIN re-keys, HOM
        # staleness, version bumps) as one state-setting catalog diff.
        meta_diff = (
            self._catalog_meta_diff(rewind) if self.catalog is not None else None
        )

        # Onion adjustments run inside a transaction so concurrent readers
        # never observe a half-adjusted column (§3.2).  They run once, here at
        # prepare time; the stored plan is adjustment-free afterwards.  A
        # server failure mid-adjustment (real DBMS backends can fail) rolls
        # the data back and rewinds the metadata, so schema levels never
        # claim layers the stored ciphertexts did not reach.
        #
        # With a catalog attached the adjustment is two-phase crash
        # consistent: a durable INTENT (ops + metadata diff + one canary
        # ciphertext) precedes the backend UPDATEs, and a COMMIT record
        # follows the backend commit.  A crash anywhere in between leaves an
        # in-doubt intent that recovery resolves idempotently by probing the
        # canary.  The ``adjust.*`` crash points bracket every phase edge.
        if plan.adjustments:
            adjust_start = time.perf_counter()
            own_transaction = not self.db.transactions.in_transaction
            intent_id: Optional[int] = None
            if self.catalog is not None:
                intent_id = self.catalog.begin_adjustment(
                    [list(op) for op in plan.adjustment_meta],
                    meta_diff or {},
                    self._sample_canary(plan.adjustment_meta),
                )
                if not own_transaction:
                    # Inside an application transaction the intent's fate is
                    # the transaction's: COMMIT/ROLLBACK logs its resolution.
                    self._txn_pending_intents.append(intent_id)
                if faults.INJECTOR is not None:
                    faults.INJECTOR.fire("adjust.intent", target=self, intent=intent_id)
            try:
                if own_transaction:
                    self.db.execute(ast.Begin())
                for adjustment in plan.adjustments:
                    self.db.execute(adjustment)
                if faults.INJECTOR is not None and intent_id is not None:
                    faults.INJECTOR.fire("adjust.applied", target=self, intent=intent_id)
                if own_transaction:
                    self.db.execute(ast.Commit())
                if faults.INJECTOR is not None and intent_id is not None:
                    faults.INJECTOR.fire("adjust.commit", target=self, intent=intent_id)
            except SimulatedCrash:
                # Process death: no rollback, no rewind, no abort record --
                # the intent stays in doubt and recovery alone resolves it.
                raise
            except Exception:
                if own_transaction:
                    self.db.execute(ast.Rollback())
                    self._restore_onion_state(rewind)
                    if intent_id is not None:
                        self.catalog.abort_adjustment(intent_id)
                else:
                    # Inside an application transaction there is no savepoint
                    # to unwind just the adjustments, and some strips may
                    # already be applied -- rewinding only the metadata would
                    # make the next query re-strip stripped ciphertexts.
                    # Abort the whole transaction instead: data and onion
                    # metadata rewind together to the BEGIN snapshot (which
                    # also logs abort records for the pending intents).
                    self._execute_transaction_control(ast.Rollback())
                raise
            if intent_id is not None and own_transaction:
                self.catalog.commit_adjustment(intent_id)
            plan.adjustments = []
            plan.adjustment_meta = []
            self.stats.server_time_seconds += time.perf_counter() - adjust_start
        elif meta_diff:
            # Metadata-only mutations (OPE -> OPE-JOIN policy changes, HOM
            # staleness marks, plan-version bumps) have no backend write to
            # anchor a two-phase protocol to; one synced meta record is
            # enough because replaying it is a pure state assignment.
            self.catalog.append(dict(meta_diff, t="meta"), sync=True)

        prepared = PreparedStatement(
            statement, plan, param_count, self.schema.version, kind, sql_key=cache_key
        )
        if plan.cacheable and not plan.passthrough:
            self.plan_cache.put(prepared)
        return prepared

    def execute_prepared(
        self, prepared: PreparedStatement, params: Optional[Sequence[Any]] = None
    ) -> ResultSet:
        """Execute a prepared statement with the given parameter values."""
        params = tuple(params) if params is not None else ()
        self.stats.queries_processed += 1
        total_start = time.perf_counter()
        try:
            if prepared.is_ddl:
                return self._execute_ddl(prepared.statement)

            plan = prepared.plan
            if plan.passthrough:
                return self._execute_transaction_control(plan.statement)

            if len(params) != prepared.param_count:
                raise ProxyError(
                    f"statement expects {prepared.param_count} parameters, "
                    f"got {len(params)}"
                )
            bind_start = time.perf_counter()
            if params:
                bind_parameters(plan, params, self.encryptor)
            bind_time = time.perf_counter() - bind_start

            server_start = time.perf_counter()
            if plan.hom_rmw:
                server_result = self._execute_with_rmw(plan, params)
            else:
                server_result = self.db.execute(plan.statement)
            server_time = time.perf_counter() - server_start

            decrypt_start = time.perf_counter()
            if isinstance(prepared.statement, ast.Select):
                result = decrypt_results(plan, server_result, self.encryptor)
            else:
                result = ResultSet([], [], server_result.rowcount)
            decrypt_time = time.perf_counter() - decrypt_start

            self.stats.proxy_time_seconds += bind_time + decrypt_time
            self.stats.server_time_seconds += server_time
            return result
        finally:
            self.stats.record_query_type(
                prepared.kind, time.perf_counter() - total_start
            )
            self.cache.enforce_budget()

    def _execute_with_rmw(
        self, plan: RewritePlan, params: Sequence[Any]
    ) -> ResultSet:
        """Run the packed-cell RMW pre-writes and the main statement atomically.

        The RMW splices packed HOM cells with separate UPDATEs *before* the
        main statement; a backend failure between the two would otherwise
        persist the spliced cells while the non-HOM onions keep their old
        values -- a row the proxy can never again read consistently.  The
        same own-transaction discipline as onion adjustments applies: wrap
        the pair when no application transaction is open, and abort the
        whole application transaction otherwise (no savepoints to unwind
        just the pre-writes).
        """
        own_transaction = not self.db.transactions.in_transaction
        try:
            if own_transaction:
                self.db.execute(ast.Begin())
            self._run_hom_rmw(plan, params)
            result = self.db.execute(plan.statement)
            if own_transaction:
                self.db.execute(ast.Commit())
            return result
        except Exception:
            if own_transaction:
                self.db.execute(ast.Rollback())
            else:
                # Data and onion metadata rewind together to BEGIN.
                self._execute_transaction_control(ast.Rollback())
            raise

    def _run_hom_rmw(self, plan: RewritePlan, params: Sequence[Any]) -> None:
        """Rewrite packed group cells for an UPDATE's absolute assignments.

        §3.3's SELECT-then-UPDATE strategy, applied per packed group: read
        the packed cells of the rows matching the (already bound) WHERE
        clause, splice the reassigned slots in plaintext, and write each
        fresh ciphertext back keyed on the old cell value.  Runs *before*
        the main UPDATE so the predicate still evaluates against pre-update
        onion state; untouched slots -- including pending homomorphic
        increments -- survive bit-exactly.  Paillier cells are probabilistic,
        so two rows share a cell only when a previous RMW made them
        identical, in which case they remain interchangeable here too.
        """
        where = plan.statement.where
        for spec in plan.hom_rmw:
            select = ast.Select(
                items=[ast.SelectItem(ast.ColumnRef(spec.group_anon_name), None)],
                from_clause=ast.TableRef(spec.anon_table, None),
                where=where,
            )
            old_cells = {
                row[0] for row in self.db.execute(select).rows if row[0] is not None
            }
            if not old_cells:
                continue
            assignments = [
                (column, params[index] if index is not None else value)
                for column, index, value in spec.assignments
            ]
            for old_cell in old_cells:
                new_cell = self.encryptor.hom_group_rewrite(assignments, old_cell)
                match = ast.BinaryOp(
                    "=", ast.ColumnRef(spec.group_anon_name), ast.Literal(old_cell)
                )
                condition = match if where is None else ast.BinaryOp("AND", where, match)
                self.db.execute(
                    ast.Update(
                        spec.anon_table,
                        [(spec.group_anon_name, ast.Literal(new_cell))],
                        condition,
                    )
                )

    def _restore_onion_state(self, snapshot: tuple) -> None:
        """Rewind onion levels, JOIN-ADJ key state and the schema version.

        Used when a prepare fails before its effects became visible: the
        restored state is identical to what every cached plan was built
        against, so the version counter rewinds too (lower_onion bumped it
        mid-rewrite) and the plan cache survives -- nothing can have been
        cached during the failed prepare.  If the JOIN-ADJ keys really
        moved, stay conservative and invalidate.
        """
        levels, join_state, version = snapshot
        self.schema.restore_levels(levels, bump_version=False)
        self.schema.version = version
        if self.joins.restore(join_state):
            # Cached plans with baked JOIN-ADJ constants are stale, and so
            # are memoised Eq encryptions (same contract as ROLLBACK).
            self.schema.bump_version()
            self.cache.invalidate_eq()

    def _execute_transaction_control(self, statement: ast.Statement) -> ResultSet:
        """BEGIN/COMMIT/ROLLBACK, keeping onion metadata transactional too.

        Onion-adjustment UPDATEs issued while an application transaction is
        open are rolled back with it, so the proxy snapshots every onion
        level at BEGIN and rewinds its schema metadata (invalidating cached
        plans) when the transaction aborts.
        """
        if isinstance(statement, ast.Begin) and not self.db.transactions.in_transaction:
            self._onion_snapshot = (
                self.schema.snapshot_levels(),
                self.joins.snapshot(),
            )
        pre_rollback = (
            (self.schema.snapshot_levels(), self.joins.snapshot(), self.schema.version)
            if isinstance(statement, ast.Rollback) and self.catalog is not None
            else None
        )
        result = self.db.execute(statement)
        if isinstance(statement, ast.Commit):
            self._onion_snapshot = None
            if self.catalog is not None:
                # The backend made the adjustments durable with this COMMIT;
                # resolve every intent that rode the transaction.
                for intent_id in self._txn_pending_intents:
                    self.catalog.commit_adjustment(intent_id)
            self._txn_pending_intents = []
        elif isinstance(statement, ast.Rollback):
            if self._onion_snapshot is not None:
                levels, join_state = self._onion_snapshot
                self.schema.restore_levels(levels)
                if self.joins.restore(join_state):
                    # Cached plans with baked JOIN-ADJ constants are stale,
                    # and so are memoised Eq encryptions.
                    self.schema.bump_version()
                    self.cache.invalidate_eq()
            self._onion_snapshot = None
            if self.catalog is not None:
                for intent_id in self._txn_pending_intents:
                    self.catalog.abort_adjustment(intent_id)
                self._txn_pending_intents = []
                # Metadata-only records logged inside the transaction are
                # already durable; one corrective diff rewinds the replayed
                # state to the BEGIN snapshot the proxy just restored to.
                correction = self._catalog_meta_diff(pre_rollback)
                if correction:
                    self.catalog.append(dict(correction, t="meta"), sync=True)
            self._txn_pending_intents = []
        return result

    def _execute_ddl(self, statement: ast.Statement) -> ResultSet:
        """CREATE/DROP statements the proxy handles outside the rewriter."""
        if isinstance(statement, ast.CreateTable):
            self.create_table(statement)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.CreateIndex):
            for column in statement.columns:
                self.create_index(statement.table, column)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.DropTable):
            if self.schema.has_table(statement.table):
                meta = self.schema.drop_table(statement.table)
                if self.catalog is not None:
                    # Write-ahead: with the record durable first, a crash
                    # before the backend drop leaves an orphaned anonymised
                    # table that recovery removes.
                    self.catalog.append(
                        {
                            "t": "drop_table",
                            "table": statement.table,
                            "anon": meta.anon_name,
                            "version": self.schema.version,
                        },
                        sync=True,
                    )
                return self.db.execute(ast.DropTable(meta.anon_name, statement.if_exists))
            return self.db.execute(statement)
        raise ProxyError(f"unexpected DDL statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    # durable metadata catalog: write-through, recovery, compaction
    # ------------------------------------------------------------------
    def _attach_catalog(self, catalog: Union[str, os.PathLike, MetadataCatalog]) -> None:
        if not isinstance(catalog, MetadataCatalog):
            catalog = MetadataCatalog(os.fspath(catalog))
        self.catalog = catalog
        if catalog.has_history:
            self._recover_from_catalog(catalog)
        # Installed after recovery so no compaction can fire mid-rebuild.
        catalog.snapshot_source = self._snapshot_record

    def _catalog_meta_diff(self, rewind: tuple) -> Optional[dict]:
        """The state-setting ``meta`` payload for changes since ``rewind``.

        ``rewind`` is the (levels, joins, version) triple `_prepare_statement`
        snapshots before rewriting.  Only deltas are logged -- onion levels
        that moved, HOM columns whose staleness flipped, JOIN-ADJ columns
        whose group base changed -- so steady-state DML appends nothing.
        """
        old_levels, (_, old_bases), old_version = rewind
        meta: dict = {}
        levels: list[list] = []
        hom_stale: list[list] = []
        for (table, column), (onions, stale) in self.schema.snapshot_levels().items():
            old = old_levels.get((table, column))
            for onion, level in onions.items():
                if old is None or old[0].get(onion) is not level:
                    levels.append([table, column, onion.value, level.value])
            if stale != (old[1] if old is not None else False):
                hom_stale.append([table, column, stale])
        bases: list[list] = []
        for column_id, base in self.joins.snapshot()[1].items():
            if old_bases.get(column_id, column_id) != base:
                bases.append([column_id[0], column_id[1], base[0], base[1]])
        if levels:
            meta["levels"] = levels
        if hom_stale:
            meta["hom_stale"] = hom_stale
        if bases:
            meta["joins"] = {"bases": bases}
        if self.schema.version != old_version:
            meta["version"] = self.schema.version
        return meta or None

    def _sample_canary(self, ops: list) -> Optional[dict]:
        """One stored ciphertext plus its expected post-adjustment value.

        Recovery probes the pair to decide whether an in-doubt adjustment's
        UPDATEs reached the backend: the pre-value still stored means they
        did not, the post-value means they committed.  The expected value is
        computed with the same UDF implementations the server runs, under
        keys re-derived from the master key.  Returns None when every
        adjusted column stores only NULLs -- re-running the strips is then a
        no-op either way, because the UDFs pass NULL through.
        """
        targets: list[tuple] = []
        for op in ops:
            target = (op[1], op[2], Onion(op[3]) if op[0] == "strip" else Onion.EQ)
            if target not in targets:
                targets.append(target)
        for table, column_name, onion in targets:
            column = self.schema.column(table, column_name)
            state = column.onion_state(onion)
            anon_table = self.schema.table(table).anon_name
            sample = ast.Select(
                items=[
                    ast.SelectItem(ast.ColumnRef(state.anon_name), None),
                    ast.SelectItem(ast.ColumnRef(column.iv_column), None),
                ],
                from_clause=ast.TableRef(anon_table, None),
                limit=16,
            )
            for row in self.db.execute(sample).rows:
                if row[0] is None:
                    continue
                post = self._canary_post_value(row[0], row[1], column, onion, ops)
                return {
                    "anon_table": anon_table,
                    "anon_column": state.anon_name,
                    "pre": tag_value(row[0]),
                    "post": tag_value(post),
                }
        return None

    def _canary_post_value(
        self, value: Any, iv: Any, column: Any, onion: Onion, ops: list
    ) -> Any:
        """Apply the ops targeting one column, exactly as the server would."""
        for op in ops:
            if (op[1], op[2]) != (column.table, column.name):
                continue
            if op[0] == "strip" and Onion(op[3]) is onion:
                layer = EncryptionScheme(op[4])
                key = self.encryptor.layer_key(column, onion, layer)
                if layer is EncryptionScheme.RND:
                    if onion is Onion.EQ:
                        value = udfs._decrypt_rnd_eq(key, value, iv)
                    else:
                        value = udfs._decrypt_rnd_ord(key, value, iv)
                elif layer is EncryptionScheme.DET:
                    value = udfs._decrypt_det_eq(key, value)
            elif op[0] == "join" and onion is Onion.EQ:
                value = udfs._join_adjust(value, int(op[3]).to_bytes(32, "big"))
        return value

    def _canary_present(self, anon_table: str, anon_column: str, value: Any) -> bool:
        probe = ast.Select(
            items=[ast.SelectItem(ast.ColumnRef(anon_column), None)],
            from_clause=ast.TableRef(anon_table, None),
            where=ast.BinaryOp("=", ast.ColumnRef(anon_column), ast.Literal(value)),
        )
        return bool(self.db.execute(probe).rows)

    def _recover_from_catalog(self, catalog: MetadataCatalog) -> None:
        """Rebuild proxy metadata from snapshot+WAL, reconcile the backend.

        Column keys are never logged; they re-derive from the master key as
        each table restores, after which the recorded onion levels, JOIN-ADJ
        group structure, OPE join groups, shard routing and schema version
        overlay the freshly-built defaults.  The backend is then reconciled
        with the log: DDL that was recorded but never executed is completed,
        anonymised tables orphaned by an interrupted DROP are removed, and
        every in-doubt adjustment intent is resolved by probing its canary
        ciphertext -- completing exactly the work whose commit record the
        crash swallowed, never re-stripping already-stripped rows.
        """
        from repro.sql.types import ColumnDef, DataType

        state = catalog.state
        sharded = getattr(self.db, "is_sharded", False)
        backend_tables = set(self.db.table_names())
        for payload in state.tables:
            meta = self.schema.restore_table(payload)
            for column in meta.columns.values():
                if not column.plaintext:
                    self.joins.register_column(column.table, column.name)
            columns = [
                ColumnDef(name, DataType(type_name, length))
                for name, type_name, length in payload["columns"]
            ]
            anon_ddl = ast.CreateTable(
                meta.anon_name,
                self._anonymized_columns(ast.CreateTable(meta.name, columns)),
            )
            if sharded:
                # Re-register the anonymised layout for scratch-replay plans.
                self.db.adopt_ddl(anon_ddl)
            if meta.anon_name not in backend_tables:
                # create_table record synced, crash hit before the DDL ran.
                self.db.execute(anon_ddl)
        live_anon = {payload["anon"] for payload in state.tables}
        for orphan in sorted(backend_tables - live_anon):
            # drop_table record synced, crash hit before the backend drop.
            self.db.execute(ast.DropTable(orphan, if_exists=True))
        for (table, column_name, onion), level in state.levels.items():
            column = self._recovered_column(table, column_name)
            if column is None:
                continue
            onion_state = column.onions.get(Onion(onion))
            if onion_state is not None:
                onion_state.level = EncryptionScheme(level)
        for (table, column_name), stale in state.hom_stale.items():
            column = self._recovered_column(table, column_name)
            if column is not None:
                column.hom_stale_others = bool(stale)
        for (table, column_name), group in state.ope_groups.items():
            column = self._recovered_column(table, column_name)
            if column is not None:
                column.ope_join_group = group
        for column_id, base in state.join_bases.items():
            self.joins.restore_group(tuple(column_id), tuple(base))
        if sharded:
            for anon_table, (anon_column, mode) in state.routing.items():
                self.db.declare_routing(anon_table, anon_column, mode=mode)
        # Restored last: every cached-plan consumer keys on this counter, so
        # prepared-statement semantics survive the restart unchanged.
        self.schema.version = state.version
        for intent_id in sorted(state.in_doubt):
            self._resolve_in_doubt(state.in_doubt[intent_id])
            catalog.commit_adjustment(intent_id)

    def _recovered_column(self, table: str, column: str) -> Optional[Any]:
        table_meta = self.schema.tables.get(table)
        if table_meta is None:
            return None
        return table_meta.columns.get(column)

    def _resolve_in_doubt(self, intent: dict) -> None:
        """Verify-and-complete one logged adjustment intent (idempotently).

        The canary distinguishes "the UPDATEs never committed" (its
        pre-value is still stored) from "they committed but the crash beat
        the commit record" (its post-value is stored).  No canary means the
        adjusted columns held only NULLs, so re-running is safe either way.
        """
        rerun = True
        canary = intent.get("canary")
        if canary:
            anon_table, anon_column = canary["anon_table"], canary["anon_column"]
            if self._canary_present(anon_table, anon_column, untag_value(canary["pre"])):
                rerun = True
            elif self._canary_present(anon_table, anon_column, untag_value(canary["post"])):
                rerun = False
            else:
                raise CatalogError(
                    "in-doubt adjustment canary matches neither its pre- nor "
                    "post-adjustment value: the backend does not correspond "
                    "to this catalog"
                )
        if rerun:
            updates = [
                update
                for op in intent["ops"]
                if (update := self._rebuild_adjustment(op)) is not None
            ]
            try:
                self.db.execute(ast.Begin())
                for update in updates:
                    self.db.execute(update)
                self.db.execute(ast.Commit())
            except Exception:
                self.db.execute(ast.Rollback())
                raise
        self._apply_meta_payload(intent.get("meta") or {})

    def _rebuild_adjustment(self, op: list) -> Optional[ast.Statement]:
        """Re-derive the server UPDATE for one logged adjustment op."""
        if op[0] == "strip":
            _, table, column_name, onion_value, layer_value = op
            column = self.schema.column(table, column_name)
            return self.rewriter._adjustment_update(
                column, Onion(onion_value), EncryptionScheme(layer_value)
            )
        if op[0] == "join":
            _, table, column_name, delta = op
            column = self.schema.column(table, column_name)
            eq_state = column.onion_state(Onion.EQ)
            call = ast.FunctionCall(
                udfs.JOIN_ADJUST,
                [
                    ast.ColumnRef(eq_state.anon_name),
                    ast.Literal(int(delta).to_bytes(32, "big")),
                ],
            )
            return ast.Update(
                self.schema.table(table).anon_name,
                [(eq_state.anon_name, call)],
                None,
            )
        raise CatalogError(f"unknown adjustment op {op[0]!r}")

    def _apply_meta_payload(self, meta: dict) -> None:
        """Fold a logged ``meta`` payload into live schema/join state."""
        for table, column_name, onion, level in meta.get("levels", ()):
            column = self._recovered_column(table, column_name)
            if column is None:
                continue
            onion_state = column.onions.get(Onion(onion))
            if onion_state is not None:
                onion_state.level = EncryptionScheme(level)
        for table, column_name, stale in meta.get("hom_stale", ()):
            column = self._recovered_column(table, column_name)
            if column is not None:
                column.hom_stale_others = bool(stale)
        for table, column_name, group in meta.get("ope_groups", ()):
            column = self._recovered_column(table, column_name)
            if column is not None:
                column.ope_join_group = group
        for table, column_name, base_table, base_column in (
            meta.get("joins") or {}
        ).get("bases", ()):
            self.joins.restore_group((table, column_name), (base_table, base_column))
        if "version" in meta:
            self.schema.version = int(meta["version"])

    def _snapshot_record(self) -> dict:
        """Full current metadata as one ``snapshot`` record (compaction)."""
        state = CatalogState()
        state.tables = [
            self.schema.describe_table(name) for name in self.schema.table_names()
        ]
        state.table_counter = self.schema._table_counter
        state.version = self.schema.version
        for table, column, onion, level in self.schema.catalog_levels():
            state.levels[(table, column, onion)] = level
        for table_name, table_meta in self.schema.tables.items():
            for column_name, column in table_meta.columns.items():
                if column.hom_stale_others:
                    state.hom_stale[(table_name, column_name)] = True
                if column.ope_join_group is not None:
                    state.ope_groups[(table_name, column_name)] = column.ope_join_group
        for column_id, base in self.joins.snapshot()[1].items():
            if base != column_id:
                state.join_bases[column_id] = base
        if getattr(self.db, "is_sharded", False):
            state.routing = dict(self.db.routing_catalog())
        if self.catalog is not None:
            state.resolved = set(self.catalog.state.resolved)
        return state.snapshot_payload()

    # ------------------------------------------------------------------
    # training mode (§3.5.1) and reporting
    # ------------------------------------------------------------------
    def train(self, queries: Iterable[Union[str, ast.Statement]]) -> TrainingReport:
        """Replay a trace of queries, adjusting onions, and report the outcome.

        Unsupported queries are collected as warnings instead of being raised,
        exactly as the paper's training mode does.
        """
        self._training = True
        try:
            for query in queries:
                try:
                    self.execute(query)
                except UnsupportedQueryError:
                    continue
        finally:
            self._training = False
        return self.report()

    def report(self) -> TrainingReport:
        """The current steady-state onion levels of every managed column."""
        # The rewriter records computations per plan; the proxy accumulates
        # them into _computation_log as each plan is prepared.
        computations = dict(self._computation_log)
        return build_report(self.schema, computations, self._unsupported_log)

    def record_computations(self, plan: RewritePlan) -> None:
        for key, classes in plan.computations.items():
            self._computation_log.setdefault(key, set()).update(classes)

    # ------------------------------------------------------------------
    # storage / security statistics used by the evaluation
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Total size of the encrypted database (for §8.4.3)."""
        return self.db.storage_bytes()

    def min_enc(self, table: str, column: str) -> SecurityLevel:
        """MinEnc of a column (§8.3)."""
        return self.schema.column(table, column).min_enc()

    def onion_level(self, table: str, column: str, onion: Onion) -> str:
        return self.schema.column(table, column).onion_state(onion).level.value

"""The CryptDB database proxy (single-principal mode, threat 1).

The proxy intercepts every SQL statement the application issues, rewrites it
to execute over encrypted data, forwards it (together with any onion
adjustment UPDATEs) to the unmodified DBMS, and decrypts the results.  It
holds the master key MK, the plaintext schema, and the current onion level of
every column; the DBMS only ever sees anonymised identifiers, ciphertexts and
CryptDB's UDFs (Figure 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional, Sequence, Union

from repro import faults
from repro.core import udfs
from repro.core.cache import CacheStatistics, CryptoCache
from repro.core.encryptor import Encryptor
from repro.core.joins import JoinManager
from repro.core.onion import EncryptionScheme, Onion, SecurityLevel
from repro.core.plan_cache import (
    PlanCache,
    PreparedStatement,
    bind_parameters,
    bind_parameters_batch,
    statement_kind,
)
from repro.core.rewriter import RewritePlan, Rewriter
from repro.core.results import decrypt_results
from repro.core.schema import ProxySchema
from repro.core.training import TrainingReport, build_report
from repro.crypto.keys import KeyManager, MasterKey
from repro.crypto.paillier import PackingConfig, PaillierKeyPair
from repro.errors import ProxyError, ReproError, UnsupportedQueryError
from repro.parallel.jobs import HomRandomnessJob
from repro.parallel.pool import CryptoWorkerPool, ParallelConfig, ParallelUnavailable
from repro.sql import ast_nodes as ast
from repro.sql.engine import Database
from repro.sql.executor import ResultSet
from repro.sql.parameters import normalize_statement_text
from repro.sql.parser import parse_sql

# A modest default keeps pure-Python Paillier fast; the paper uses 1024-bit
# moduli (2048-bit ciphertexts), which callers can request explicitly.
DEFAULT_PAILLIER_BITS = 1024


@dataclass
class ProxyStatistics:
    """Operational counters exposed for the evaluation benchmarks."""

    queries_processed: int = 0
    queries_rewritten: int = 0
    onion_adjustments: int = 0
    unsupported_queries: int = 0
    proxy_time_seconds: float = 0.0
    server_time_seconds: float = 0.0
    #: Time spent parsing + rewriting statement shapes (the prepare phase);
    #: plan-cache hits skip this entirely.
    prepare_time_seconds: float = 0.0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0
    #: Statements executed through the batched executemany pipeline, and how
    #: many parameter rows they covered.
    batched_statements: int = 0
    batched_rows: int = 0
    #: End-to-end per-statement wall times, keyed by statement kind
    #: ("SELECT", "INSERT", ...), populated by every execute() call.
    per_query_type_seconds: dict[str, list] = field(default_factory=dict)
    #: The proxy's unified ciphertext cache (DET/OPE/SEARCH memos, HOM pool);
    #: set by the proxy, excluded from reset()'s zeroing.
    cache: Optional[CryptoCache] = None
    #: The proxy's crypto worker pool (None when serial); set by the proxy,
    #: excluded from reset()'s zeroing.  Its health counters are merged into
    #: cache_stats() so they travel the STATS frame with the cache block.
    pool: Optional[Any] = None
    #: The sharded backend (None when single-node); set by the proxy,
    #: excluded from reset()'s zeroing like cache/pool -- reset() asks it to
    #: zero its own scatter/merge counters instead.
    shard: Optional[Any] = None

    def cache_stats(self) -> CacheStatistics:
        """DET/OPE/SEARCH memo hit/miss counters and the HOM pool state."""
        stats = CacheStatistics() if self.cache is None else self.cache.statistics()
        if self.pool is not None:
            stats.pool_restarts = self.pool.restarts
            stats.pool_failures = self.pool.failures
            stats.pool_circuit_opens = self.pool.circuit_opens
            stats.pool_circuit_open = int(self.pool.circuit_open)
        return stats

    def record_query_type(self, kind: str, seconds: float) -> None:
        self.per_query_type_seconds.setdefault(kind, []).append(seconds)

    def record_query_type_batch(self, kind: str, seconds: float, rows: int) -> None:
        """Record a batch as per-row samples so means stay per-statement.

        An N-row executemany contributes N samples of ``seconds / N`` --
        count and total line up with the scalar path's bookkeeping instead
        of one N-row sample inflating the mean.
        """
        rows = max(rows, 1)
        self.per_query_type_seconds.setdefault(kind, []).extend(
            [seconds / rows] * rows
        )

    def query_type_summary(self) -> dict[str, dict[str, float]]:
        """Per-statement-type count/total/mean, for the benchmark reports."""
        summary: dict[str, dict[str, float]] = {}
        for kind, samples in sorted(self.per_query_type_seconds.items()):
            total = sum(samples)
            summary[kind] = {
                "count": len(samples),
                "total_seconds": total,
                "mean_ms": (total / len(samples)) * 1000 if samples else 0.0,
            }
        return summary

    def reset(self) -> None:
        """Zero every counter (timing series and cache hit/miss included).

        Cached ciphertext entries and the HOM pool survive a reset -- only
        the counters are cleared.
        """
        fresh = ProxyStatistics()
        for name, value in vars(fresh).items():
            if name in ("cache", "pool", "shard"):
                continue
            setattr(self, name, value)
        if self.cache is not None:
            self.cache.reset_counters()
        if self.pool is not None:
            self.pool.reset_counters()
        if self.shard is not None:
            self.shard.reset_counters()

    def shard_stats(self) -> Optional[dict]:
        """The sharded backend's scatter/merge counters, or None."""
        return self.shard.stats() if self.shard is not None else None


class CryptDBProxy:
    """Single-principal CryptDB proxy in front of an (unmodified) DBMS."""

    def __init__(
        self,
        db: Optional[Database] = None,
        master_key: Optional[MasterKey] = None,
        paillier_bits: int = DEFAULT_PAILLIER_BITS,
        paillier: Optional[PaillierKeyPair] = None,
        anonymize_names: bool = True,
        in_proxy_processing: bool = False,
        use_ciphertext_cache: bool = True,
        hom_precompute: int = 256,
        plan_cache_size: int = 256,
        workers: int = 0,
        parallelism: Optional[ParallelConfig] = None,
        hom_packing: Union[bool, PackingConfig] = True,
        cache_budget_bytes: Optional[int] = None,
    ):
        self.db = db if db is not None else Database()
        self.master_key = master_key if master_key is not None else MasterKey.generate()
        self.keys = KeyManager(self.master_key)
        self.paillier = paillier if paillier is not None else PaillierKeyPair.generate(paillier_bits)
        self.joins = JoinManager(self.master_key.material)
        # Packed HOM slots (§8.4): ``True`` uses the default layout, a
        # PackingConfig customises it, ``False`` keeps one scalar Paillier
        # ciphertext per value (the ``enc-packed-off`` conformance lane).
        if hom_packing is True:
            packing: Optional[PackingConfig] = PackingConfig()
        elif hom_packing:
            packing = hom_packing
        else:
            packing = None
        if packing is not None and packing.slot_width >= self.paillier.public.n.bit_length():
            # A demo-sized modulus that cannot hold even one slot falls back
            # to scalar ciphertexts rather than refusing to start.
            packing = None
        self.hom_packing = packing
        self.cache = CryptoCache(
            self.paillier,
            enabled=use_ciphertext_cache,
            budget_bytes=cache_budget_bytes,
        )
        # ``workers=N`` is shorthand for ``parallelism=ParallelConfig(workers=N)``;
        # an explicit config wins, with a bare ``workers`` overriding its count.
        if parallelism is None:
            parallelism = ParallelConfig(workers=workers)
        elif workers and parallelism.workers != workers:
            parallelism = replace(parallelism, workers=workers)
        self.parallelism = parallelism
        self.pool: Optional[CryptoWorkerPool] = None
        if parallelism.enabled:
            self.pool = CryptoWorkerPool(
                parallelism, self.paillier, stats_sink=self.cache.absorb_worker_counters
            )
        self.encryptor = Encryptor(
            self.keys,
            self.joins,
            self.paillier,
            use_ope_cache=use_ciphertext_cache,
            cache=self.cache,
            pool=self.pool,
            packing=self.hom_packing,
        )
        self.schema = ProxySchema(
            anonymize_names=anonymize_names,
            hom_slots=(
                self.hom_packing.slots_for(self.paillier.public.n)
                if self.hom_packing is not None
                else None
            ),
        )
        self.rewriter = Rewriter(
            self.schema, self.encryptor, self.joins, in_proxy_processing=in_proxy_processing
        )
        if use_ciphertext_cache and hom_precompute:
            self.cache.precompute_hom(hom_precompute)
        # Background HOM pool refill: when the randomness pool runs low the
        # Paillier key pair pings this proxy, which hands a precompute batch
        # to a crypto worker instead of letting the next INSERT burst stall
        # on inline ``r^n`` exponentiations.
        # Pool generation of the refill currently in flight, or None.  Keyed
        # on the generation so a restart that killed the job's callbacks
        # (they never fire after terminate) cannot wedge refills forever.
        self._hom_refill_inflight: Optional[int] = None
        self._hom_refill_hook = self._schedule_hom_refill
        if self.pool is not None and use_ciphertext_cache:
            self.paillier.refill_watermark = parallelism.hom_low_watermark
            self.paillier.refill_hook = self._hom_refill_hook
        self.stats = ProxyStatistics(cache=self.cache, pool=self.pool)
        self.plan_cache = PlanCache(plan_cache_size)
        self._onion_snapshot: Optional[tuple] = None
        self._computation_log: dict[tuple[str, str], set] = {}
        self._unsupported_log: list[str] = []
        self._training = False
        udfs.install_udfs(self.db, self.paillier.public, packing=self.hom_packing)
        if getattr(self.db, "is_sharded", False):
            # Hand the merge layer the Paillier *public* key (and packing
            # layout) so per-shard HOM partials recombine homomorphically at
            # the backend -- the private key never leaves the proxy.
            self.db.configure_crypto(self.paillier.public, self.hom_packing)
            self.stats.shard = self.db

    # ------------------------------------------------------------------
    # parallel crypto lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release proxy resources: terminates the crypto worker pool.

        Idempotent; a proxy without a pool is a no-op.  The proxy remains
        usable afterwards -- batch kernels simply run serially.
        """
        if self.paillier.refill_hook is self._hom_refill_hook:
            self.paillier.refill_hook = None
        if self.pool is not None:
            self.pool.close()
            self.pool = None
            self.encryptor.pool = None

    def _schedule_hom_refill(self) -> None:
        """Hand one Paillier randomness precompute batch to the worker pool."""
        pool = self.pool
        if pool is None or pool.broken or pool.closed:
            return
        if self._hom_refill_inflight == pool.generation:
            return  # one refill per pool generation at a time
        if faults.INJECTOR is not None:
            try:
                faults.INJECTOR.fire("paillier.refill", target=self)
            except ReproError:
                # An injected refill failure skips this batch; the next
                # encryption that drops through the watermark re-triggers,
                # and correctness never depends on pooled randomness.
                return
        self._hom_refill_inflight = pool.generation

        def on_done(factors: list) -> None:
            # Runs on the pool's result-handler thread; list.extend is a
            # single C-level call, and the counter bump goes through the
            # cache's lock-protected merge.
            self.paillier._randomness_pool.extend(factors)
            self.cache.note_async_refill()
            self._hom_refill_inflight = None

        def on_error(_exc: BaseException) -> None:
            self._hom_refill_inflight = None

        try:
            pool.submit_async(
                HomRandomnessJob(self.parallelism.hom_refill_batch), on_done, on_error
            )
        except ParallelUnavailable:
            self._hom_refill_inflight = None

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def create_table(
        self,
        sql_or_statement: Union[str, ast.CreateTable],
        plaintext_columns: Optional[Iterable[str]] = None,
        sensitive_columns: Optional[Iterable[str]] = None,
        minimum_levels: Optional[dict[str, SecurityLevel]] = None,
    ) -> None:
        """Create an application table; the DBMS receives the anonymised layout.

        ``plaintext_columns`` implements the §3.5.2 developer annotation that
        leaves non-sensitive fields unencrypted; ``minimum_levels`` implements
        the §3.5.1 minimum-onion-layer constraint; ``sensitive_columns`` only
        tags columns for the security analysis.
        """
        statement = (
            parse_sql(sql_or_statement) if isinstance(sql_or_statement, str) else sql_or_statement
        )
        if not isinstance(statement, ast.CreateTable):
            raise ProxyError("create_table expects a CREATE TABLE statement")
        table_meta = self.schema.add_table(
            statement.table,
            statement.columns,
            plaintext_columns=set(plaintext_columns or ()),
            sensitive_columns=set(sensitive_columns or ()),
            minimum_levels=dict(minimum_levels or {}),
        )
        for column_def in statement.columns:
            column = table_meta.column(column_def.name)
            if not column.plaintext:
                self.joins.register_column(column.table, column.name)
        anon_columns = self._anonymized_columns(statement)
        self.db.execute(ast.CreateTable(table_meta.anon_name, anon_columns, statement.if_not_exists))
        if getattr(self.db, "is_sharded", False):
            self._declare_shard_key(statement.table)

    def _declare_shard_key(self, table: str) -> None:
        """Tell a sharded backend which anonymised column routes inserts.

        The shard key's routing onion is peeled ahead of time -- DET for
        det-hash routing, OPE for ope-range -- so equal/ordered plaintexts
        land on predictable shards.  The table is empty here, so the peel is
        metadata-only (no server-side UPDATEs), and it is the same §3.5.1
        static trade-off as any pre-lowered column: the shard key leaks
        equality (or order) to the DBMS from the start instead of after the
        first query that needs it.  Routing stays placement-only, so a key
        whose onion later adjusts further (e.g. JOIN-ADJ re-keying) never
        breaks reads.
        """
        table_meta = self.schema.table(table)
        preferred = getattr(self.db, "shard_key", None)
        names = table_meta.column_names()
        key = preferred if preferred in names else names[0]
        column = table_meta.column(key)
        mode = getattr(self.db, "mode", "det-hash")
        if column.plaintext:
            self.db.declare_routing(table_meta.anon_name, column.name, mode=mode)
            return
        if mode == "ope-range" and column.has_onion(Onion.ORD):
            self.schema.lower_onion(table, key, Onion.ORD, EncryptionScheme.OPE)
            anon = column.onion_state(Onion.ORD).anon_name
            self.db.declare_routing(table_meta.anon_name, anon, mode="ope-range")
            return
        if column.has_onion(Onion.EQ):
            self.schema.lower_onion(table, key, Onion.EQ, EncryptionScheme.DET)
            anon = column.onion_state(Onion.EQ).anon_name
            self.db.declare_routing(table_meta.anon_name, anon, mode="det-hash")
        # No usable onion: the table stays undeclared and all rows pin to
        # shard 0 -- correct, just not distributed.

    def _anonymized_columns(self, statement: ast.CreateTable):
        from repro.sql.types import BIGINT, BLOB, ColumnDef

        table_meta = self.schema.table(statement.table)
        anon_columns: list[ColumnDef] = []
        for column_def in statement.columns:
            column = table_meta.column(column_def.name)
            if column.plaintext:
                anon_columns.append(ColumnDef(column_def.name, column_def.data_type))
                continue
            for onion, state in column.onions.items():
                if onion is Onion.ADD and column.hom_packed:
                    continue  # stored once per group, below
                if onion in (Onion.EQ, Onion.SEARCH):
                    anon_columns.append(ColumnDef(state.anon_name, BLOB()))
                elif onion is Onion.ORD:
                    anon_columns.append(ColumnDef(state.anon_name, BIGINT()))
                elif onion is Onion.ADD:
                    anon_columns.append(ColumnDef(state.anon_name, BLOB()))
            anon_columns.append(ColumnDef(column.iv_column, BLOB()))
        for group in table_meta.hom_groups:
            # One shared packed-Add ciphertext column per group (§8.4).
            anon_columns.append(ColumnDef(group.anon_name, BLOB()))
        return anon_columns

    def create_index(self, table: str, column: str) -> None:
        """Create indexes over the column's DET/JOIN and OPE onions (§3.3)."""
        column_meta = self.schema.column(table, column)
        anon_table = self.db.table(self.schema.table(table).anon_name)
        if column_meta.plaintext:
            anon_table.create_index(column)
            return
        if column_meta.has_onion(Onion.EQ):
            anon_table.create_index(column_meta.onion_state(Onion.EQ).anon_name)
        if column_meta.has_onion(Onion.ORD):
            anon_table.create_index(column_meta.onion_state(Onion.ORD).anon_name, ordered=True)

    def declare_range_join(self, columns: list[tuple[str, str]], group: str = "default") -> None:
        """Declare ahead of time that columns will be range-joined (§3.4).

        All declared columns share one OPE key; must be called before data is
        inserted into those columns.
        """
        for table, column in columns:
            self.schema.column(table, column).ope_join_group = group

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def execute(
        self,
        sql_or_statement: Union[str, ast.Statement],
        params: Optional[Sequence[Any]] = None,
    ) -> ResultSet:
        """Execute one application statement over encrypted data.

        ``params`` binds ``?`` placeholders (DB-API *qmark* style).  SQL text
        goes through the rewrite-plan cache, so repeated executions of the
        same parameterized shape skip re-parsing and re-rewriting and only
        pay for encrypting the bound parameters.
        """
        if isinstance(sql_or_statement, str):
            prepared = self.prepare(sql_or_statement)
        else:
            prepared = self._prepare_statement(sql_or_statement, cache_key=None)
        return self.execute_prepared(prepared, params)

    def executemany(
        self, sql: str, seq_of_params: Iterable[Sequence[Any]]
    ) -> int:
        """Execute one statement shape for every parameter tuple.

        A fully parameterized shape is prepared (rewritten) exactly once and
        then executed through the **batched pipeline**: all parameter rows
        are encrypted column-at-a-time through the plan's deferred slots
        (deterministic layers deduplicated via the ciphertext cache), and a
        single-row INSERT shape is forwarded to the DBMS as one multi-row
        INSERT.  Shapes that bake per-execution randomness into the plan
        (literal values written to encrypted columns) fall back to per-row
        re-rewriting so RND IVs and HOM ciphertexts are never replayed.
        Returns the total affected rowcount.
        """
        rows = [tuple(params) for params in seq_of_params]
        if not rows:
            # PEP 249: an empty parameter sequence is a pure no-op.  Not even
            # prepare() runs -- preparing has side effects (onion-adjustment
            # UPDATEs, plan-cache population) that a no-op must not trigger,
            # and a bad shape will still fail loudly on first real use.
            return 0
        prepared = self.prepare(sql)
        plan = prepared.plan
        # A row with the wrong parameter count fails the whole batch before
        # any row is written -- on the per-row fallback path too.
        for index, params in enumerate(rows):
            if len(params) != prepared.param_count:
                raise ProxyError(
                    f"statement expects {prepared.param_count} parameters, "
                    f"got {len(params)} (row {index})"
                )
        batchable = (
            not prepared.is_ddl
            and not plan.passthrough
            and plan.cacheable
            and prepared.param_count > 0
        )
        if batchable:
            return self._execute_prepared_batch(prepared, rows)
        reusable = (
            prepared.is_ddl or plan.passthrough or plan.cacheable
        )
        total = 0
        for params in rows:
            total += self.execute_prepared(prepared, params).rowcount
            if not reusable:
                prepared = self.prepare(sql)
        return total

    def _execute_prepared_batch(
        self, prepared: PreparedStatement, rows: list[tuple]
    ) -> int:
        """Run one cacheable statement shape over a batch of parameter rows."""
        plan = prepared.plan
        total_start = time.perf_counter()
        self.stats.queries_processed += len(rows)
        try:
            bind_start = time.perf_counter()
            bound_rows = bind_parameters_batch(plan, rows, self.encryptor)
            bind_time = time.perf_counter() - bind_start

            statement = plan.statement
            slots = plan.param_slots
            server_start = time.perf_counter()
            if (
                isinstance(statement, ast.Insert)
                and len(statement.rows) == 1
                and all(isinstance(expr, ast.Literal) for expr in statement.rows[0])
            ):
                # One multi-row INSERT: bind each row into the template and
                # snapshot the literals, so the server executes a single
                # statement for the whole batch.
                template = statement.rows[0]
                insert_rows = []
                for bound in bound_rows:
                    for slot, value in zip(slots, bound):
                        slot.target.value = value
                    insert_rows.append([ast.Literal(expr.value) for expr in template])
                total = self.db.execute(
                    ast.Insert(statement.table, statement.columns, insert_rows)
                ).rowcount
            else:
                total = 0
                for row_index, bound in enumerate(bound_rows):
                    for slot, value in zip(slots, bound):
                        slot.target.value = value
                    if plan.hom_rmw:
                        total += self._execute_with_rmw(
                            plan, rows[row_index]
                        ).rowcount
                    else:
                        total += self.db.execute(statement).rowcount
            server_time = time.perf_counter() - server_start

            self.stats.proxy_time_seconds += bind_time
            self.stats.server_time_seconds += server_time
            self.stats.batched_statements += 1
            self.stats.batched_rows += len(rows)
            return total
        finally:
            self.stats.record_query_type_batch(
                prepared.kind, time.perf_counter() - total_start, len(rows)
            )
            self.cache.enforce_budget()

    #: Statement heads that never produce a cacheable rewrite plan; prepare()
    #: skips the cache for them so hit/miss counters reflect only real plans.
    _UNCACHED_HEADS = frozenset({"CREATE", "DROP", "BEGIN", "COMMIT", "ROLLBACK", "START"})

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse + rewrite a statement shape once, via the plan cache."""
        key = normalize_statement_text(sql)
        if key.split(" ", 1)[0] in self._UNCACHED_HEADS:
            return self._prepare_statement(parse_sql(sql), cache_key=None)
        cached = self.plan_cache.get(key, self.schema.version, self.stats)
        if cached is not None:
            return cached
        return self._prepare_statement(parse_sql(sql), cache_key=key)

    def _prepare_statement(
        self, statement: ast.Statement, cache_key: Optional[str]
    ) -> PreparedStatement:
        """Rewrite a parsed statement, run its onion adjustments, maybe cache."""
        kind = statement_kind(statement)
        param_count = ast.count_placeholders(statement)
        if isinstance(statement, (ast.CreateTable, ast.CreateIndex, ast.DropTable)):
            if param_count:
                raise ProxyError("DDL statements cannot take ? parameters")
            return PreparedStatement(statement, None, 0, self.schema.version, kind)

        prepare_start = time.perf_counter()
        # Rewriting mutates onion metadata (lower_onion, JOIN re-keying) as
        # clauses are analysed, but the matching adjustment UPDATEs only run
        # after the whole statement rewrites successfully.  If a later clause
        # turns out to be unsupported, the metadata must be rewound or the
        # schema would claim levels the stored ciphertexts never reached --
        # and every subsequent range query would silently compare garbage
        # (found by the differential conformance harness).
        rewind = (self.schema.snapshot_levels(), self.joins.snapshot(), self.schema.version)
        try:
            plan = self.rewriter.rewrite(statement)
            if not plan.passthrough:
                bound_indices = {slot.index for slot in plan.param_slots}
                if bound_indices != set(range(param_count)):
                    raise UnsupportedQueryError(
                        "a ? placeholder appears in a position that cannot be bound "
                        "over encrypted data"
                    )
        except UnsupportedQueryError as exc:
            self._restore_onion_state(rewind)
            self.stats.unsupported_queries += 1
            self._unsupported_log.append(str(exc))
            raise
        except Exception:
            self._restore_onion_state(rewind)
            raise
        self.stats.queries_rewritten += 1
        self.stats.onion_adjustments = self.rewriter.onion_adjustments
        self.record_computations(plan)
        rewrite_time = time.perf_counter() - prepare_start
        self.stats.proxy_time_seconds += rewrite_time
        self.stats.prepare_time_seconds += rewrite_time

        # Onion adjustments run inside a transaction so concurrent readers
        # never observe a half-adjusted column (§3.2).  They run once, here at
        # prepare time; the stored plan is adjustment-free afterwards.  A
        # server failure mid-adjustment (real DBMS backends can fail) rolls
        # the data back and rewinds the metadata, so schema levels never
        # claim layers the stored ciphertexts did not reach.
        if plan.adjustments:
            adjust_start = time.perf_counter()
            own_transaction = not self.db.transactions.in_transaction
            try:
                if own_transaction:
                    self.db.execute(ast.Begin())
                for adjustment in plan.adjustments:
                    self.db.execute(adjustment)
                if own_transaction:
                    self.db.execute(ast.Commit())
            except Exception:
                if own_transaction:
                    self.db.execute(ast.Rollback())
                    self._restore_onion_state(rewind)
                else:
                    # Inside an application transaction there is no savepoint
                    # to unwind just the adjustments, and some strips may
                    # already be applied -- rewinding only the metadata would
                    # make the next query re-strip stripped ciphertexts.
                    # Abort the whole transaction instead: data and onion
                    # metadata rewind together to the BEGIN snapshot.
                    self._execute_transaction_control(ast.Rollback())
                raise
            plan.adjustments = []
            self.stats.server_time_seconds += time.perf_counter() - adjust_start

        prepared = PreparedStatement(
            statement, plan, param_count, self.schema.version, kind, sql_key=cache_key
        )
        if plan.cacheable and not plan.passthrough:
            self.plan_cache.put(prepared)
        return prepared

    def execute_prepared(
        self, prepared: PreparedStatement, params: Optional[Sequence[Any]] = None
    ) -> ResultSet:
        """Execute a prepared statement with the given parameter values."""
        params = tuple(params) if params is not None else ()
        self.stats.queries_processed += 1
        total_start = time.perf_counter()
        try:
            if prepared.is_ddl:
                return self._execute_ddl(prepared.statement)

            plan = prepared.plan
            if plan.passthrough:
                return self._execute_transaction_control(plan.statement)

            if len(params) != prepared.param_count:
                raise ProxyError(
                    f"statement expects {prepared.param_count} parameters, "
                    f"got {len(params)}"
                )
            bind_start = time.perf_counter()
            if params:
                bind_parameters(plan, params, self.encryptor)
            bind_time = time.perf_counter() - bind_start

            server_start = time.perf_counter()
            if plan.hom_rmw:
                server_result = self._execute_with_rmw(plan, params)
            else:
                server_result = self.db.execute(plan.statement)
            server_time = time.perf_counter() - server_start

            decrypt_start = time.perf_counter()
            if isinstance(prepared.statement, ast.Select):
                result = decrypt_results(plan, server_result, self.encryptor)
            else:
                result = ResultSet([], [], server_result.rowcount)
            decrypt_time = time.perf_counter() - decrypt_start

            self.stats.proxy_time_seconds += bind_time + decrypt_time
            self.stats.server_time_seconds += server_time
            return result
        finally:
            self.stats.record_query_type(
                prepared.kind, time.perf_counter() - total_start
            )
            self.cache.enforce_budget()

    def _execute_with_rmw(
        self, plan: RewritePlan, params: Sequence[Any]
    ) -> ResultSet:
        """Run the packed-cell RMW pre-writes and the main statement atomically.

        The RMW splices packed HOM cells with separate UPDATEs *before* the
        main statement; a backend failure between the two would otherwise
        persist the spliced cells while the non-HOM onions keep their old
        values -- a row the proxy can never again read consistently.  The
        same own-transaction discipline as onion adjustments applies: wrap
        the pair when no application transaction is open, and abort the
        whole application transaction otherwise (no savepoints to unwind
        just the pre-writes).
        """
        own_transaction = not self.db.transactions.in_transaction
        try:
            if own_transaction:
                self.db.execute(ast.Begin())
            self._run_hom_rmw(plan, params)
            result = self.db.execute(plan.statement)
            if own_transaction:
                self.db.execute(ast.Commit())
            return result
        except Exception:
            if own_transaction:
                self.db.execute(ast.Rollback())
            else:
                # Data and onion metadata rewind together to BEGIN.
                self._execute_transaction_control(ast.Rollback())
            raise

    def _run_hom_rmw(self, plan: RewritePlan, params: Sequence[Any]) -> None:
        """Rewrite packed group cells for an UPDATE's absolute assignments.

        §3.3's SELECT-then-UPDATE strategy, applied per packed group: read
        the packed cells of the rows matching the (already bound) WHERE
        clause, splice the reassigned slots in plaintext, and write each
        fresh ciphertext back keyed on the old cell value.  Runs *before*
        the main UPDATE so the predicate still evaluates against pre-update
        onion state; untouched slots -- including pending homomorphic
        increments -- survive bit-exactly.  Paillier cells are probabilistic,
        so two rows share a cell only when a previous RMW made them
        identical, in which case they remain interchangeable here too.
        """
        where = plan.statement.where
        for spec in plan.hom_rmw:
            select = ast.Select(
                items=[ast.SelectItem(ast.ColumnRef(spec.group_anon_name), None)],
                from_clause=ast.TableRef(spec.anon_table, None),
                where=where,
            )
            old_cells = {
                row[0] for row in self.db.execute(select).rows if row[0] is not None
            }
            if not old_cells:
                continue
            assignments = [
                (column, params[index] if index is not None else value)
                for column, index, value in spec.assignments
            ]
            for old_cell in old_cells:
                new_cell = self.encryptor.hom_group_rewrite(assignments, old_cell)
                match = ast.BinaryOp(
                    "=", ast.ColumnRef(spec.group_anon_name), ast.Literal(old_cell)
                )
                condition = match if where is None else ast.BinaryOp("AND", where, match)
                self.db.execute(
                    ast.Update(
                        spec.anon_table,
                        [(spec.group_anon_name, ast.Literal(new_cell))],
                        condition,
                    )
                )

    def _restore_onion_state(self, snapshot: tuple) -> None:
        """Rewind onion levels, JOIN-ADJ key state and the schema version.

        Used when a prepare fails before its effects became visible: the
        restored state is identical to what every cached plan was built
        against, so the version counter rewinds too (lower_onion bumped it
        mid-rewrite) and the plan cache survives -- nothing can have been
        cached during the failed prepare.  If the JOIN-ADJ keys really
        moved, stay conservative and invalidate.
        """
        levels, join_state, version = snapshot
        self.schema.restore_levels(levels, bump_version=False)
        self.schema.version = version
        if self.joins.restore(join_state):
            # Cached plans with baked JOIN-ADJ constants are stale, and so
            # are memoised Eq encryptions (same contract as ROLLBACK).
            self.schema.bump_version()
            self.cache.invalidate_eq()

    def _execute_transaction_control(self, statement: ast.Statement) -> ResultSet:
        """BEGIN/COMMIT/ROLLBACK, keeping onion metadata transactional too.

        Onion-adjustment UPDATEs issued while an application transaction is
        open are rolled back with it, so the proxy snapshots every onion
        level at BEGIN and rewinds its schema metadata (invalidating cached
        plans) when the transaction aborts.
        """
        if isinstance(statement, ast.Begin) and not self.db.transactions.in_transaction:
            self._onion_snapshot = (
                self.schema.snapshot_levels(),
                self.joins.snapshot(),
            )
        result = self.db.execute(statement)
        if isinstance(statement, ast.Commit):
            self._onion_snapshot = None
        elif isinstance(statement, ast.Rollback):
            if self._onion_snapshot is not None:
                levels, join_state = self._onion_snapshot
                self.schema.restore_levels(levels)
                if self.joins.restore(join_state):
                    # Cached plans with baked JOIN-ADJ constants are stale,
                    # and so are memoised Eq encryptions.
                    self.schema.bump_version()
                    self.cache.invalidate_eq()
            self._onion_snapshot = None
        return result

    def _execute_ddl(self, statement: ast.Statement) -> ResultSet:
        """CREATE/DROP statements the proxy handles outside the rewriter."""
        if isinstance(statement, ast.CreateTable):
            self.create_table(statement)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.CreateIndex):
            for column in statement.columns:
                self.create_index(statement.table, column)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.DropTable):
            if self.schema.has_table(statement.table):
                meta = self.schema.drop_table(statement.table)
                return self.db.execute(ast.DropTable(meta.anon_name, statement.if_exists))
            return self.db.execute(statement)
        raise ProxyError(f"unexpected DDL statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    # training mode (§3.5.1) and reporting
    # ------------------------------------------------------------------
    def train(self, queries: Iterable[Union[str, ast.Statement]]) -> TrainingReport:
        """Replay a trace of queries, adjusting onions, and report the outcome.

        Unsupported queries are collected as warnings instead of being raised,
        exactly as the paper's training mode does.
        """
        self._training = True
        try:
            for query in queries:
                try:
                    self.execute(query)
                except UnsupportedQueryError:
                    continue
        finally:
            self._training = False
        return self.report()

    def report(self) -> TrainingReport:
        """The current steady-state onion levels of every managed column."""
        # The rewriter records computations per plan; the proxy accumulates
        # them into _computation_log as each plan is prepared.
        computations = dict(self._computation_log)
        return build_report(self.schema, computations, self._unsupported_log)

    def record_computations(self, plan: RewritePlan) -> None:
        for key, classes in plan.computations.items():
            self._computation_log.setdefault(key, set()).update(classes)

    # ------------------------------------------------------------------
    # storage / security statistics used by the evaluation
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Total size of the encrypted database (for §8.4.3)."""
        return self.db.storage_bytes()

    def min_enc(self, table: str, column: str) -> SecurityLevel:
        """MinEnc of a column (§8.3)."""
        return self.schema.column(table, column).min_enc()

    def onion_level(self, table: str, column: str, onion: Onion) -> str:
        return self.schema.column(table, column).onion_state(onion).level.value

"""The CryptDB database proxy (single-principal mode, threat 1).

The proxy intercepts every SQL statement the application issues, rewrites it
to execute over encrypted data, forwards it (together with any onion
adjustment UPDATEs) to the unmodified DBMS, and decrypts the results.  It
holds the master key MK, the plaintext schema, and the current onion level of
every column; the DBMS only ever sees anonymised identifiers, ciphertexts and
CryptDB's UDFs (Figure 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.core import udfs
from repro.core.cache import CiphertextCache
from repro.core.encryptor import Encryptor
from repro.core.joins import JoinManager
from repro.core.onion import Onion, SecurityLevel
from repro.core.rewriter import RewritePlan, Rewriter
from repro.core.results import decrypt_results
from repro.core.schema import ProxySchema
from repro.core.training import TrainingReport, build_report
from repro.crypto.keys import KeyManager, MasterKey
from repro.crypto.paillier import PaillierKeyPair
from repro.errors import ProxyError, UnsupportedQueryError
from repro.sql import ast_nodes as ast
from repro.sql.engine import Database
from repro.sql.executor import ResultSet
from repro.sql.parser import parse_sql

# A modest default keeps pure-Python Paillier fast; the paper uses 1024-bit
# moduli (2048-bit ciphertexts), which callers can request explicitly.
DEFAULT_PAILLIER_BITS = 1024


@dataclass
class ProxyStatistics:
    """Operational counters exposed for the evaluation benchmarks."""

    queries_processed: int = 0
    queries_rewritten: int = 0
    onion_adjustments: int = 0
    unsupported_queries: int = 0
    proxy_time_seconds: float = 0.0
    server_time_seconds: float = 0.0
    per_query_type_seconds: dict[str, list] = field(default_factory=dict)


class CryptDBProxy:
    """Single-principal CryptDB proxy in front of an (unmodified) DBMS."""

    def __init__(
        self,
        db: Optional[Database] = None,
        master_key: Optional[MasterKey] = None,
        paillier_bits: int = DEFAULT_PAILLIER_BITS,
        paillier: Optional[PaillierKeyPair] = None,
        anonymize_names: bool = True,
        in_proxy_processing: bool = False,
        use_ciphertext_cache: bool = True,
        hom_precompute: int = 256,
    ):
        self.db = db if db is not None else Database()
        self.master_key = master_key if master_key is not None else MasterKey.generate()
        self.keys = KeyManager(self.master_key)
        self.paillier = paillier if paillier is not None else PaillierKeyPair.generate(paillier_bits)
        self.joins = JoinManager(self.master_key.material)
        self.encryptor = Encryptor(
            self.keys, self.joins, self.paillier, use_ope_cache=use_ciphertext_cache
        )
        self.schema = ProxySchema(anonymize_names=anonymize_names)
        self.rewriter = Rewriter(
            self.schema, self.encryptor, self.joins, in_proxy_processing=in_proxy_processing
        )
        self.cache = CiphertextCache(self.paillier, enabled=use_ciphertext_cache)
        if use_ciphertext_cache and hom_precompute:
            self.cache.precompute_hom(hom_precompute)
        self.stats = ProxyStatistics()
        self._unsupported_log: list[str] = []
        self._training = False
        udfs.install_udfs(self.db, self.paillier.public)

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def create_table(
        self,
        sql_or_statement: Union[str, ast.CreateTable],
        plaintext_columns: Optional[Iterable[str]] = None,
        sensitive_columns: Optional[Iterable[str]] = None,
        minimum_levels: Optional[dict[str, SecurityLevel]] = None,
    ) -> None:
        """Create an application table; the DBMS receives the anonymised layout.

        ``plaintext_columns`` implements the §3.5.2 developer annotation that
        leaves non-sensitive fields unencrypted; ``minimum_levels`` implements
        the §3.5.1 minimum-onion-layer constraint; ``sensitive_columns`` only
        tags columns for the security analysis.
        """
        statement = (
            parse_sql(sql_or_statement) if isinstance(sql_or_statement, str) else sql_or_statement
        )
        if not isinstance(statement, ast.CreateTable):
            raise ProxyError("create_table expects a CREATE TABLE statement")
        table_meta = self.schema.add_table(
            statement.table,
            statement.columns,
            plaintext_columns=set(plaintext_columns or ()),
            sensitive_columns=set(sensitive_columns or ()),
            minimum_levels=dict(minimum_levels or {}),
        )
        for column_def in statement.columns:
            column = table_meta.column(column_def.name)
            if not column.plaintext:
                self.joins.register_column(column.table, column.name)
        anon_columns = self._anonymized_columns(statement)
        self.db.execute(ast.CreateTable(table_meta.anon_name, anon_columns, statement.if_not_exists))

    def _anonymized_columns(self, statement: ast.CreateTable):
        from repro.sql.types import BIGINT, BLOB, ColumnDef

        table_meta = self.schema.table(statement.table)
        anon_columns: list[ColumnDef] = []
        for column_def in statement.columns:
            column = table_meta.column(column_def.name)
            if column.plaintext:
                anon_columns.append(ColumnDef(column_def.name, column_def.data_type))
                continue
            for onion, state in column.onions.items():
                if onion in (Onion.EQ, Onion.SEARCH):
                    anon_columns.append(ColumnDef(state.anon_name, BLOB()))
                elif onion is Onion.ORD:
                    anon_columns.append(ColumnDef(state.anon_name, BIGINT()))
                elif onion is Onion.ADD:
                    anon_columns.append(ColumnDef(state.anon_name, BLOB()))
            anon_columns.append(ColumnDef(column.iv_column, BLOB()))
        return anon_columns

    def create_index(self, table: str, column: str) -> None:
        """Create indexes over the column's DET/JOIN and OPE onions (§3.3)."""
        column_meta = self.schema.column(table, column)
        anon_table = self.db.table(self.schema.table(table).anon_name)
        if column_meta.plaintext:
            anon_table.create_index(column)
            return
        if column_meta.has_onion(Onion.EQ):
            anon_table.create_index(column_meta.onion_state(Onion.EQ).anon_name)
        if column_meta.has_onion(Onion.ORD):
            anon_table.create_index(column_meta.onion_state(Onion.ORD).anon_name, ordered=True)

    def declare_range_join(self, columns: list[tuple[str, str]], group: str = "default") -> None:
        """Declare ahead of time that columns will be range-joined (§3.4).

        All declared columns share one OPE key; must be called before data is
        inserted into those columns.
        """
        for table, column in columns:
            self.schema.column(table, column).ope_join_group = group

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def execute(self, sql_or_statement: Union[str, ast.Statement]) -> ResultSet:
        """Execute one application statement over encrypted data."""
        statement = (
            parse_sql(sql_or_statement)
            if isinstance(sql_or_statement, str)
            else sql_or_statement
        )
        self.stats.queries_processed += 1

        if isinstance(statement, ast.CreateTable):
            self.create_table(statement)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.CreateIndex):
            for column in statement.columns:
                self.create_index(statement.table, column)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.DropTable):
            if self.schema.has_table(statement.table):
                anon = self.schema.table(statement.table).anon_name
                self.schema.tables.pop(statement.table)
                return self.db.execute(ast.DropTable(anon, statement.if_exists))
            return self.db.execute(statement)

        proxy_start = time.perf_counter()
        try:
            plan = self.rewriter.rewrite(statement)
        except UnsupportedQueryError as exc:
            self.stats.unsupported_queries += 1
            self._unsupported_log.append(str(exc))
            raise
        self.stats.queries_rewritten += 1
        self.stats.onion_adjustments = self.rewriter.onion_adjustments
        self.record_computations(plan)
        rewrite_time = time.perf_counter() - proxy_start

        server_time = 0.0
        # Onion adjustments run inside a transaction so concurrent readers
        # never observe a half-adjusted column (§3.2).
        if plan.adjustments:
            adjust_start = time.perf_counter()
            own_transaction = not self.db.transactions.in_transaction
            if own_transaction:
                self.db.execute(ast.Begin())
            for adjustment in plan.adjustments:
                self.db.execute(adjustment)
            if own_transaction:
                self.db.execute(ast.Commit())
            server_time += time.perf_counter() - adjust_start

        execute_start = time.perf_counter()
        server_result = self.db.execute(plan.statement)
        server_time += time.perf_counter() - execute_start

        decrypt_start = time.perf_counter()
        if isinstance(statement, ast.Select):
            result = decrypt_results(plan, server_result, self.encryptor)
        else:
            result = ResultSet([], [], server_result.rowcount)
        decrypt_time = time.perf_counter() - decrypt_start

        self.stats.proxy_time_seconds += rewrite_time + decrypt_time
        self.stats.server_time_seconds += server_time
        return result

    # ------------------------------------------------------------------
    # training mode (§3.5.1) and reporting
    # ------------------------------------------------------------------
    def train(self, queries: Iterable[Union[str, ast.Statement]]) -> TrainingReport:
        """Replay a trace of queries, adjusting onions, and report the outcome.

        Unsupported queries are collected as warnings instead of being raised,
        exactly as the paper's training mode does.
        """
        self._training = True
        try:
            for query in queries:
                try:
                    self.execute(query)
                except UnsupportedQueryError:
                    continue
        finally:
            self._training = False
        return self.report()

    def report(self) -> TrainingReport:
        """The current steady-state onion levels of every managed column."""
        computations: dict = {}
        # Accumulate per-column computations observed across all rewrites.
        for (table, column), classes in self._accumulated_computations.items():
            computations[(table, column)] = classes
        return build_report(self.schema, computations, self._unsupported_log)

    @property
    def _accumulated_computations(self):
        # The rewriter records computations per plan; the proxy aggregates them
        # lazily by re-walking plans is expensive, so the rewriter exposes a
        # cumulative map instead.
        if not hasattr(self, "_computation_log"):
            self._computation_log = {}
        return self._computation_log

    def record_computations(self, plan: RewritePlan) -> None:
        for key, classes in plan.computations.items():
            self._accumulated_computations.setdefault(key, set()).update(classes)

    # ------------------------------------------------------------------
    # storage / security statistics used by the evaluation
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Total size of the encrypted database (for §8.4.3)."""
        return self.db.storage_bytes()

    def min_enc(self, table: str, column: str) -> SecurityLevel:
        """MinEnc of a column (§8.3)."""
        return self.schema.column(table, column).min_enc()

    def onion_level(self, table: str, column: str, onion: Onion) -> str:
        return self.schema.column(table, column).onion_state(onion).level.value

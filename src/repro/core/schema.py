"""Proxy-side schema metadata: the anonymised layout of Figure 3.

For every application table the proxy records the anonymised table name, and
for every column the set of onions it carries, the anonymised column name of
each onion, the current (outermost remaining) encryption layer of each onion,
and optional developer constraints such as the minimum layer that may ever be
exposed (§3.5.1) or a "leave in plaintext" annotation (§3.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.onion import (
    ONION_LAYERS,
    ONIONS_FOR_BINARY,
    ONIONS_FOR_INTEGER,
    ONIONS_FOR_TEXT,
    EncryptionScheme,
    Onion,
    SecurityLevel,
    layer_index,
)
from repro.errors import ProxyError, SchemaError
from repro.sql.types import ColumnDef, DataType


@dataclass
class OnionState:
    """The state of one onion of one column."""

    onion: Onion
    anon_name: str
    level: EncryptionScheme

    def layers_below(self) -> list[EncryptionScheme]:
        """Layers still wrapped inside the current level (inclusive)."""
        layers = ONION_LAYERS[self.onion]
        return layers[layers.index(self.level):]


@dataclass
class ColumnMeta:
    """Proxy metadata for one application column."""

    table: str
    name: str
    data_type: DataType
    index: int
    onions: dict[Onion, OnionState] = field(default_factory=dict)
    iv_column: Optional[str] = None
    plaintext: bool = False            # developer annotation: not sensitive
    minimum_level: Optional[SecurityLevel] = None  # §3.5.1 constraint
    sensitive: bool = False            # marked sensitive by the developer
    join_base: Optional[tuple[str, str]] = None    # current JOIN-ADJ base column
    ope_join_group: Optional[str] = None           # declared range-join group
    hom_stale_others: bool = False     # Add onion updated ahead of the others
    #: Packed HOM (§8.4): slot index of this column inside its table's shared
    #: packed Add ciphertext, and which :class:`HomGroup` it belongs to.
    #: ``None`` means the column stores a scalar Paillier ciphertext.
    hom_slot: Optional[int] = None
    hom_group: Optional[int] = None

    @property
    def hom_packed(self) -> bool:
        return self.hom_slot is not None

    @property
    def kind(self) -> str:
        if self.data_type.is_integer or self.data_type.name in ("DECIMAL", "NUMERIC",
                                                                "FLOAT", "DOUBLE", "REAL",
                                                                "BOOLEAN", "BOOL"):
            return "integer"
        if self.data_type.is_text or self.data_type.name in ("DATETIME", "DATE", "TIMESTAMP"):
            return "text"
        return "binary"

    def applicable_onions(self) -> tuple[Onion, ...]:
        kind = self.kind
        if kind == "integer":
            return ONIONS_FOR_INTEGER
        if kind == "text":
            return ONIONS_FOR_TEXT
        return ONIONS_FOR_BINARY

    def onion_state(self, onion: Onion) -> OnionState:
        if onion not in self.onions:
            raise ProxyError(
                f"column {self.table}.{self.name} has no {onion.value} onion"
            )
        return self.onions[onion]

    def has_onion(self, onion: Onion) -> bool:
        return onion in self.onions

    def min_enc(self) -> SecurityLevel:
        """The MinEnc metric of §8.3: the weakest scheme exposed on any onion."""
        if self.plaintext:
            return SecurityLevel.PLAIN
        levels = [SecurityLevel.of(state.level) for state in self.onions.values()]
        if not levels:
            return SecurityLevel.PLAIN
        return min(levels)

    def allows_level(self, onion: Onion, target: EncryptionScheme) -> bool:
        """Check the developer's minimum-layer constraint before peeling."""
        if self.minimum_level is None:
            return True
        return SecurityLevel.of(target) >= self.minimum_level


@dataclass
class HomGroup:
    """One shared packed-Add ciphertext column and its member columns.

    With packing enabled, every Add-onion column of a table is assigned a
    slot inside one of these groups; the anonymised layout stores a single
    BLOB column per group instead of one 2048-bit ciphertext per member.
    """

    index: int
    anon_name: str
    members: list[str] = field(default_factory=list)  # column names, slot order


@dataclass
class TableMeta:
    """Proxy metadata for one application table."""

    name: str
    anon_name: str
    columns: dict[str, ColumnMeta] = field(default_factory=dict)
    #: Packed HOM groups (empty when packing is disabled).
    hom_groups: list[HomGroup] = field(default_factory=list)

    def column(self, name: str) -> ColumnMeta:
        if name not in self.columns:
            raise SchemaError(f"table {self.name} has no column {name}")
        return self.columns[name]

    def has_column(self, name: str) -> bool:
        return name in self.columns

    def column_names(self) -> list[str]:
        return list(self.columns)


class ProxySchema:
    """All table metadata known to the proxy, plus anonymisation counters."""

    def __init__(self, anonymize_names: bool = True, hom_slots: Optional[int] = None):
        self.anonymize_names = anonymize_names
        #: Slots per packed Add ciphertext (``None`` disables packing and
        #: every Add column keeps its own scalar Paillier ciphertext).
        self.hom_slots = hom_slots
        self.tables: dict[str, TableMeta] = {}
        self._table_counter = 0
        #: Monotonic counter bumped on every schema or onion-state change;
        #: the proxy's rewrite-plan cache keys its validity on it.
        self.version = 0

    def bump_version(self) -> None:
        """Invalidate cached rewrite plans after a schema/onion change."""
        self.version += 1

    # -- construction -------------------------------------------------------
    def add_table(
        self,
        name: str,
        columns: list[ColumnDef],
        plaintext_columns: Optional[set[str]] = None,
        sensitive_columns: Optional[set[str]] = None,
        minimum_levels: Optional[dict[str, SecurityLevel]] = None,
    ) -> TableMeta:
        """Register an application table and compute its anonymised layout."""
        if name in self.tables:
            raise SchemaError(f"table {name} already registered with the proxy")
        self._table_counter += 1
        anon_name = f"table{self._table_counter}" if self.anonymize_names else name
        meta = TableMeta(name=name, anon_name=anon_name)
        plaintext_columns = plaintext_columns or set()
        sensitive_columns = sensitive_columns or set()
        minimum_levels = minimum_levels or {}
        for position, column in enumerate(columns, start=1):
            col_meta = ColumnMeta(
                table=name,
                name=column.name,
                data_type=column.data_type,
                index=position,
                plaintext=column.name in plaintext_columns,
                sensitive=column.name in sensitive_columns,
                minimum_level=minimum_levels.get(column.name),
            )
            if not col_meta.plaintext:
                prefix = f"C{position}" if self.anonymize_names else column.name
                for onion in col_meta.applicable_onions():
                    layers = ONION_LAYERS[onion]
                    col_meta.onions[onion] = OnionState(
                        onion=onion,
                        anon_name=f"{prefix}_{onion.value}",
                        level=layers[0],
                    )
                col_meta.iv_column = f"{prefix}_IV"
            meta.columns[column.name] = col_meta
        if self.hom_slots:
            self._assign_hom_groups(meta)
        self.tables[name] = meta
        self.bump_version()
        return meta

    def _assign_hom_groups(self, meta: TableMeta) -> None:
        """Pack the table's Add-onion columns into shared ciphertext slots.

        Members are assigned in schema order, ``hom_slots`` per group; each
        member's Add onion is re-pointed at the group's single anonymised
        BLOB column and remembers its slot index.
        """
        members = [
            column
            for column in meta.columns.values()
            if column.has_onion(Onion.ADD)
        ]
        for start in range(0, len(members), self.hom_slots):
            group_index = len(meta.hom_groups)
            if self.anonymize_names:
                anon_name = f"H{group_index}_{Onion.ADD.value}"
            else:
                anon_name = f"hom{group_index}_{Onion.ADD.value}"
            group = HomGroup(index=group_index, anon_name=anon_name)
            for slot, column in enumerate(members[start : start + self.hom_slots]):
                column.hom_slot = slot
                column.hom_group = group_index
                column.onions[Onion.ADD].anon_name = anon_name
                group.members.append(column.name)
            meta.hom_groups.append(group)

    def drop_table(self, name: str) -> TableMeta:
        """Forget an application table (its anonymised twin is dropped too)."""
        if name not in self.tables:
            raise SchemaError(f"table {name} is not managed by the proxy")
        meta = self.tables.pop(name)
        self.bump_version()
        return meta

    # -- durable catalog support ----------------------------------------------
    def describe_table(self, name: str) -> dict:
        """The JSON-safe ``create_table`` catalog payload for one table.

        Everything :meth:`add_table` needs to rebuild the identical layout:
        column definitions, developer annotations, and the anonymised name
        (recorded explicitly because the counter-derived name drifts once
        tables have been dropped).  No key material appears here.
        """
        meta = self.table(name)
        columns = []
        annotations: dict[str, Any] = {"plaintext": [], "sensitive": [], "min_levels": {}}
        for column in meta.columns.values():
            columns.append(
                [
                    column.name,
                    column.data_type.name,
                    column.data_type.length,
                ]
            )
            if column.plaintext:
                annotations["plaintext"].append(column.name)
            if column.sensitive:
                annotations["sensitive"].append(column.name)
            if column.minimum_level is not None:
                annotations["min_levels"][column.name] = column.minimum_level.value
        return {
            "table": name,
            "anon": meta.anon_name,
            "counter": self._table_counter,
            "columns": columns,
            **annotations,
        }

    def restore_table(self, payload: dict) -> TableMeta:
        """Rebuild one table from its ``create_table`` catalog payload.

        The anonymised layout re-derives deterministically (column prefixes
        are positional, HOM groups assign in schema order), then the
        recorded anonymised table name overrides the counter-derived one.
        """
        columns = [
            ColumnDef(name, DataType(type_name, length))
            for name, type_name, length in payload["columns"]
        ]
        meta = self.add_table(
            payload["table"],
            columns,
            plaintext_columns=set(payload.get("plaintext", ())),
            sensitive_columns=set(payload.get("sensitive", ())),
            minimum_levels={
                name: SecurityLevel(value)
                for name, value in (payload.get("min_levels") or {}).items()
            },
        )
        meta.anon_name = payload["anon"]
        self._table_counter = max(self._table_counter, int(payload["counter"]))
        return meta

    def catalog_levels(self) -> list[list]:
        """Every onion level (and HOM staleness never included here) as rows."""
        rows = []
        for table_name, table in self.tables.items():
            for column_name, column in table.columns.items():
                for onion, state in column.onions.items():
                    rows.append([table_name, column_name, onion.value, state.level.value])
        return rows

    # -- lookups --------------------------------------------------------------
    def table(self, name: str) -> TableMeta:
        if name not in self.tables:
            raise SchemaError(f"table {name} is not managed by the proxy")
        return self.tables[name]

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def column(self, table: str, column: str) -> ColumnMeta:
        return self.table(table).column(column)

    def table_names(self) -> list[str]:
        return list(self.tables)

    # -- onion state snapshots (transaction support) ---------------------------
    def snapshot_levels(self) -> dict:
        """Capture every onion level (and HOM staleness) for later restore.

        Onion-adjustment UPDATEs issued inside an application transaction are
        rolled back with it, so the proxy must be able to rewind its metadata
        to match the server's ciphertexts.
        """
        levels = {}
        for table_name, table in self.tables.items():
            for column_name, column in table.columns.items():
                key = (table_name, column_name)
                levels[key] = (
                    {onion: state.level for onion, state in column.onions.items()},
                    column.hom_stale_others,
                )
        return levels

    def restore_levels(self, snapshot: dict, bump_version: bool = True) -> None:
        """Rewind onion levels to a snapshot (after a transaction rollback).

        ``bump_version=False`` skips the plan-cache invalidation: a failed
        *rewrite* rewinds to exactly the state every cached plan was built
        against (no server data changed, no adjustment ran), so flushing
        the cache would only cost re-rewrites.  Transaction rollbacks keep
        the default -- there the server data really did rewind, and plans
        cached inside the transaction are stale.
        """
        changed = False
        for (table_name, column_name), (levels, hom_stale) in snapshot.items():
            table = self.tables.get(table_name)
            if table is None or column_name not in table.columns:
                continue  # table dropped since the snapshot
            column = table.columns[column_name]
            for onion, level in levels.items():
                state = column.onions.get(onion)
                if state is not None and state.level is not level:
                    state.level = level
                    changed = True
            if column.hom_stale_others != hom_stale:
                column.hom_stale_others = hom_stale
                changed = True
        if changed and bump_version:
            self.bump_version()

    # -- onion state updates ----------------------------------------------------
    def lower_onion(self, table: str, column: str, onion: Onion, target: EncryptionScheme) -> list[EncryptionScheme]:
        """Record that an onion has been peeled down to ``target``.

        Returns the sequence of layers that were removed (outermost first),
        which the adjuster uses to drive the corresponding server-side UDF
        UPDATE statements.
        """
        state = self.column(table, column).onion_state(onion)
        layers = ONION_LAYERS[onion]
        current_idx = layer_index(onion, state.level)
        target_idx = layer_index(onion, target)
        if target_idx <= current_idx:
            return []
        removed = layers[current_idx:target_idx]
        state.level = target
        self.bump_version()
        return removed

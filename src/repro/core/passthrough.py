"""A pass-through proxy: the "MySQL+proxy" baseline of Figure 14.

The paper separates the overhead of simply interposing MySQL proxy (parsing
and forwarding every query) from the overhead of CryptDB's cryptography.
``PassthroughProxy`` does the same: it parses each statement, re-serialises
it to SQL, and executes it against the DBMS without any encryption.
"""

from __future__ import annotations

from typing import Union

from repro.sql import ast_nodes as ast
from repro.sql.engine import Database
from repro.sql.executor import ResultSet
from repro.sql.parser import parse_sql


class PassthroughProxy:
    """Parses and forwards queries unchanged (no encryption)."""

    def __init__(self, db: Database | None = None):
        self.db = db if db is not None else Database()
        self.queries_forwarded = 0

    def execute(self, sql_or_statement: Union[str, ast.Statement]) -> ResultSet:
        statement = (
            parse_sql(sql_or_statement)
            if isinstance(sql_or_statement, str)
            else sql_or_statement
        )
        # Round-trip through SQL text, as MySQL proxy's Lua layer does.
        self.queries_forwarded += 1
        return self.db.execute(parse_sql(statement.to_sql()))

"""Query analysis and rewriting onto encrypted onions (§3.2, §3.3).

For every incoming statement the rewriter:

1. determines the computation classes each referenced column requires;
2. produces the onion-adjustment UPDATE statements (server-side UDF calls)
   needed to bring columns to the required layers;
3. rewrites the statement itself: table and column names are replaced by
   their anonymised counterparts, constants by onion encryptions, LIKE by
   SEARCH-token UDF calls, SUM by the Paillier UDF aggregate, and equi-joins
   by comparisons over the JOIN-ADJ components;
4. emits a decryption plan describing how the proxy should decrypt the
   result set before returning it to the application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.core import udfs
from repro.core.encryptor import Encryptor
from repro.core.joins import JoinManager
from repro.core.onion import (
    ComputationClass,
    EncryptionScheme,
    Onion,
    is_at_least,
    requirement_for,
)
from repro.core.schema import ColumnMeta, HomGroup, ProxySchema, TableMeta
from repro.errors import ProxyError, UnsupportedQueryError
from repro.sql import ast_nodes as ast


@dataclass
class OutputSpec:
    """How one output column of a rewritten SELECT must be post-processed."""

    kind: str                      # plain | column | hom_sum | ope_agg | avg
    name: str
    source_index: int
    column: Optional[ColumnMeta] = None
    onion: Optional[Onion] = None
    level: Optional[EncryptionScheme] = None
    iv_index: Optional[int] = None
    extra_index: Optional[int] = None


@dataclass
class ParamSlot:
    """How one bound parameter occurrence is encrypted at execution time.

    The rewriter leaves a mutable :class:`~repro.sql.ast_nodes.Literal` node
    (``target``) in the rewritten statement for every place a ``?`` value must
    appear; binding fills those nodes in, so prepare-once/execute-many only
    pays for parameter encryption, never for re-parsing or re-rewriting.
    """

    index: int                     # zero-based parameter position
    kind: str                      # plain | constant | row_value | hom_delta | hom_pack
    target: ast.Literal            # literal node in the rewritten statement
    column: Optional[ColumnMeta] = None
    onion: Optional[Onion] = None
    level: Optional[EncryptionScheme] = None
    part: Optional[str] = None     # row_value: which anonymised column
    sign: int = 1                  # hom_delta: +1 for ``c + ?``, -1 for ``c - ?``
    #: hom_pack: the whole packed group cell, slot-ordered.  Each entry is
    #: ``(member column, parameter index or None, literal value)``; binding
    #: gathers the member values and encrypts one packed ciphertext.
    pack: Optional[list] = None


@dataclass
class HomRmwSpec:
    """A proxy-driven read-modify-write of one packed Add group cell.

    An absolute ``SET member = v`` cannot clear one slot of a shared packed
    ciphertext homomorphically, so the rewriter records the reassigned slots
    here and the proxy performs §3.3's SELECT-then-UPDATE strategy at
    execution time: read the matching rows' packed cells, splice the slots
    in plaintext, write fresh ciphertexts back keyed on the old cell.
    """

    anon_table: str
    group_anon_name: str
    #: slot-ordered: ``(member column, parameter index or None, literal value)``
    assignments: list = field(default_factory=list)


@dataclass
class RewritePlan:
    """Everything the proxy needs to execute one application statement."""

    statement: Optional[ast.Statement]
    adjustments: list[ast.Statement] = field(default_factory=list)
    #: Structured twins of ``adjustments``, 1:1 and in the same order, for
    #: the durable catalog's two-phase INTENT records: ``("strip", table,
    #: column, onion-value, layer-value)`` or ``("join", table, column,
    #: delta-int)``.  Recovery rebuilds the server UPDATEs from these (the
    #: key material re-derives from the master key; the delta is the same
    #: public value the server already saw).
    adjustment_meta: list[tuple] = field(default_factory=list)
    output: list[OutputSpec] = field(default_factory=list)
    computations: dict[tuple[str, str], set[ComputationClass]] = field(default_factory=dict)
    proxy_order: list[tuple[int, bool]] = field(default_factory=list)
    passthrough: bool = False
    param_slots: list[ParamSlot] = field(default_factory=list)
    #: Packed-group rewrites the proxy must run *before* the main statement.
    hom_rmw: list[HomRmwSpec] = field(default_factory=list)
    # A plan is cacheable unless fresh per-execution randomness (RND IVs, HOM
    # ciphertexts) was baked into the rewritten statement itself; replaying
    # such a plan would silently reuse randomness and leak equality.
    cacheable: bool = True


class _Scope:
    """Column resolution for the tables appearing in one statement."""

    def __init__(self, schema: ProxySchema):
        self.schema = schema
        self.entries: list[tuple[str, TableMeta, Optional[str]]] = []
        # entries: (qualifier used in the query, table meta, alias or None)

    def add(self, table_name: str, alias: Optional[str]) -> None:
        meta = self.schema.table(table_name)
        qualifier = alias or table_name
        self.entries.append((qualifier, meta, alias))

    def rewritten_qualifier(self, qualifier: str) -> str:
        for existing, meta, alias in self.entries:
            if existing == qualifier:
                return alias or meta.anon_name
        raise ProxyError(f"unknown table or alias {qualifier}")

    def resolve(self, ref: ast.ColumnRef) -> Optional[tuple[ColumnMeta, str]]:
        """Resolve a column reference to its metadata and rewritten qualifier."""
        if ref.table is not None:
            for qualifier, meta, alias in self.entries:
                if qualifier == ref.table:
                    if meta.has_column(ref.name):
                        return meta.column(ref.name), (alias or meta.anon_name)
                    raise ProxyError(f"table {meta.name} has no column {ref.name}")
            raise ProxyError(f"unknown table or alias {ref.table}")
        matches = []
        for qualifier, meta, alias in self.entries:
            if meta.has_column(ref.name):
                matches.append((meta.column(ref.name), alias or meta.anon_name))
        if not matches:
            raise ProxyError(f"unknown column {ref.name}")
        if len(matches) > 1:
            raise ProxyError(f"ambiguous column {ref.name}")
        return matches[0]

    def all_columns(self, table_filter: Optional[str] = None) -> list[tuple[ColumnMeta, str]]:
        columns = []
        for qualifier, meta, alias in self.entries:
            if table_filter is not None and qualifier != table_filter:
                continue
            for name in meta.column_names():
                columns.append((meta.column(name), alias or meta.anon_name))
        return columns


class Rewriter:
    """Rewrites application statements into their encrypted form."""

    def __init__(
        self,
        schema: ProxySchema,
        encryptor: Encryptor,
        joins: JoinManager,
        in_proxy_processing: bool = False,
    ):
        self.schema = schema
        self.encryptor = encryptor
        self.joins = joins
        self.in_proxy_processing = in_proxy_processing
        self.onion_adjustments = 0

    # ==================================================================
    # public entry point
    # ==================================================================
    def rewrite(self, statement: ast.Statement) -> RewritePlan:
        if isinstance(statement, (ast.Begin, ast.Commit, ast.Rollback)):
            return RewritePlan(statement=statement, passthrough=True)
        if isinstance(statement, ast.Select):
            return self._rewrite_select(statement)
        if isinstance(statement, ast.Insert):
            return self._rewrite_insert(statement)
        if isinstance(statement, ast.Update):
            return self._rewrite_update(statement)
        if isinstance(statement, ast.Delete):
            return self._rewrite_delete(statement)
        raise UnsupportedQueryError(
            f"statement type {type(statement).__name__} must be handled by the proxy directly"
        )

    # ==================================================================
    # requirement tracking / onion adjustment
    # ==================================================================
    def _record(self, plan: RewritePlan, column: ColumnMeta, computation: ComputationClass) -> None:
        plan.computations.setdefault((column.table, column.name), set()).add(computation)

    def _require(
        self,
        plan: RewritePlan,
        column: ColumnMeta,
        computation: ComputationClass,
    ) -> tuple[Onion, EncryptionScheme]:
        """Ensure the column can support ``computation``; emit adjustments.

        Returns the onion and the layer the column will be at when the
        rewritten query executes.
        """
        self._record(plan, column, computation)
        if column.plaintext:
            raise ProxyError(f"column {column.table}.{column.name} is stored in plaintext")
        requirement = requirement_for(computation)
        if requirement is None:
            # Projection-only reads (COUNT) observe nothing but NULL-ness,
            # which is identical across onions even while HOM-stale, so the
            # Eq onion serves them at whatever level it is.
            state = column.onion_state(Onion.EQ)
            return Onion.EQ, state.level
        onion, needed = requirement
        self._check_hom_fresh(column, onion, computation)
        if not column.has_onion(onion):
            raise UnsupportedQueryError(
                f"column {column.table}.{column.name} has no {onion.value} onion "
                f"(needed for {computation.value})"
            )
        state = column.onion_state(onion)
        if is_at_least(state.level, needed, onion):
            return onion, state.level
        if not column.allows_level(onion, needed):
            raise UnsupportedQueryError(
                f"developer policy forbids lowering {column.table}.{column.name} "
                f"to {needed.value}"
            )
        removed = self.schema.lower_onion(column.table, column.name, onion, needed)
        for layer in removed:
            update = self._adjustment_update(column, onion, layer)
            if update is not None:
                plan.adjustments.append(update)
                plan.adjustment_meta.append(
                    ("strip", column.table, column.name, onion.value, layer.value)
                )
                self.onion_adjustments += 1
        return onion, needed

    @staticmethod
    def _check_hom_fresh(column: ColumnMeta, onion: Onion, computation: ComputationClass) -> None:
        """Refuse server-side reads of onions left stale by HOM increments.

        After ``SET c = c + k`` only the Add onion holds the current value
        (§3.3); answering an equality/order/search predicate from the
        Eq/Ord/Search onions would silently return results computed over
        the pre-increment ciphertexts.  (NULL-ness-only reads -- COUNT and
        IS NULL -- stay correct on any onion and are not refused.)  The
        differential conformance harness flags exactly this class of
        transparency violation, so declare the query unsupported instead
        (the paper's alternative is a proxy-driven re-encryption pass).
        """
        if column.hom_stale_others and onion is not Onion.ADD:
            raise UnsupportedQueryError(
                f"column {column.table}.{column.name}: the {onion.value} onion is "
                f"stale after homomorphic increments; {computation.value} would be "
                "answered from pre-increment ciphertexts (re-encrypt to refresh)"
            )

    def _adjustment_update(
        self, column: ColumnMeta, onion: Onion, removed_layer: EncryptionScheme
    ) -> Optional[ast.Statement]:
        """The UPDATE ... SET col = UDF(...) statement stripping one layer."""
        table_meta = self.schema.table(column.table)
        state = column.onion_state(onion)
        anon_col = ast.ColumnRef(state.anon_name)
        if removed_layer is EncryptionScheme.RND:
            key = self.encryptor.layer_key(column, onion, EncryptionScheme.RND)
            udf_name = udfs.DECRYPT_RND_EQ if onion is Onion.EQ else udfs.DECRYPT_RND_ORD
            call = ast.FunctionCall(
                udf_name,
                [ast.Literal(key), anon_col, ast.ColumnRef(column.iv_column)],
            )
        elif removed_layer is EncryptionScheme.DET:
            key = self.encryptor.layer_key(column, onion, EncryptionScheme.DET)
            call = ast.FunctionCall(udfs.DECRYPT_DET_EQ, [ast.Literal(key), anon_col])
        elif removed_layer is EncryptionScheme.OPE:
            # OPE -> OPE-JOIN is a key-sharing policy change, not a physical layer.
            return None
        else:
            raise ProxyError(f"cannot strip layer {removed_layer.value}")
        return ast.Update(table_meta.anon_name, [(state.anon_name, call)], None)

    def _require_join(
        self, plan: RewritePlan, left: ColumnMeta, right: ColumnMeta
    ) -> None:
        """Bring two columns to the JOIN layer and make their keys match."""
        self._require(plan, left, ComputationClass.EQUI_JOIN)
        self._require(plan, right, ComputationClass.EQUI_JOIN)
        adjustments = self.joins.ensure_joinable(
            (left.table, left.name), (right.table, right.name)
        )
        for adjustment in adjustments:
            column = self.schema.column(adjustment.table, adjustment.column)
            table_meta = self.schema.table(adjustment.table)
            state = column.onion_state(Onion.EQ)
            # The re-keying changes the JOIN-ADJ component of every stored
            # Eq ciphertext, so memoised encryptions for the column are stale.
            self.encryptor.cache.invalidate_eq(adjustment.table, adjustment.column)
            delta_bytes = adjustment.delta.to_bytes(32, "big")
            call = ast.FunctionCall(
                udfs.JOIN_ADJUST,
                [ast.ColumnRef(state.anon_name), ast.Literal(delta_bytes)],
            )
            plan.adjustments.append(
                ast.Update(table_meta.anon_name, [(state.anon_name, call)], None)
            )
            plan.adjustment_meta.append(
                ("join", adjustment.table, adjustment.column, adjustment.delta)
            )
            self.onion_adjustments += 1
            # JOIN-ADJ key changes invalidate plans with baked JOIN constants.
            self.schema.bump_version()

    # ==================================================================
    # constants and parameter placeholders
    # ==================================================================
    @staticmethod
    def _bindable(expr: ast.Expression) -> bool:
        """Literal constants and ``?`` placeholders are both bindable."""
        return isinstance(expr, (ast.Literal, ast.Placeholder))

    def _encrypted_constant(
        self,
        plan: RewritePlan,
        expr: ast.Expression,
        column: ColumnMeta,
        onion: Onion,
        level: EncryptionScheme,
    ) -> ast.Literal:
        """An encrypted literal, or a deferred slot for a placeholder."""
        if isinstance(expr, ast.Placeholder):
            target = ast.Literal(None)
            plan.param_slots.append(
                ParamSlot(expr.index, "constant", target, column, onion, level)
            )
            return target
        return ast.Literal(self.encryptor.encrypt_constant(column, onion, level, expr.value))

    def _plain_constant(self, plan: RewritePlan, expr: ast.Expression) -> ast.Expression:
        """A plaintext-column constant, deferred when it is a placeholder."""
        if isinstance(expr, ast.Placeholder):
            target = ast.Literal(None)
            plan.param_slots.append(ParamSlot(expr.index, "plain", target))
            return target
        return expr

    def _row_value_slots(
        self, plan: RewritePlan, placeholder: ast.Placeholder, column: ColumnMeta
    ) -> list[tuple[str, ast.Literal]]:
        """Deferred onion encryptions of one placeholder-valued row cell."""
        if column.plaintext:
            target = ast.Literal(None)
            plan.param_slots.append(ParamSlot(placeholder.index, "plain", target))
            return [(column.name, target)]
        pairs: list[tuple[str, ast.Literal]] = []
        for part in self._anon_parts(column):
            target = ast.Literal(None)
            plan.param_slots.append(
                ParamSlot(placeholder.index, "row_value", target, column, part=part)
            )
            pairs.append((part, target))
        return pairs

    @staticmethod
    def _anon_parts(column: ColumnMeta) -> list[str]:
        """Anonymised DBMS columns storing one application column's value.

        A packed member's Add part lives in the table's shared group
        ciphertext and is written per *group* (INSERT) or through the
        read-modify-write path (UPDATE), never as a per-column part.
        """
        parts = [
            state.anon_name
            for onion, state in column.onions.items()
            if not (onion is Onion.ADD and column.hom_packed)
        ]
        if column.iv_column:
            parts.append(column.iv_column)
        return parts

    # ==================================================================
    # expression rewriting (predicates)
    # ==================================================================
    def _rewrite_predicate(
        self, expr: ast.Expression, scope: _Scope, plan: RewritePlan
    ) -> ast.Expression:
        if isinstance(expr, ast.BinaryOp) and expr.op in ("AND", "OR"):
            return ast.BinaryOp(
                expr.op,
                self._rewrite_predicate(expr.left, scope, plan),
                self._rewrite_predicate(expr.right, scope, plan),
            )
        if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
            return ast.UnaryOp("NOT", self._rewrite_predicate(expr.operand, scope, plan))
        if isinstance(expr, ast.BinaryOp) and expr.op in ("=", "!=", "<", "<=", ">", ">="):
            return self._rewrite_comparison(expr, scope, plan)
        if isinstance(expr, ast.InList):
            return self._rewrite_in(expr, scope, plan)
        if isinstance(expr, ast.Between):
            return self._rewrite_between(expr, scope, plan)
        if isinstance(expr, ast.Like):
            return self._rewrite_like(expr, scope, plan)
        if isinstance(expr, ast.IsNull):
            return self._rewrite_is_null(expr, scope, plan)
        if isinstance(expr, ast.Literal):
            return expr
        if isinstance(expr, ast.FunctionCall):
            return self._rewrite_count_predicate(expr, scope, plan)
        raise UnsupportedQueryError(
            f"predicate {expr.to_sql()} cannot be evaluated over encrypted data"
        )

    def _resolve_or_none(
        self, expr: ast.Expression, scope: _Scope
    ) -> Optional[tuple[ColumnMeta, str]]:
        if isinstance(expr, ast.ColumnRef):
            return scope.resolve(expr)
        return None

    def _rewrite_comparison(
        self, expr: ast.BinaryOp, scope: _Scope, plan: RewritePlan
    ) -> ast.Expression:
        left_col = self._resolve_or_none(expr.left, scope)
        right_col = self._resolve_or_none(expr.right, scope)

        # column vs column: equi-join (or range join).
        if left_col is not None and right_col is not None:
            left_meta, left_qual = left_col
            right_meta, right_qual = right_col
            if left_meta.plaintext and right_meta.plaintext:
                return ast.BinaryOp(
                    expr.op,
                    ast.ColumnRef(left_meta.name, left_qual),
                    ast.ColumnRef(right_meta.name, right_qual),
                )
            if expr.op != "=":
                return self._rewrite_range_join(expr, left_col, right_col, plan)
            self._record(plan, left_meta, ComputationClass.EQUI_JOIN)
            self._record(plan, right_meta, ComputationClass.EQUI_JOIN)
            self._require_join(plan, left_meta, right_meta)
            left_ref = ast.ColumnRef(left_meta.onion_state(Onion.EQ).anon_name, left_qual)
            right_ref = ast.ColumnRef(right_meta.onion_state(Onion.EQ).anon_name, right_qual)
            return ast.BinaryOp(
                "=",
                ast.FunctionCall(udfs.ADJ_PART, [left_ref]),
                ast.FunctionCall(udfs.ADJ_PART, [right_ref]),
            )

        # column vs constant.
        column_side = left_col or right_col
        if column_side is None:
            if any(isinstance(node, ast.ColumnRef) for node in ast.walk_expression(expr)):
                # A function call or arithmetic over a column inside a
                # predicate: this is the "needs plaintext" class of Figure 9.
                for node in ast.walk_expression(expr):
                    if isinstance(node, ast.ColumnRef):
                        resolved = scope.resolve(node)
                        self._record(plan, resolved[0], ComputationClass.PLAINTEXT)
                raise UnsupportedQueryError(
                    f"predicate {expr.to_sql()} requires computation on an encrypted "
                    "column and cannot run on the DBMS server"
                )
            if any(isinstance(node, ast.Placeholder) for node in ast.walk_expression(expr)):
                raise UnsupportedQueryError(
                    f"predicate {expr.to_sql()}: a ? placeholder must be compared "
                    "against a column"
                )
            # constant vs constant: leave untouched.
            return expr
        column, qualifier = column_side
        constant_expr = expr.right if left_col is not None else expr.left
        if not self._bindable(constant_expr):
            raise UnsupportedQueryError(
                f"predicate {expr.to_sql()} mixes computation and comparison on a column"
            )
        if column.plaintext:
            new_ref = ast.ColumnRef(column.name, qualifier)
            constant = self._plain_constant(plan, constant_expr)
            if left_col is not None:
                return ast.BinaryOp(expr.op, new_ref, constant)
            return ast.BinaryOp(expr.op, constant, new_ref)

        if expr.op in ("=", "!="):
            onion, level = self._require(plan, column, ComputationClass.EQUALITY)
        else:
            onion, level = self._require(plan, column, ComputationClass.ORDER)
        encrypted = self._encrypted_constant(plan, constant_expr, column, onion, level)
        new_ref = ast.ColumnRef(column.onion_state(onion).anon_name, qualifier)
        if left_col is not None:
            return ast.BinaryOp(expr.op, new_ref, encrypted)
        return ast.BinaryOp(expr.op, encrypted, new_ref)

    def _rewrite_range_join(
        self,
        expr: ast.BinaryOp,
        left_col: tuple[ColumnMeta, str],
        right_col: tuple[ColumnMeta, str],
        plan: RewritePlan,
    ) -> ast.Expression:
        left_meta, left_qual = left_col
        right_meta, right_qual = right_col
        self._record(plan, left_meta, ComputationClass.RANGE_JOIN)
        self._record(plan, right_meta, ComputationClass.RANGE_JOIN)
        if (
            left_meta.ope_join_group is None
            or left_meta.ope_join_group != right_meta.ope_join_group
        ):
            raise UnsupportedQueryError(
                "range joins require the columns to be declared joinable ahead of "
                "time (declare_range_join), as OPE keys cannot be adjusted at runtime"
            )
        self._require(plan, left_meta, ComputationClass.ORDER)
        self._require(plan, right_meta, ComputationClass.ORDER)
        return ast.BinaryOp(
            expr.op,
            ast.ColumnRef(left_meta.onion_state(Onion.ORD).anon_name, left_qual),
            ast.ColumnRef(right_meta.onion_state(Onion.ORD).anon_name, right_qual),
        )

    def _rewrite_in(self, expr: ast.InList, scope: _Scope, plan: RewritePlan) -> ast.Expression:
        resolved = self._resolve_or_none(expr.expr, scope)
        if resolved is None:
            raise UnsupportedQueryError("IN requires a plain column on its left side")
        column, qualifier = resolved
        if column.plaintext:
            items = [self._plain_constant(plan, item) for item in expr.items]
            return ast.InList(ast.ColumnRef(column.name, qualifier), items, expr.negated)
        onion, level = self._require(plan, column, ComputationClass.EQUALITY)
        items = []
        for item in expr.items:
            if not self._bindable(item):
                raise UnsupportedQueryError("IN list items must be constants")
            items.append(self._encrypted_constant(plan, item, column, onion, level))
        return ast.InList(
            ast.ColumnRef(column.onion_state(onion).anon_name, qualifier), items, expr.negated
        )

    def _rewrite_between(self, expr: ast.Between, scope: _Scope, plan: RewritePlan) -> ast.Expression:
        resolved = self._resolve_or_none(expr.expr, scope)
        if resolved is None:
            raise UnsupportedQueryError("BETWEEN requires a plain column")
        column, qualifier = resolved
        if column.plaintext:
            return ast.Between(
                ast.ColumnRef(column.name, qualifier),
                self._plain_constant(plan, expr.low),
                self._plain_constant(plan, expr.high),
                expr.negated,
            )
        if not self._bindable(expr.low) or not self._bindable(expr.high):
            raise UnsupportedQueryError("BETWEEN bounds must be constants")
        onion, level = self._require(plan, column, ComputationClass.ORDER)
        return ast.Between(
            ast.ColumnRef(column.onion_state(onion).anon_name, qualifier),
            self._encrypted_constant(plan, expr.low, column, onion, level),
            self._encrypted_constant(plan, expr.high, column, onion, level),
            expr.negated,
        )

    def _rewrite_like(self, expr: ast.Like, scope: _Scope, plan: RewritePlan) -> ast.Expression:
        resolved = self._resolve_or_none(expr.expr, scope)
        if resolved is None:
            raise UnsupportedQueryError("LIKE requires a plain column")
        if isinstance(expr.pattern, ast.Placeholder):
            raise UnsupportedQueryError(
                "LIKE patterns cannot be ? parameters: the SEARCH rewrite depends "
                "on the pattern's wildcard shape, so the pattern must be a literal"
            )
        if not isinstance(expr.pattern, ast.Literal) or not isinstance(expr.pattern.value, str):
            raise UnsupportedQueryError(
                "LIKE with a non-constant pattern cannot run over encrypted data"
            )
        column, qualifier = resolved
        pattern = expr.pattern.value
        if column.plaintext:
            return ast.Like(ast.ColumnRef(column.name, qualifier), expr.pattern, expr.negated)
        stripped = pattern.strip("%").strip()
        if "%" in stripped or "_" in stripped or not stripped:
            self._record(plan, column, ComputationClass.PLAINTEXT)
            raise UnsupportedQueryError(
                f"LIKE pattern {pattern!r} is not a full-word search; SEARCH supports "
                "only full keywords (§3.1)"
            )
        if not pattern.startswith("%") and not pattern.endswith("%"):
            # No wildcards at all: this is an equality check.
            onion, level = self._require(plan, column, ComputationClass.EQUALITY)
            encrypted = ast.Literal(
                self.encryptor.encrypt_constant(column, onion, level, stripped)
            )
            ref = ast.ColumnRef(column.onion_state(onion).anon_name, qualifier)
            comparison = ast.BinaryOp("=", ref, encrypted)
            return ast.UnaryOp("NOT", comparison) if expr.negated else comparison
        onion, _level = self._require(plan, column, ComputationClass.WORD_SEARCH)
        token = self.encryptor.search_token(column, stripped)
        call = ast.FunctionCall(
            udfs.SEARCH_MATCH,
            [
                ast.ColumnRef(column.onion_state(Onion.SEARCH).anon_name, qualifier),
                ast.Literal(token.left),
                ast.Literal(token.right),
                ast.Literal(token.prf_key),
            ],
        )
        return ast.UnaryOp("NOT", call) if expr.negated else call

    def _rewrite_is_null(self, expr: ast.IsNull, scope: _Scope, plan: RewritePlan) -> ast.Expression:
        resolved = self._resolve_or_none(expr.expr, scope)
        if resolved is None:
            raise UnsupportedQueryError("IS NULL requires a plain column")
        column, qualifier = resolved
        self._record(plan, column, ComputationClass.NONE)
        if column.plaintext:
            return ast.IsNull(ast.ColumnRef(column.name, qualifier), expr.negated)
        # NULL-ness is identical across onions (NULL + k stays NULL, so HOM
        # increments never change it); the Eq onion answers IS NULL correctly
        # even while the column is HOM-stale.
        state = column.onion_state(Onion.EQ)
        return ast.IsNull(ast.ColumnRef(state.anon_name, qualifier), expr.negated)

    def _rewrite_count_predicate(
        self, expr: ast.FunctionCall, scope: _Scope, plan: RewritePlan
    ) -> ast.Expression:
        raise UnsupportedQueryError(
            f"function {expr.name} in a WHERE clause requires plaintext processing"
        )

    # ==================================================================
    # SELECT
    # ==================================================================
    def _build_scope(self, from_clause: Optional[ast.FromClause]) -> _Scope:
        scope = _Scope(self.schema)
        clause = from_clause
        stack = []
        while isinstance(clause, ast.Join):
            stack.append(clause.right)
            clause = clause.left
        if isinstance(clause, ast.TableRef):
            stack.append(clause)
        for ref in reversed(stack):
            scope.add(ref.name, ref.alias)
        return scope

    def _rewrite_from(
        self, clause: Optional[ast.FromClause], scope: _Scope, plan: RewritePlan
    ) -> Optional[ast.FromClause]:
        if clause is None:
            return None
        if isinstance(clause, ast.TableRef):
            meta = self.schema.table(clause.name)
            return ast.TableRef(meta.anon_name, clause.alias)
        if isinstance(clause, ast.Join):
            left = self._rewrite_from(clause.left, scope, plan)
            right_meta = self.schema.table(clause.right.name)
            right = ast.TableRef(right_meta.anon_name, clause.right.alias)
            condition = None
            if clause.condition is not None:
                condition = self._rewrite_predicate(clause.condition, scope, plan)
            return ast.Join(left, right, condition, clause.join_type)
        raise ProxyError(f"unsupported FROM clause {clause!r}")

    def _rewrite_select(self, statement: ast.Select) -> RewritePlan:
        plan = RewritePlan(statement=None)
        scope = self._build_scope(statement.from_clause)

        new_from = self._rewrite_from(statement.from_clause, scope, plan)
        new_where = (
            self._rewrite_predicate(statement.where, scope, plan)
            if statement.where is not None
            else None
        )

        items: list[ast.SelectItem] = []
        specs: list[OutputSpec] = []
        iv_requests: dict[tuple[str, str], int] = {}

        def add_item(expr: ast.Expression, name: str) -> int:
            items.append(ast.SelectItem(expr, None))
            return len(items) - 1

        for item in statement.items:
            expr = item.expr
            label = item.alias or (
                expr.name if isinstance(expr, ast.ColumnRef) else expr.to_sql()
            )
            if isinstance(expr, ast.Star):
                for column, qualifier in scope.all_columns(expr.table):
                    specs.append(
                        self._project_column(column, qualifier, column.name, add_item, plan)
                    )
                continue
            if isinstance(expr, ast.ColumnRef):
                column, qualifier = scope.resolve(expr)
                specs.append(self._project_column(column, qualifier, label, add_item, plan))
                continue
            if isinstance(expr, ast.Literal):
                index = add_item(expr, label)
                specs.append(OutputSpec("plain", label, index))
                continue
            if isinstance(expr, ast.FunctionCall):
                specs.append(
                    self._project_aggregate(expr, label, scope, plan, add_item)
                )
                continue
            raise UnsupportedQueryError(
                f"projection {expr.to_sql()} requires computation on encrypted data"
            )

        # GROUP BY
        new_group_by: list[ast.Expression] = []
        for group_expr in statement.group_by:
            if not isinstance(group_expr, ast.ColumnRef):
                raise UnsupportedQueryError("GROUP BY supports only plain columns")
            column, qualifier = scope.resolve(group_expr)
            if column.plaintext:
                new_group_by.append(ast.ColumnRef(column.name, qualifier))
                continue
            onion, _level = self._require(plan, column, ComputationClass.EQUALITY)
            new_group_by.append(ast.ColumnRef(column.onion_state(onion).anon_name, qualifier))

        # HAVING (only COUNT comparisons can run over ciphertext).
        new_having = None
        if statement.having is not None:
            new_having = self._rewrite_having(statement.having, scope, plan)

        # ORDER BY
        new_order: list[ast.OrderItem] = []
        proxy_order: list[tuple[int, bool]] = []
        for order in statement.order_by:
            if not isinstance(order.expr, ast.ColumnRef):
                raise UnsupportedQueryError("ORDER BY supports only plain columns")
            column, qualifier = scope.resolve(order.expr)
            if column.plaintext:
                new_order.append(ast.OrderItem(ast.ColumnRef(column.name, qualifier), order.ascending))
                continue
            output_index = _find_output(specs, column)
            if (
                self.in_proxy_processing
                and statement.limit is None
                and output_index is not None
            ):
                # §3.5.1 in-proxy processing: sort at the proxy instead of
                # revealing the OPE encryption to the server.
                self._record(plan, column, ComputationClass.NONE)
                proxy_order.append((output_index, order.ascending))
                continue
            onion, _level = self._require(plan, column, ComputationClass.ORDER)
            new_order.append(
                ast.OrderItem(
                    ast.ColumnRef(column.onion_state(onion).anon_name, qualifier),
                    order.ascending,
                )
            )

        # Later clauses (GROUP BY, ORDER BY) may have lowered an onion that a
        # projection planned to read at a higher level; the adjustments run
        # before the rewritten SELECT, so refresh each spec to the level the
        # data will actually be at when the query executes.
        for spec in specs:
            if spec.kind == "column" and spec.onion is not Onion.ADD:
                spec.level = spec.column.onion_state(spec.onion).level

        # Attach IV columns needed to decrypt RND-level projections.
        for spec in specs:
            if spec.kind == "column" and spec.level is EncryptionScheme.RND:
                assert spec.column is not None
                key = (spec.column.table, spec.column.name)
                if key not in iv_requests:
                    qualifier = _qualifier_of(scope, spec.column)
                    items.append(
                        ast.SelectItem(ast.ColumnRef(spec.column.iv_column, qualifier), None)
                    )
                    iv_requests[key] = len(items) - 1
                spec.iv_index = iv_requests[key]

        plan.statement = ast.Select(
            items=items,
            from_clause=new_from,
            where=new_where,
            group_by=new_group_by,
            having=new_having,
            order_by=new_order,
            limit=statement.limit,
            offset=statement.offset,
            distinct=statement.distinct,
        )
        plan.output = specs
        plan.proxy_order = proxy_order
        return plan

    def _project_column(
        self,
        column: ColumnMeta,
        qualifier: str,
        label: str,
        add_item,
        plan: RewritePlan,
    ) -> OutputSpec:
        self._record(plan, column, ComputationClass.NONE)
        if column.plaintext:
            index = add_item(ast.ColumnRef(column.name, qualifier), label)
            return OutputSpec("plain", label, index)
        if column.hom_stale_others and column.has_onion(Onion.ADD):
            # §3.3: after HOM increments only the Add onion is up to date.
            state = column.onion_state(Onion.ADD)
            index = add_item(ast.ColumnRef(state.anon_name, qualifier), label)
            return OutputSpec(
                "column", label, index, column=column, onion=Onion.ADD,
                level=EncryptionScheme.HOM,
            )
        state = column.onion_state(Onion.EQ)
        index = add_item(ast.ColumnRef(state.anon_name, qualifier), label)
        return OutputSpec(
            "column", label, index, column=column, onion=Onion.EQ, level=state.level
        )

    def _project_aggregate(
        self,
        expr: ast.FunctionCall,
        label: str,
        scope: _Scope,
        plan: RewritePlan,
        add_item,
    ) -> OutputSpec:
        name = expr.name.upper()
        if name == "COUNT":
            if not expr.args or isinstance(expr.args[0], ast.Star):
                index = add_item(ast.FunctionCall("COUNT", [ast.Star()]), label)
                return OutputSpec("plain", label, index)
            if not isinstance(expr.args[0], ast.ColumnRef):
                raise UnsupportedQueryError("COUNT supports only plain columns")
            column, qualifier = scope.resolve(expr.args[0])
            if column.plaintext:
                ref = ast.ColumnRef(column.name, qualifier)
            else:
                computation = (
                    ComputationClass.EQUALITY if expr.distinct else ComputationClass.NONE
                )
                onion, _ = self._require(plan, column, computation)
                ref = ast.ColumnRef(column.onion_state(onion).anon_name, qualifier)
            index = add_item(ast.FunctionCall("COUNT", [ref], expr.distinct), label)
            return OutputSpec("plain", label, index)

        if name in ("SUM", "AVG", "MIN", "MAX"):
            if len(expr.args) != 1 or not isinstance(expr.args[0], ast.ColumnRef):
                raise UnsupportedQueryError(f"{name} supports only a single plain column")
            column, qualifier = scope.resolve(expr.args[0])
            if column.plaintext:
                index = add_item(
                    ast.FunctionCall(name, [ast.ColumnRef(column.name, qualifier)]), label
                )
                return OutputSpec("plain", label, index)
            if name in ("SUM", "AVG"):
                onion, _ = self._require(plan, column, ComputationClass.ADDITION)
                ref = ast.ColumnRef(column.onion_state(Onion.ADD).anon_name, qualifier)
                index = add_item(ast.FunctionCall(udfs.HOM_SUM, [ref]), label)
                if name == "SUM":
                    return OutputSpec("hom_sum", label, index, column=column)
                if column.hom_packed:
                    # COUNT over the shared packed column would count rows
                    # where *any* group member is non-NULL; the slot's count
                    # subfield is the correct divisor and comes for free with
                    # the decrypted sum.
                    return OutputSpec("avg", label, index, column=column)
                count_index = add_item(ast.FunctionCall("COUNT", [ref]), label + "__count")
                return OutputSpec(
                    "avg", label, index, column=column, extra_index=count_index
                )
            onion, level = self._require(plan, column, ComputationClass.ORDER)
            ref = ast.ColumnRef(column.onion_state(Onion.ORD).anon_name, qualifier)
            index = add_item(ast.FunctionCall(name, [ref]), label)
            return OutputSpec("ope_agg", label, index, column=column, onion=Onion.ORD, level=level)

        raise UnsupportedQueryError(f"aggregate/function {name} is not supported over ciphertext")

    def _rewrite_having(
        self, expr: ast.Expression, scope: _Scope, plan: RewritePlan
    ) -> ast.Expression:
        if isinstance(expr, ast.BinaryOp) and expr.op in ("AND", "OR"):
            return ast.BinaryOp(
                expr.op,
                self._rewrite_having(expr.left, scope, plan),
                self._rewrite_having(expr.right, scope, plan),
            )
        if (
            isinstance(expr, ast.BinaryOp)
            and isinstance(expr.left, ast.FunctionCall)
            and expr.left.name.upper() == "COUNT"
            and isinstance(expr.right, ast.Literal)
        ):
            rewritten_count = self._project_count_for_having(expr.left, scope, plan)
            return ast.BinaryOp(expr.op, rewritten_count, expr.right)
        raise UnsupportedQueryError(
            "HAVING clauses over encrypted data support only COUNT comparisons"
        )

    def _project_count_for_having(
        self, expr: ast.FunctionCall, scope: _Scope, plan: RewritePlan
    ) -> ast.Expression:
        if not expr.args or isinstance(expr.args[0], ast.Star):
            return ast.FunctionCall("COUNT", [ast.Star()])
        column, qualifier = scope.resolve(expr.args[0])
        if column.plaintext:
            return ast.FunctionCall("COUNT", [ast.ColumnRef(column.name, qualifier)], expr.distinct)
        computation = ComputationClass.EQUALITY if expr.distinct else ComputationClass.NONE
        onion, _ = self._require(plan, column, computation)
        return ast.FunctionCall(
            "COUNT", [ast.ColumnRef(column.onion_state(onion).anon_name, qualifier)], expr.distinct
        )

    # ==================================================================
    # INSERT / UPDATE / DELETE
    # ==================================================================
    def _rewrite_insert(self, statement: ast.Insert) -> RewritePlan:
        plan = RewritePlan(statement=None)
        table_meta = self.schema.table(statement.table)
        columns = statement.columns or table_meta.column_names()

        # Deterministic anonymised layout, independent of the row values.
        layout: list[tuple[ColumnMeta, list[str]]] = []
        anon_columns: list[str] = []
        for column_name in columns:
            column = table_meta.column(column_name)
            parts = [column.name] if column.plaintext else self._anon_parts(column)
            layout.append((column, parts))
            anon_columns.extend(parts)

        for group in table_meta.hom_groups:
            anon_columns.append(group.anon_name)
        position = {name: i for i, name in enumerate(columns)}

        rows: list[list[ast.Expression]] = []
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise ProxyError("INSERT row length does not match the column list")
            row: list[ast.Expression] = []
            for (column, parts), expr in zip(layout, row_exprs):
                self._record(plan, column, ComputationClass.NONE)
                if isinstance(expr, ast.Placeholder):
                    row.extend(target for _, target in self._row_value_slots(plan, expr, column))
                    continue
                if not isinstance(expr, ast.Literal):
                    raise UnsupportedQueryError(
                        "INSERT values must be constants or ? placeholders"
                    )
                if column.plaintext:
                    row.append(ast.Literal(expr.value))
                    continue
                # A fresh IV (and HOM randomness) is baked into the plan.
                plan.cacheable = False
                encrypted = self.encryptor.encrypt_row_value(column, expr.value)
                row.extend(ast.Literal(encrypted.get(part)) for part in parts)
            for group in table_meta.hom_groups:
                row.append(
                    self._packed_insert_cell(plan, table_meta, group, position, row_exprs)
                )
            rows.append(row)
        plan.statement = ast.Insert(table_meta.anon_name, anon_columns, rows)
        return plan

    def _packed_insert_cell(
        self,
        plan: RewritePlan,
        table_meta: TableMeta,
        group: HomGroup,
        position: dict[str, int],
        row_exprs: list[ast.Expression],
    ) -> ast.Expression:
        """The INSERT expression for one row's shared packed group cell.

        Members missing from the INSERT column list default to NULL and are
        stored as count-0 slots; the cell itself is always non-NULL, so the
        read paths never need a packed-IS-NULL special case.  Rows with any
        ``?`` member defer to a ``hom_pack`` slot (one packed encryption per
        bound row); all-literal rows bake a fresh ciphertext and make the
        plan non-cacheable, exactly like literal RND IVs.
        """
        entries: list[tuple[ColumnMeta, Optional[int], Any]] = []
        for member_name in group.members:
            column = table_meta.column(member_name)
            index = position.get(member_name)
            expr = row_exprs[index] if index is not None else None
            if isinstance(expr, ast.Placeholder):
                entries.append((column, expr.index, None))
            else:
                # The main column loop already rejected anything that is not
                # a Literal or Placeholder; a missing member stays NULL.
                entries.append((column, None, expr.value if expr is not None else None))
        param_indices = [index for _, index, _ in entries if index is not None]
        if param_indices:
            target = ast.Literal(None)
            plan.param_slots.append(
                ParamSlot(param_indices[0], "hom_pack", target, pack=entries)
            )
            return target
        plan.cacheable = False
        members = [table_meta.column(name) for name in group.members]
        return ast.Literal(
            self.encryptor.encrypt_hom_group(members, [value for _, _, value in entries])
        )

    def _rewrite_update(self, statement: ast.Update) -> RewritePlan:
        plan = RewritePlan(statement=None)
        table_meta = self.schema.table(statement.table)
        scope = _Scope(self.schema)
        scope.add(statement.table, None)

        # Rewrite the WHERE clause *before* the assignments: the predicate
        # executes against pre-update onion state, so an increment in this
        # very statement (which marks the column HOM-stale for *later*
        # statements) must not disqualify its own WHERE clause.
        where = (
            self._rewrite_predicate(statement.where, scope, plan)
            if statement.where is not None
            else None
        )

        assignments: list[tuple[str, ast.Expression]] = []
        # Two increments landing on the same shared packed column must nest
        # (a second plain assignment to the same name would win and drop the
        # first member's delta).
        packed_assignment_at: dict[str, int] = {}
        for column_name, expr in statement.assignments:
            column = table_meta.column(column_name)
            if column.plaintext:
                if not self._bindable(expr):
                    raise UnsupportedQueryError("updates to plaintext columns must be constants")
                assignments.append((column.name, self._plain_constant(plan, expr)))
                continue
            if isinstance(expr, ast.Placeholder):
                self._record(plan, column, ComputationClass.NONE)
                assignments.extend(self._row_value_slots(plan, expr, column))
                if column.hom_packed:
                    self._register_hom_rmw(plan, table_meta, column, expr.index, None)
                continue
            if isinstance(expr, ast.Literal):
                self._record(plan, column, ComputationClass.NONE)
                # A fresh IV is baked into the plan; do not cache it.
                plan.cacheable = False
                encrypted = self.encryptor.encrypt_row_value(column, expr.value)
                assignments.extend((name, ast.Literal(value)) for name, value in encrypted.items())
                if column.hom_packed:
                    self._register_hom_rmw(plan, table_meta, column, None, expr.value)
                continue
            increment = _match_increment(expr, column_name)
            if increment is not None:
                value_expr, sign = increment
                self._record(plan, column, ComputationClass.ADDITION)
                self._require(plan, column, ComputationClass.ADDITION)
                state = column.onion_state(Onion.ADD)
                if isinstance(value_expr, ast.Placeholder):
                    delta_node = ast.Literal(None)
                    plan.param_slots.append(
                        ParamSlot(value_expr.index, "hom_delta", delta_node, column, sign=sign)
                    )
                else:
                    # HOM encryption is probabilistic; baking the ciphertext
                    # into a reusable plan would replay its randomness.
                    plan.cacheable = False
                    delta_node = ast.Literal(
                        self.encryptor.hom_delta(column, sign * value_expr.value)
                    )
                if column.hom_packed:
                    # The delta ciphertext is pre-shifted into the member's
                    # slot; the Eq-onion cell rides along as a NULL sentinel
                    # so increments of NULL values leave the slot at count 0.
                    sentinel = ast.ColumnRef(column.onion_state(Onion.EQ).anon_name)
                    previous = packed_assignment_at.get(state.anon_name)
                    base: ast.Expression = (
                        assignments[previous][1]
                        if previous is not None
                        else ast.ColumnRef(state.anon_name)
                    )
                    call = ast.FunctionCall(
                        udfs.HOM_ADD_PACKED, [base, delta_node, sentinel]
                    )
                    if previous is not None:
                        assignments[previous] = (state.anon_name, call)
                    else:
                        packed_assignment_at[state.anon_name] = len(assignments)
                        assignments.append((state.anon_name, call))
                else:
                    call = ast.FunctionCall(
                        udfs.HOM_ADD, [ast.ColumnRef(state.anon_name), delta_node]
                    )
                    assignments.append((state.anon_name, call))
                if not column.hom_stale_others:
                    # Projections of this column must switch to the Add onion
                    # (§3.3); cached SELECT plans reading Eq are now stale.
                    column.hom_stale_others = True
                    self.schema.bump_version()
                continue
            self._record(plan, column, ComputationClass.PLAINTEXT)
            raise UnsupportedQueryError(
                f"UPDATE expression {expr.to_sql()} cannot run over encrypted data "
                "(it requires the SELECT-then-UPDATE strategy of §3.3)"
            )

        plan.statement = ast.Update(table_meta.anon_name, assignments, where)
        return plan

    @staticmethod
    def _register_hom_rmw(
        plan: RewritePlan,
        table_meta: TableMeta,
        column: ColumnMeta,
        param_index: Optional[int],
        value: Any,
    ) -> None:
        """Record that an UPDATE absolutely reassigns one packed slot."""
        group = table_meta.hom_groups[column.hom_group]
        for spec in plan.hom_rmw:
            if spec.group_anon_name == group.anon_name:
                spec.assignments.append((column, param_index, value))
                return
        plan.hom_rmw.append(
            HomRmwSpec(
                table_meta.anon_name,
                group.anon_name,
                [(column, param_index, value)],
            )
        )

    def _rewrite_delete(self, statement: ast.Delete) -> RewritePlan:
        plan = RewritePlan(statement=None)
        table_meta = self.schema.table(statement.table)
        scope = _Scope(self.schema)
        scope.add(statement.table, None)
        where = (
            self._rewrite_predicate(statement.where, scope, plan)
            if statement.where is not None
            else None
        )
        plan.statement = ast.Delete(table_meta.anon_name, where)
        return plan


def _match_increment(
    expr: ast.Expression, column_name: str
) -> Optional[tuple[Union[ast.Literal, ast.Placeholder], int]]:
    """Detect ``col + k`` / ``col - k`` patterns in an UPDATE assignment.

    Returns the delta expression (a literal or a ``?`` placeholder bound at
    execution time) and the sign to apply to it.
    """
    if not isinstance(expr, ast.BinaryOp) or expr.op not in ("+", "-"):
        return None
    left, right = expr.left, expr.right
    bindable = (ast.Literal, ast.Placeholder)
    if (
        isinstance(left, ast.ColumnRef)
        and left.name == column_name
        and isinstance(right, bindable)
    ):
        value_expr = right
    elif (
        expr.op == "+"
        and isinstance(right, ast.ColumnRef)
        and right.name == column_name
        and isinstance(left, bindable)
    ):
        value_expr = left
    else:
        return None
    if isinstance(value_expr, ast.Literal) and not isinstance(value_expr.value, (int, float)):
        return None
    return value_expr, (-1 if expr.op == "-" else 1)


def _find_output(specs: list[OutputSpec], column: ColumnMeta) -> Optional[int]:
    for position, spec in enumerate(specs):
        if spec.column is column:
            return position
    return None


def _qualifier_of(scope: _Scope, column: ColumnMeta) -> str:
    for qualifier, meta, alias in scope.entries:
        if meta.name == column.table:
            return alias or meta.anon_name
    raise ProxyError(f"column {column.table}.{column.name} is not in scope")

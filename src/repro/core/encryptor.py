"""Value encoding and layered onion encryption/decryption.

The encryptor turns application values into the per-onion ciphertexts stored
in the anonymised tables (Figure 3) and back.  It owns the per-column crypto
objects (RND, DET, OPE, SEARCH, Paillier, JOIN), all keyed through the key
manager implementing Equation (1), and implements the value encodings:

* integer-kind columns are mapped to unsigned 64-bit values (offset 2^63)
  for RND/DET, to unsigned 32-bit values (offset 2^31) for OPE, and into the
  Paillier plaintext group (negatives as ``n - |v|``) for HOM;
* text-kind columns are encrypted as UTF-8 bytes; for OPE the first four
  bytes provide a (prefix) order-preserving encoding;
* DECIMAL/FLOAT columns are scaled by 10^4 and treated as integers.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.joins import JoinManager
from repro.core.onion import EncryptionScheme, Onion
from repro.core.schema import ColumnMeta
from repro.crypto.det import DET
from repro.crypto.join_adj import ADJ_SIZE, JoinCiphertext
from repro.crypto.keys import KeyManager
from repro.crypto.ope import OPE
from repro.crypto.paillier import Paillier, PaillierKeyPair
from repro.crypto.rnd import RND
from repro.crypto.search import SEARCH
from repro.errors import CryptoError, ProxyError

_INT64_OFFSET = 1 << 63
_INT32_OFFSET = 1 << 31
_DECIMAL_SCALE = 10_000


class Encryptor:
    """Performs all onion-layer encryption and decryption for the proxy."""

    def __init__(
        self,
        keys: KeyManager,
        joins: JoinManager,
        paillier: PaillierKeyPair,
        use_ope_cache: bool = True,
    ):
        self.keys = keys
        self.joins = joins
        self.paillier = paillier
        self.hom = Paillier(paillier.public)
        self.use_ope_cache = use_ope_cache
        self._rnd: dict[tuple, RND] = {}
        self._det: dict[tuple, DET] = {}
        self._ope: dict[tuple, OPE] = {}
        self._search: dict[tuple, SEARCH] = {}
        self._det_join: dict[tuple, DET] = {}

    # ------------------------------------------------------------------
    # Per-column crypto objects
    # ------------------------------------------------------------------
    def _rnd_for(self, column: ColumnMeta, onion: Onion) -> RND:
        cache_key = (column.table, column.name, onion)
        if cache_key not in self._rnd:
            key = self.keys.key_for(column.table, column.name, onion.value, "RND")
            self._rnd[cache_key] = RND(key)
        return self._rnd[cache_key]

    def _det_for(self, column: ColumnMeta) -> DET:
        cache_key = (column.table, column.name)
        if cache_key not in self._det:
            key = self.keys.key_for(column.table, column.name, Onion.EQ.value, "DET")
            self._det[cache_key] = DET(key)
        return self._det[cache_key]

    def _det_join_for(self, column: ColumnMeta) -> DET:
        cache_key = (column.table, column.name)
        if cache_key not in self._det_join:
            self._det_join[cache_key] = DET(self.joins.det_key(column.table, column.name))
        return self._det_join[cache_key]

    def _ope_for(self, column: ColumnMeta) -> OPE:
        cache_key = (column.table, column.name)
        if cache_key not in self._ope:
            if column.ope_join_group is not None:
                key = self.keys.key_for(
                    "__ope_join__", column.ope_join_group, Onion.ORD.value, "OPE"
                )
            else:
                key = self.keys.key_for(column.table, column.name, Onion.ORD.value, "OPE")
            self._ope[cache_key] = OPE(key, cache=self.use_ope_cache)
        return self._ope[cache_key]

    def _search_for(self, column: ColumnMeta) -> SEARCH:
        cache_key = (column.table, column.name)
        if cache_key not in self._search:
            key = self.keys.key_for(column.table, column.name, Onion.SEARCH.value, "SEARCH")
            self._search[cache_key] = SEARCH(key)
        return self._search[cache_key]

    # ------------------------------------------------------------------
    # Value encodings
    # ------------------------------------------------------------------
    @staticmethod
    def _to_int(column: ColumnMeta, value: Any) -> int:
        if isinstance(value, bool):
            return int(value)
        if column.data_type.name in ("DECIMAL", "NUMERIC", "FLOAT", "DOUBLE", "REAL"):
            return int(round(float(value) * _DECIMAL_SCALE))
        return int(value)

    @staticmethod
    def _from_int(column: ColumnMeta, encoded: int) -> Any:
        if column.data_type.name in ("DECIMAL", "NUMERIC", "FLOAT", "DOUBLE", "REAL"):
            return encoded / _DECIMAL_SCALE
        return encoded

    def _to_bytes(self, column: ColumnMeta, value: Any) -> bytes:
        if column.kind == "integer":
            return (self._to_int(column, value) + _INT64_OFFSET).to_bytes(8, "big")
        if isinstance(value, bytes):
            return value
        return str(value).encode("utf-8")

    def _from_bytes(self, column: ColumnMeta, data: bytes) -> Any:
        if column.kind == "integer":
            return self._from_int(column, int.from_bytes(data, "big") - _INT64_OFFSET)
        if column.kind == "binary":
            return data
        return data.decode("utf-8")

    def _to_ope_int(self, column: ColumnMeta, value: Any) -> int:
        if column.kind == "integer":
            encoded = self._to_int(column, value) + _INT32_OFFSET
            return min(max(encoded, 0), (1 << 32) - 1)
        raw = value if isinstance(value, bytes) else str(value).encode("utf-8")
        padded = raw[:4].ljust(4, b"\x00")
        return int.from_bytes(padded, "big")

    def _from_ope_int(self, column: ColumnMeta, encoded: int) -> Any:
        if column.kind == "integer":
            return self._from_int(column, encoded - _INT32_OFFSET)
        return encoded.to_bytes(4, "big").rstrip(b"\x00").decode("utf-8", "replace")

    def _to_hom_int(self, value: Any, column: ColumnMeta) -> int:
        encoded = self._to_int(column, value)
        n = self.paillier.public.n
        return encoded % n

    def _from_hom_int(self, decrypted: int, column: ColumnMeta) -> Any:
        n = self.paillier.public.n
        if decrypted > n // 2:
            decrypted -= n
        return self._from_int(column, decrypted)

    # ------------------------------------------------------------------
    # Onion encryption (INSERT path)
    # ------------------------------------------------------------------
    def encrypt_row_value(
        self, column: ColumnMeta, value: Any
    ) -> dict[str, Any]:
        """Encrypt one value into all of its onion columns (plus the IV).

        Only the layers that have not yet been stripped from each onion are
        applied, matching §3.3's write-query behaviour.
        """
        result: dict[str, Any] = {}
        if column.plaintext:
            return result
        if value is None:
            # CryptDB exposes NULLs to the DBMS unencrypted (§3.3).
            for state in column.onions.values():
                result[state.anon_name] = None
            if column.iv_column:
                result[column.iv_column] = None
            return result

        iv = RND.generate_iv()
        if column.iv_column:
            result[column.iv_column] = iv
        for onion, state in column.onions.items():
            result[state.anon_name] = self.encrypt_to_level(
                column, onion, state.level, value, iv
            )
        return result

    def encrypt_to_level(
        self,
        column: ColumnMeta,
        onion: Onion,
        level: EncryptionScheme,
        value: Any,
        iv: Optional[bytes] = None,
    ) -> Any:
        """Encrypt a value for one onion up to (and including) ``level``."""
        if onion is Onion.EQ:
            return self._encrypt_eq(column, level, value, iv)
        if onion is Onion.ORD:
            return self._encrypt_ord(column, level, value, iv)
        if onion is Onion.ADD:
            return self.paillier.encrypt(self._to_hom_int(value, column))
        if onion is Onion.SEARCH:
            text = value if isinstance(value, str) else str(value)
            return self._search_for(column).encrypt(text).serialize()
        raise ProxyError(f"unknown onion {onion}")

    def _encrypt_eq(
        self,
        column: ColumnMeta,
        level: EncryptionScheme,
        value: Any,
        iv: Optional[bytes],
    ) -> bytes:
        plaintext = self._to_bytes(column, value)
        adj = self.joins.join_adj_for(column.table, column.name).hash_value(plaintext)
        det_component = self._det_join_for(column).encrypt_bytes(plaintext)
        join_ct = JoinCiphertext(adj, det_component).serialize()
        if level is EncryptionScheme.JOIN:
            return join_ct
        det_ct = self._det_for(column).encrypt_bytes(join_ct)
        if level is EncryptionScheme.DET:
            return det_ct
        if level is EncryptionScheme.RND:
            if iv is None:
                raise CryptoError("RND encryption requires an IV")
            return self._rnd_for(column, Onion.EQ).encrypt_bytes(det_ct, iv)
        raise ProxyError(f"invalid Eq onion level {level}")

    def _encrypt_ord(
        self,
        column: ColumnMeta,
        level: EncryptionScheme,
        value: Any,
        iv: Optional[bytes],
    ) -> int:
        ope_ct = self._ope_for(column).encrypt(self._to_ope_int(column, value))
        if level in (EncryptionScheme.OPE, EncryptionScheme.OPE_JOIN):
            return ope_ct
        if level is EncryptionScheme.RND:
            if iv is None:
                raise CryptoError("RND encryption requires an IV")
            return self._rnd_for(column, Onion.ORD).encrypt_int(ope_ct, iv)
        raise ProxyError(f"invalid Ord onion level {level}")

    # ------------------------------------------------------------------
    # Constant encryption (query rewrite path)
    # ------------------------------------------------------------------
    def encrypt_constant(
        self, column: ColumnMeta, onion: Onion, level: EncryptionScheme, value: Any
    ) -> Any:
        """Encrypt a query constant for comparison at the given onion level."""
        if value is None:
            return None
        if onion is Onion.EQ:
            if level not in (EncryptionScheme.DET, EncryptionScheme.JOIN):
                raise ProxyError("equality constants require the DET or JOIN layer")
            return self._encrypt_eq(column, level, value, None)
        if onion is Onion.ORD:
            return self._encrypt_ord(column, EncryptionScheme.OPE, value, None)
        if onion is Onion.ADD:
            return self.paillier.encrypt(self._to_hom_int(value, column))
        if onion is Onion.SEARCH:
            raise ProxyError("SEARCH constants are encrypted as tokens, not values")
        raise ProxyError(f"unknown onion {onion}")

    def search_token(self, column: ColumnMeta, word: str):
        """Produce the SEARCH token handed to the DBMS for a LIKE keyword."""
        return self._search_for(column).token(word)

    def hom_delta(self, column: ColumnMeta, delta: int) -> int:
        """Paillier encryption of an increment used by UPDATE ... SET c = c + k."""
        return self.paillier.encrypt(self._to_hom_int(delta, column))

    # ------------------------------------------------------------------
    # Decryption (result path)
    # ------------------------------------------------------------------
    def decrypt_value(
        self,
        column: ColumnMeta,
        onion: Onion,
        level: EncryptionScheme,
        ciphertext: Any,
        iv: Optional[bytes] = None,
    ) -> Any:
        """Decrypt a result-set value given the onion level it was read at."""
        if ciphertext is None:
            return None
        if onion is Onion.EQ:
            data = ciphertext
            if level is EncryptionScheme.RND:
                if iv is None:
                    raise CryptoError("decrypting the RND layer requires the row IV")
                data = self._rnd_for(column, Onion.EQ).decrypt_bytes(data, iv)
                level = EncryptionScheme.DET
            if level is EncryptionScheme.DET:
                data = self._det_for(column).decrypt_bytes(data)
                level = EncryptionScheme.JOIN
            join_ct = JoinCiphertext.deserialize(data)
            plaintext = self._det_join_for(column).decrypt_bytes(join_ct.det)
            return self._from_bytes(column, plaintext)
        if onion is Onion.ORD:
            value = ciphertext
            if level is EncryptionScheme.RND:
                if iv is None:
                    raise CryptoError("decrypting the RND layer requires the row IV")
                value = self._rnd_for(column, Onion.ORD).decrypt_int(value, iv)
            return self._from_ope_int(column, self._ope_for(column).decrypt(value))
        if onion is Onion.ADD:
            return self._from_hom_int(self.paillier.decrypt(ciphertext), column)
        if onion is Onion.SEARCH:
            raise ProxyError("SEARCH ciphertexts cannot be decrypted to plaintext")
        raise ProxyError(f"unknown onion {onion}")

    def decrypt_hom_sum(self, column: ColumnMeta, ciphertext: Any) -> Any:
        """Decrypt the result of the Paillier SUM aggregate UDF."""
        if ciphertext is None:
            return None
        return self._from_hom_int(self.paillier.decrypt(ciphertext), column)

    # ------------------------------------------------------------------
    # Server-side layer keys (handed out during onion adjustment)
    # ------------------------------------------------------------------
    def layer_key(self, column: ColumnMeta, onion: Onion, layer: EncryptionScheme) -> bytes:
        """The key the proxy sends to the server to strip ``layer``."""
        return self.keys.key_for(column.table, column.name, onion.value, layer.value)

    @staticmethod
    def adj_prefix_size() -> int:
        """Size of the JOIN-ADJ component inside a JOIN ciphertext."""
        return ADJ_SIZE

"""Value encoding and layered onion encryption/decryption.

The encryptor turns application values into the per-onion ciphertexts stored
in the anonymised tables (Figure 3) and back.  It owns the per-column crypto
objects (RND, DET, OPE, SEARCH, Paillier, JOIN), all keyed through the key
manager implementing Equation (1), and implements the value encodings:

* integer-kind columns are mapped to unsigned 64-bit values (offset 2^63)
  for RND/DET, to unsigned 32-bit values (offset 2^31) for OPE, and into the
  Paillier plaintext group (negatives as ``n - |v|``) for HOM;
* text-kind columns are encrypted as UTF-8 bytes; for OPE the first four
  bytes provide a (prefix) order-preserving encoding;
* DECIMAL/FLOAT columns are scaled by 10^4 and treated as integers.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.cache import CryptoCache
from repro.core.joins import JoinManager
from repro.core.onion import EncryptionScheme, Onion
from repro.core.schema import ColumnMeta
from repro.crypto.det import DET
from repro.crypto.join_adj import ADJ_SIZE, JoinCiphertext
from repro.crypto.keys import KeyManager
from repro.crypto.ope import OPE
from repro.crypto.paillier import Paillier, PaillierKeyPair, PackingConfig
from repro.crypto.rnd import RND
from repro.crypto.search import SEARCH
from repro.errors import CryptoError, ProxyError
from repro.parallel.jobs import (
    EqDecryptJob,
    EqEncryptJob,
    HomDecryptJob,
    HomEncryptJob,
    RndEncryptJob,
)
from repro.parallel.pool import CryptoWorkerPool, ParallelUnavailable

_INT64_OFFSET = 1 << 63
_INT32_OFFSET = 1 << 31
_DECIMAL_SCALE = 10_000


class Encryptor:
    """Performs all onion-layer encryption and decryption for the proxy.

    Scalar entry points (``encrypt_row_value``, ``encrypt_constant``,
    ``decrypt_value``) serve single-statement traffic; the column-batch
    entry points (``encrypt_column_values``, ``encrypt_constants_many``,
    ``decrypt_column``) serve ``executemany`` and bulk result decryption,
    computing each distinct value's deterministic layers once through the
    :class:`~repro.core.cache.CryptoCache` memos (§3.5.2).
    """

    def __init__(
        self,
        keys: KeyManager,
        joins: JoinManager,
        paillier: PaillierKeyPair,
        use_ope_cache: bool = True,
        cache: Optional[CryptoCache] = None,
        pool: Optional[CryptoWorkerPool] = None,
        packing: Optional[PackingConfig] = None,
    ):
        self.keys = keys
        self.joins = joins
        self.paillier = paillier
        self.hom = Paillier(paillier.public)
        #: Packed-HOM slot layout (§8.4); ``None`` keeps the one-ciphertext-
        #: per-value scalar behaviour.  Must match the schema's ``hom_slots``.
        self.packing = packing
        self.cache = cache if cache is not None else CryptoCache(paillier, enabled=use_ope_cache)
        self.use_ope_cache = use_ope_cache
        #: Optional crypto worker pool; batch kernels offload through it when
        #: the batch clears the chunk threshold, and fall back to the serial
        #: in-process code otherwise (or when the pool infrastructure fails).
        self.pool = pool
        self._rnd: dict[tuple, RND] = {}
        self._det: dict[tuple, DET] = {}
        self._ope: dict[tuple, OPE] = {}
        self._search: dict[tuple, SEARCH] = {}
        self._det_join: dict[tuple, DET] = {}

    # ------------------------------------------------------------------
    # Per-column crypto objects
    # ------------------------------------------------------------------
    def _rnd_for(self, column: ColumnMeta, onion: Onion) -> RND:
        cache_key = (column.table, column.name, onion)
        if cache_key not in self._rnd:
            key = self.keys.key_for(column.table, column.name, onion.value, "RND")
            self._rnd[cache_key] = RND(key)
        return self._rnd[cache_key]

    def _det_for(self, column: ColumnMeta) -> DET:
        cache_key = (column.table, column.name)
        if cache_key not in self._det:
            key = self.keys.key_for(column.table, column.name, Onion.EQ.value, "DET")
            self._det[cache_key] = DET(key)
        return self._det[cache_key]

    def _det_join_for(self, column: ColumnMeta) -> DET:
        cache_key = (column.table, column.name)
        if cache_key not in self._det_join:
            self._det_join[cache_key] = DET(self.joins.det_key(column.table, column.name))
        return self._det_join[cache_key]

    def _ope_for(self, column: ColumnMeta) -> OPE:
        cache_key = (column.table, column.name)
        if cache_key not in self._ope:
            if column.ope_join_group is not None:
                key = self.keys.key_for(
                    "__ope_join__", column.ope_join_group, Onion.ORD.value, "OPE"
                )
            else:
                key = self.keys.key_for(column.table, column.name, Onion.ORD.value, "OPE")
            ope = OPE(key, cache=self.use_ope_cache)
            self._ope[cache_key] = ope
            self.cache.register_ope(ope)
        return self._ope[cache_key]

    def _search_for(self, column: ColumnMeta) -> SEARCH:
        cache_key = (column.table, column.name)
        if cache_key not in self._search:
            key = self.keys.key_for(column.table, column.name, Onion.SEARCH.value, "SEARCH")
            search = SEARCH(key, cache=self.cache.enabled)
            self._search[cache_key] = search
            self.cache.register_search(search)
        return self._search[cache_key]

    # ------------------------------------------------------------------
    # Value encodings
    # ------------------------------------------------------------------
    @staticmethod
    def _to_int(column: ColumnMeta, value: Any) -> int:
        if isinstance(value, bool):
            return int(value)
        if column.data_type.name in ("DECIMAL", "NUMERIC", "FLOAT", "DOUBLE", "REAL"):
            return int(round(float(value) * _DECIMAL_SCALE))
        return int(value)

    @staticmethod
    def _from_int(column: ColumnMeta, encoded: int) -> Any:
        if column.data_type.name in ("DECIMAL", "NUMERIC", "FLOAT", "DOUBLE", "REAL"):
            return encoded / _DECIMAL_SCALE
        return encoded

    def _to_bytes(self, column: ColumnMeta, value: Any) -> bytes:
        if column.kind == "integer":
            return (self._to_int(column, value) + _INT64_OFFSET).to_bytes(8, "big")
        if isinstance(value, bytes):
            return value
        return str(value).encode("utf-8")

    def _from_bytes(self, column: ColumnMeta, data: bytes) -> Any:
        if column.kind == "integer":
            return self._from_int(column, int.from_bytes(data, "big") - _INT64_OFFSET)
        if column.kind == "binary":
            return data
        return data.decode("utf-8")

    def _to_ope_int(self, column: ColumnMeta, value: Any) -> int:
        if column.kind == "integer":
            encoded = self._to_int(column, value) + _INT32_OFFSET
            return min(max(encoded, 0), (1 << 32) - 1)
        raw = value if isinstance(value, bytes) else str(value).encode("utf-8")
        padded = raw[:4].ljust(4, b"\x00")
        return int.from_bytes(padded, "big")

    def _from_ope_int(self, column: ColumnMeta, encoded: int) -> Any:
        if column.kind == "integer":
            return self._from_int(column, encoded - _INT32_OFFSET)
        return encoded.to_bytes(4, "big").rstrip(b"\x00").decode("utf-8", "replace")

    def _to_hom_int(self, value: Any, column: ColumnMeta) -> int:
        encoded = self._to_int(column, value)
        n = self.paillier.public.n
        return encoded % n

    def _from_hom_int(self, decrypted: int, column: ColumnMeta) -> Any:
        n = self.paillier.public.n
        if decrypted > n // 2:
            decrypted -= n
        return self._from_int(column, decrypted)

    # ------------------------------------------------------------------
    # Onion encryption (INSERT path)
    # ------------------------------------------------------------------
    def encrypt_row_value(
        self, column: ColumnMeta, value: Any
    ) -> dict[str, Any]:
        """Encrypt one value into all of its onion columns (plus the IV).

        Only the layers that have not yet been stripped from each onion are
        applied, matching §3.3's write-query behaviour.
        """
        result: dict[str, Any] = {}
        if column.plaintext:
            return result
        if value is None:
            # CryptDB exposes NULLs to the DBMS unencrypted (§3.3).  A packed
            # member's Add part lives in the shared group ciphertext (its slot
            # carries count 0 for NULL), so it is never NULLed here.
            for onion, state in column.onions.items():
                if onion is Onion.ADD and column.hom_packed:
                    continue
                result[state.anon_name] = None
            if column.iv_column:
                result[column.iv_column] = None
            return result

        iv = RND.generate_iv()
        if column.iv_column:
            result[column.iv_column] = iv
        for onion, state in column.onions.items():
            if onion is Onion.ADD and column.hom_packed:
                # The shared packed cell is produced per *group*, not per
                # column; see :meth:`encrypt_hom_group`.
                continue
            result[state.anon_name] = self.encrypt_to_level(
                column, onion, state.level, value, iv
            )
        return result

    def encrypt_to_level(
        self,
        column: ColumnMeta,
        onion: Onion,
        level: EncryptionScheme,
        value: Any,
        iv: Optional[bytes] = None,
    ) -> Any:
        """Encrypt a value for one onion up to (and including) ``level``."""
        if onion is Onion.EQ:
            return self._encrypt_eq(column, level, value, iv)
        if onion is Onion.ORD:
            return self._encrypt_ord(column, level, value, iv)
        if onion is Onion.ADD:
            return self.paillier.encrypt(self._to_hom_int(value, column))
        if onion is Onion.SEARCH:
            text = value if isinstance(value, str) else str(value)
            return self._search_for(column).encrypt(text).serialize()
        raise ProxyError(f"unknown onion {onion}")

    def _encrypt_eq(
        self,
        column: ColumnMeta,
        level: EncryptionScheme,
        value: Any,
        iv: Optional[bytes],
    ) -> bytes:
        plaintext = self._to_bytes(column, value)
        adj = self.joins.join_adj_for(column.table, column.name).hash_value(plaintext)
        det_component = self._det_join_for(column).encrypt_bytes(plaintext)
        join_ct = JoinCiphertext(adj, det_component).serialize()
        if level is EncryptionScheme.JOIN:
            return join_ct
        det_ct = self._det_for(column).encrypt_bytes(join_ct)
        if level is EncryptionScheme.DET:
            return det_ct
        if level is EncryptionScheme.RND:
            if iv is None:
                raise CryptoError("RND encryption requires an IV")
            return self._rnd_for(column, Onion.EQ).encrypt_bytes(det_ct, iv)
        raise ProxyError(f"invalid Eq onion level {level}")

    def _encrypt_ord(
        self,
        column: ColumnMeta,
        level: EncryptionScheme,
        value: Any,
        iv: Optional[bytes],
    ) -> int:
        ope_ct = self._ope_for(column).encrypt(self._to_ope_int(column, value))
        if level in (EncryptionScheme.OPE, EncryptionScheme.OPE_JOIN):
            return ope_ct
        if level is EncryptionScheme.RND:
            if iv is None:
                raise CryptoError("RND encryption requires an IV")
            return self._rnd_for(column, Onion.ORD).encrypt_int(ope_ct, iv)
        raise ProxyError(f"invalid Ord onion level {level}")

    # ------------------------------------------------------------------
    # Column-batch encryption (executemany / bulk-load path)
    # ------------------------------------------------------------------
    def _eq_deterministic_many(
        self, column: ColumnMeta, values: Sequence[Any], level: EncryptionScheme
    ) -> list:
        """The deterministic part of the Eq onion for a column of values.

        Returns JOIN-layer ciphertexts when ``level`` is JOIN, DET-layer
        ciphertexts otherwise (the RND layer, being probabilistic, is applied
        by the caller).  Each distinct plaintext is computed once; the memo
        persists across batches via the cache subsystem.
        """
        memo = self.cache.eq_encrypt_memo(column.table, column.name)
        counted = memo is not None  # the Proxy* ablation reports no activity
        local = memo if memo is not None else {}
        det_join = self._det_join_for(column)
        det = self._det_for(column)
        adj = self.joins.join_adj_for(column.table, column.name)
        want_join = level is EncryptionScheme.JOIN
        plaintexts = [self._to_bytes(column, value) for value in values]
        # JOIN-ADJ hashes for memo-missing plaintexts are computed as one
        # batch so the whole column shares a single curve-point inversion.
        # Dedup against a local set rather than reserving memo slots, so an
        # exception mid-batch cannot leave half-built entries in the shared
        # memo.
        missing: list[bytes] = []
        seen: set[bytes] = set()
        for plaintext in plaintexts:
            if plaintext not in local and plaintext not in seen:
                seen.add(plaintext)
                missing.append(plaintext)
        offloaded = False
        if missing:
            offloaded = self._eq_encrypt_parallel(
                column, missing, local, want_join, counted
            )
            if not offloaded:
                for plaintext, adj_hash in zip(missing, adj.hash_values(missing)):
                    # The DET layer is computed lazily: a JOIN-level column
                    # never needs it (matching the scalar path's early
                    # return), but the memo entry can be upgraded if the
                    # level is ever restored.
                    local[plaintext] = [
                        JoinCiphertext(
                            adj_hash, det_join.encrypt_bytes(plaintext)
                        ).serialize(),
                        None,
                    ]
        if counted:
            # An offloaded batch's missing values are counted by the workers
            # (as worker hits/misses); counting them here too would make
            # det_misses_total double-count every offloaded value.
            self.cache.det_hits += len(plaintexts) - len(missing)
            if not offloaded:
                self.cache.det_misses += len(missing)
        out = []
        for plaintext in plaintexts:
            entry = local[plaintext]
            if want_join:
                out.append(entry[0])
            else:
                if entry[1] is None:
                    entry[1] = det.encrypt_bytes(entry[0])
                out.append(entry[1])
        return out

    # ------------------------------------------------------------------
    # Worker-pool offload helpers
    # ------------------------------------------------------------------
    def _pool_usable(self, batch_size: int) -> bool:
        return self.pool is not None and self.pool.usable(batch_size)

    def _eq_encrypt_parallel(
        self,
        column: ColumnMeta,
        missing: list[bytes],
        local: dict,
        want_join: bool,
        counted: bool,
    ) -> bool:
        """Offload the deterministic Eq layers of ``missing`` to the pool.

        Fills ``local`` (the shared memo or the per-batch dict) exactly as
        the serial path would and returns True; returns False when the pool
        is absent, the batch is under the chunk threshold, or the pool
        infrastructure failed (the caller then runs the serial path).
        """
        if not self._pool_usable(len(missing)):
            return False
        table, name = column.table, column.name
        adj_scalar = self.joins.effective_scalar(table, name)
        adj_prf_key = self.joins.join_adj_for(table, name).prf_key
        det_join_key = self.joins.det_key(table, name)
        det_key = self.keys.key_for(table, name, Onion.EQ.value, "DET")
        try:
            entries = self.pool.scatter(
                missing,
                lambda chunk: EqEncryptJob(
                    table=table,
                    column=name,
                    adj_scalar=adj_scalar,
                    adj_prf_key=adj_prf_key,
                    det_join_key=det_join_key,
                    det_key=det_key,
                    want_det=not want_join,
                    use_memo=counted,
                    plaintexts=chunk,
                ),
            )
        except ParallelUnavailable:
            return False
        for plaintext, (join_ct, det_ct) in zip(missing, entries):
            local[plaintext] = [join_ct, det_ct]
        return True

    def _hom_encrypt_many(self, encoded: list[int]) -> list[int]:
        """Paillier-encrypt a dense (NULL-free) column, pool-aware.

        The serial path with a warm randomness pool is a couple of modular
        multiplications per value -- cheaper than any IPC -- so the batch is
        offloaded only when the pre-computed pool cannot cover it and the
        workers would genuinely absorb ``r^n`` exponentiations.
        """
        if (
            self._pool_usable(len(encoded))
            and self.paillier.randomness_pool_size < len(encoded)
        ):
            try:
                return self.pool.scatter(encoded, lambda chunk: HomEncryptJob(values=chunk))
            except ParallelUnavailable:
                pass
        return self.paillier.encrypt_many(encoded)

    def _eq_decrypt_parallel(
        self,
        column: ColumnMeta,
        level: EncryptionScheme,
        dense: list,
        dense_ivs: list,
        local: dict,
        counted: bool,
    ) -> Optional[list]:
        """Offload the Eq decrypt path for a (NULL-free) ciphertext column.

        Returns the decoded plaintext values, or None when the batch should
        run serially.  At the RND level every ciphertext is unique, so the
        whole column ships (the workers strip RND, then memoise on the DET
        bytes, and the parent memo is filled from the returned pairs -- the
        same keys the serial path uses).  At DET/JOIN level only parent-memo
        misses ship, deduplicated.
        """
        if self.pool is None:
            return None
        table, name = column.table, column.name
        det_key = self.keys.key_for(table, name, Onion.EQ.value, "DET")
        det_join_key = self.joins.det_key(table, name)
        if level is EncryptionScheme.RND:
            if not self._pool_usable(len(dense)):
                return None
            if any(iv is None for iv in dense_ivs):
                raise CryptoError("decrypting the RND layer requires the row IV")
            rnd_key = self._rnd_for(column, Onion.EQ).key
            try:
                pairs = self.pool.scatter(
                    list(zip(dense, dense_ivs)),
                    lambda chunk: EqDecryptJob(
                        table=table,
                        column=name,
                        det_key=det_key,
                        det_join_key=det_join_key,
                        strip_det=True,
                        use_memo=counted,
                        ciphertexts=[ct for ct, _ in chunk],
                        rnd_key=rnd_key,
                        ivs=[iv for _, iv in chunk],
                    ),
                )
            except ParallelUnavailable:
                return None
            plains = []
            for det_ct, plaintext in pairs:
                hit = local.get(det_ct)
                if hit is None:
                    hit = local[det_ct] = (self._from_bytes(column, plaintext),)
                plains.append(hit[0])
            return plains
        # DET/JOIN level: the parent memo already holds repeated ciphertexts.
        missing: list = []
        seen: set = set()
        for ciphertext in dense:
            if ciphertext not in local and ciphertext not in seen:
                seen.add(ciphertext)
                missing.append(ciphertext)
        if not missing or not self._pool_usable(len(missing)):
            return None
        try:
            pairs = self.pool.scatter(
                missing,
                lambda chunk: EqDecryptJob(
                    table=table,
                    column=name,
                    det_key=det_key,
                    det_join_key=det_join_key,
                    strip_det=level is EncryptionScheme.DET,
                    use_memo=counted,
                    ciphertexts=chunk,
                ),
            )
        except ParallelUnavailable:
            return None
        for det_ct, plaintext in pairs:
            local[det_ct] = (self._from_bytes(column, plaintext),)
        if counted:
            # Every occurrence not shipped to a worker was served from the
            # parent memo (including duplicates of just-filled entries); the
            # shipped ones are counted worker-side, so hits + misses across
            # both sides still sums to len(dense).
            self.cache.det_hits += len(dense) - len(missing)
        return [local[ciphertext][0] for ciphertext in dense]

    def encrypt_column_values(
        self, column: ColumnMeta, values: Sequence[Any]
    ) -> dict[str, list]:
        """Encrypt one application column of a row batch into its onion parts.

        The columnar equivalent of calling :meth:`encrypt_row_value` once per
        row: returns ``{anon_column_name: [cell, ...]}`` with one list entry
        per input value (NULLs stay NULL in every part).  Deterministic
        layers are deduplicated; RND and HOM randomness stays fresh per row.
        """
        result: dict[str, list] = {}
        if column.plaintext:
            return result
        count = len(values)
        non_null = [i for i, v in enumerate(values) if v is not None]
        ivs: list = [None] * count
        if column.iv_column:
            for i, iv in zip(non_null, RND.generate_ivs(len(non_null))):
                ivs[i] = iv
            result[column.iv_column] = ivs
        dense = [values[i] for i in non_null]
        for onion, state in column.onions.items():
            if onion is Onion.ADD and column.hom_packed:
                continue  # produced per group via encrypt_hom_group_many
            cells = self._encrypt_onion_column(
                column, onion, state.level, dense, [ivs[i] for i in non_null]
            )
            sparse: list = [None] * count
            for i, cell in zip(non_null, cells):
                sparse[i] = cell
            result[state.anon_name] = sparse
        return result

    def _encrypt_onion_column(
        self,
        column: ColumnMeta,
        onion: Onion,
        level: EncryptionScheme,
        values: Sequence[Any],
        ivs: Sequence[Optional[bytes]],
    ) -> list:
        """Encrypt a (NULL-free) column of values for one onion at ``level``."""
        if onion is Onion.EQ:
            dets = self._eq_deterministic_many(column, values, level)
            if level is EncryptionScheme.RND:
                if any(iv is None for iv in ivs):
                    raise CryptoError("RND encryption requires an IV")
                rnd = self._rnd_for(column, Onion.EQ)
                if self._pool_usable(len(dets)):
                    try:
                        return self.pool.scatter(
                            list(zip(dets, ivs)),
                            lambda chunk: RndEncryptJob(key=rnd.key, pairs=chunk),
                        )
                    except ParallelUnavailable:
                        pass
                return rnd.encrypt_bytes_many(dets, ivs)
            if level in (EncryptionScheme.DET, EncryptionScheme.JOIN):
                return dets
            raise ProxyError(f"invalid Eq onion level {level}")
        if onion is Onion.ORD:
            ope = self._ope_for(column)
            ope_cts = ope.encrypt_many([self._to_ope_int(column, v) for v in values])
            if level in (EncryptionScheme.OPE, EncryptionScheme.OPE_JOIN):
                return ope_cts
            if level is EncryptionScheme.RND:
                if any(iv is None for iv in ivs):
                    raise CryptoError("RND encryption requires an IV")
                return self._rnd_for(column, Onion.ORD).encrypt_int_many(ope_cts, ivs)
            raise ProxyError(f"invalid Ord onion level {level}")
        if onion is Onion.ADD:
            return self._hom_encrypt_many(
                [self._to_hom_int(v, column) for v in values]
            )
        if onion is Onion.SEARCH:
            texts = [v if isinstance(v, str) else str(v) for v in values]
            return [
                ct.serialize() for ct in self._search_for(column).encrypt_many(texts)
            ]
        raise ProxyError(f"unknown onion {onion}")

    def encrypt_constants_many(
        self,
        column: ColumnMeta,
        onion: Onion,
        level: EncryptionScheme,
        values: Sequence[Any],
    ) -> list:
        """Batch form of :meth:`encrypt_constant` (one constant per row)."""
        count = len(values)
        non_null = [i for i, v in enumerate(values) if v is not None]
        dense = [values[i] for i in non_null]
        if onion is Onion.EQ:
            if level not in (EncryptionScheme.DET, EncryptionScheme.JOIN):
                raise ProxyError("equality constants require the DET or JOIN layer")
            cells = self._eq_deterministic_many(column, dense, level)
        elif onion is Onion.ORD:
            cells = self._ope_for(column).encrypt_many(
                [self._to_ope_int(column, v) for v in dense]
            )
        elif onion is Onion.ADD:
            cells = self._hom_encrypt_many(
                [self._to_hom_int(v, column) for v in dense]
            )
        else:
            raise ProxyError(f"constants cannot be encrypted for onion {onion}")
        sparse: list = [None] * count
        for i, cell in zip(non_null, cells):
            sparse[i] = cell
        return sparse

    def hom_delta_many(self, column: ColumnMeta, deltas: Sequence[Any]) -> list:
        """Batch form of :meth:`hom_delta`."""
        if column.hom_packed:
            n = self.paillier.public.n
            return self._hom_encrypt_many(
                [
                    self.packing.encode_delta(
                        self._to_int(column, d), column.hom_slot, n
                    )
                    for d in deltas
                ]
            )
        return self._hom_encrypt_many(
            [self._to_hom_int(d, column) for d in deltas]
        )

    # ------------------------------------------------------------------
    # Packed HOM groups (§8.4): one ciphertext per row per group
    # ------------------------------------------------------------------
    def _require_packing(self) -> PackingConfig:
        if self.packing is None:
            raise CryptoError(
                "schema has packed HOM groups but the encryptor has no PackingConfig"
            )
        return self.packing

    def _encode_group_row(
        self, members: Sequence[ColumnMeta], values: Sequence[Any]
    ) -> int:
        config = self._require_packing()
        return config.encode_cell(
            [
                None if value is None else self._to_int(column, value)
                for column, value in zip(members, values)
            ]
        )

    def encrypt_hom_group(
        self, members: Sequence[ColumnMeta], values: Sequence[Any]
    ) -> int:
        """Encrypt one row's HOM-group members into a single packed cell.

        ``values`` is slot-ordered and may contain ``None`` (SQL NULL, stored
        as a count-0 slot); the whole group costs one Paillier exponentiation.
        """
        return self.paillier.encrypt(self._encode_group_row(members, values))

    def encrypt_hom_group_many(
        self, members: Sequence[ColumnMeta], rows: Sequence[Sequence[Any]]
    ) -> list[int]:
        """Batch form of :meth:`encrypt_hom_group` (one packed cell per row)."""
        return self._hom_encrypt_many(
            [self._encode_group_row(members, row) for row in rows]
        )

    def hom_group_rewrite(
        self,
        assignments: Sequence[tuple[ColumnMeta, Any]],
        old_ciphertext: int,
    ) -> int:
        """Overwrite some slots of a packed cell, preserving the others.

        The proxy-side half of an absolute ``SET member = v`` on a packed
        column (§3.3's SELECT-then-UPDATE strategy): decrypt the old cell,
        splice the reassigned slots in plaintext, re-encrypt with fresh
        randomness.  Slots not assigned -- including any pending homomorphic
        increments folded into them -- survive bit-exactly.
        """
        config = self._require_packing()
        plaintext = self.paillier.decrypt(old_ciphertext)
        width = config.slot_width
        for column, value in assignments:
            slot = column.hom_slot
            plaintext &= ~(((1 << width) - 1) << (slot * width))
            if value is not None:
                plaintext |= config.encode_cell(
                    [None] * slot + [self._to_int(column, value)]
                )
        return self.paillier.encrypt(plaintext)

    def decrypt_hom_avgs(self, column: ColumnMeta, ciphertexts: Sequence[Any]) -> list:
        """AVG results for a *packed* column: count comes from the slot.

        ``COUNT(shared_group_column)`` would count rows where *any* member is
        non-NULL, so packed AVG derives the divisor from the slot's count
        subfield instead of a separate COUNT item.
        """
        config = self._require_packing()
        out = []
        for ciphertext in ciphertexts:
            if ciphertext is None:
                out.append(None)
                continue
            count, total = self.paillier.decrypt_packed_sum(
                ciphertext, column.hom_slot, config
            )
            out.append(None if count == 0 else self._from_int(column, total) / count)
        return out

    # ------------------------------------------------------------------
    # Constant encryption (query rewrite path)
    # ------------------------------------------------------------------
    def encrypt_constant(
        self, column: ColumnMeta, onion: Onion, level: EncryptionScheme, value: Any
    ) -> Any:
        """Encrypt a query constant for comparison at the given onion level."""
        if value is None:
            return None
        if onion is Onion.EQ:
            if level not in (EncryptionScheme.DET, EncryptionScheme.JOIN):
                raise ProxyError("equality constants require the DET or JOIN layer")
            return self._encrypt_eq(column, level, value, None)
        if onion is Onion.ORD:
            return self._encrypt_ord(column, EncryptionScheme.OPE, value, None)
        if onion is Onion.ADD:
            return self.paillier.encrypt(self._to_hom_int(value, column))
        if onion is Onion.SEARCH:
            raise ProxyError("SEARCH constants are encrypted as tokens, not values")
        raise ProxyError(f"unknown onion {onion}")

    def search_token(self, column: ColumnMeta, word: str):
        """Produce the SEARCH token handed to the DBMS for a LIKE keyword."""
        return self._search_for(column).token(word)

    def hom_delta(self, column: ColumnMeta, delta: int) -> int:
        """Paillier encryption of an increment used by UPDATE ... SET c = c + k."""
        if column.hom_packed:
            return self.paillier.encrypt(
                self.packing.encode_delta(
                    self._to_int(column, delta),
                    column.hom_slot,
                    self.paillier.public.n,
                )
            )
        return self.paillier.encrypt(self._to_hom_int(delta, column))

    # ------------------------------------------------------------------
    # Decryption (result path)
    # ------------------------------------------------------------------
    def decrypt_value(
        self,
        column: ColumnMeta,
        onion: Onion,
        level: EncryptionScheme,
        ciphertext: Any,
        iv: Optional[bytes] = None,
    ) -> Any:
        """Decrypt a result-set value given the onion level it was read at."""
        if ciphertext is None:
            return None
        if onion is Onion.EQ:
            data = ciphertext
            if level is EncryptionScheme.RND:
                if iv is None:
                    raise CryptoError("decrypting the RND layer requires the row IV")
                data = self._rnd_for(column, Onion.EQ).decrypt_bytes(data, iv)
                level = EncryptionScheme.DET
            if level is EncryptionScheme.DET:
                data = self._det_for(column).decrypt_bytes(data)
                level = EncryptionScheme.JOIN
            join_ct = JoinCiphertext.deserialize(data)
            plaintext = self._det_join_for(column).decrypt_bytes(join_ct.det)
            return self._from_bytes(column, plaintext)
        if onion is Onion.ORD:
            value = ciphertext
            if level is EncryptionScheme.RND:
                if iv is None:
                    raise CryptoError("decrypting the RND layer requires the row IV")
                value = self._rnd_for(column, Onion.ORD).decrypt_int(value, iv)
            return self._from_ope_int(column, self._ope_for(column).decrypt(value))
        if onion is Onion.ADD:
            if column.hom_packed:
                cell = self._require_packing().decode_cell(
                    self.paillier.decrypt(ciphertext), column.hom_slot
                )
                return None if cell is None else self._from_int(column, cell)
            return self._from_hom_int(self.paillier.decrypt(ciphertext), column)
        if onion is Onion.SEARCH:
            raise ProxyError("SEARCH ciphertexts cannot be decrypted to plaintext")
        raise ProxyError(f"unknown onion {onion}")

    def decrypt_hom_sum(self, column: ColumnMeta, ciphertext: Any) -> Any:
        """Decrypt the result of the Paillier SUM aggregate UDF."""
        if ciphertext is None:
            return None
        if column.hom_packed:
            count, total = self.paillier.decrypt_packed_sum(
                ciphertext, column.hom_slot, self._require_packing()
            )
            # SUM over rows whose member is always NULL is NULL, even though
            # the shared packed cells themselves are never NULL (PR 4 rule).
            return None if count == 0 else self._from_int(column, total)
        return self._from_hom_int(self.paillier.decrypt(ciphertext), column)

    # ------------------------------------------------------------------
    # Column-batch decryption (bulk result path)
    # ------------------------------------------------------------------
    def decrypt_column(
        self,
        column: ColumnMeta,
        onion: Onion,
        level: EncryptionScheme,
        ciphertexts: Sequence[Any],
        ivs: Optional[Sequence[Optional[bytes]]] = None,
    ) -> list:
        """Decrypt one result column; the batch form of :meth:`decrypt_value`.

        The probabilistic RND layer is stripped per row; the remaining
        deterministic layers are decrypted once per distinct ciphertext
        through the cache subsystem's decrypt memos (always safe: decryption
        is a pure function of the ciphertext bytes).
        """
        count = len(ciphertexts)
        if ivs is None:
            ivs = [None] * count
        non_null = [i for i, ct in enumerate(ciphertexts) if ct is not None]
        dense = [ciphertexts[i] for i in non_null]
        dense_ivs = [ivs[i] for i in non_null]
        if onion is Onion.EQ:
            memo = self.cache.eq_decrypt_memo(column.table, column.name)
            counted = memo is not None
            local = memo if memo is not None else {}
            plains = self._eq_decrypt_parallel(
                column, level, dense, dense_ivs, local, counted
            )
            if plains is None:
                if level is EncryptionScheme.RND:
                    if any(iv is None for iv in dense_ivs):
                        raise CryptoError("decrypting the RND layer requires the row IV")
                    dense = self._rnd_for(column, Onion.EQ).decrypt_bytes_many(dense, dense_ivs)
                    level = EncryptionScheme.DET
                det = self._det_for(column)
                det_join = self._det_join_for(column)
                plains = []
                for data in dense:
                    hit = local.get(data)
                    if hit is None:
                        if counted:
                            self.cache.det_misses += 1
                        inner = det.decrypt_bytes(data) if level is EncryptionScheme.DET else data
                        join_ct = JoinCiphertext.deserialize(inner)
                        plaintext = det_join.decrypt_bytes(join_ct.det)
                        hit = local[data] = (self._from_bytes(column, plaintext),)
                    elif counted:
                        self.cache.det_hits += 1
                    plains.append(hit[0])
        elif onion is Onion.ORD:
            if level is EncryptionScheme.RND:
                if any(iv is None for iv in dense_ivs):
                    raise CryptoError("decrypting the RND layer requires the row IV")
                dense = self._rnd_for(column, Onion.ORD).decrypt_int_many(dense, dense_ivs)
            decrypted = self._ope_for(column).decrypt_many(dense)
            plains = [self._from_ope_int(column, v) for v in decrypted]
        elif onion is Onion.ADD:
            decrypted = None
            if self._pool_usable(len(dense)):
                try:
                    decrypted = self.pool.scatter(
                        dense, lambda chunk: HomDecryptJob(ciphertexts=chunk)
                    )
                except ParallelUnavailable:
                    decrypted = None
            if decrypted is None:
                decrypted = self.paillier.decrypt_many(dense)
            if column.hom_packed:
                config = self._require_packing()
                cells = [config.decode_cell(v, column.hom_slot) for v in decrypted]
                plains = [
                    None if cell is None else self._from_int(column, cell)
                    for cell in cells
                ]
            else:
                plains = [self._from_hom_int(v, column) for v in decrypted]
        elif onion is Onion.SEARCH:
            raise ProxyError("SEARCH ciphertexts cannot be decrypted to plaintext")
        else:
            raise ProxyError(f"unknown onion {onion}")
        sparse: list = [None] * count
        for i, value in zip(non_null, plains):
            sparse[i] = value
        return sparse

    def decrypt_hom_sums(self, column: ColumnMeta, ciphertexts: Sequence[Any]) -> list:
        """Batch form of :meth:`decrypt_hom_sum`."""
        if column.hom_packed:
            return [self.decrypt_hom_sum(column, ct) for ct in ciphertexts]
        return [
            None if ct is None else self._from_hom_int(self.paillier.decrypt(ct), column)
            for ct in ciphertexts
        ]

    # ------------------------------------------------------------------
    # Server-side layer keys (handed out during onion adjustment)
    # ------------------------------------------------------------------
    def layer_key(self, column: ColumnMeta, onion: Onion, layer: EncryptionScheme) -> bytes:
        """The key the proxy sends to the server to strip ``layer``."""
        return self.keys.key_for(column.table, column.name, onion.value, layer.value)

    @staticmethod
    def adj_prefix_size() -> int:
        """Size of the JOIN-ADJ component inside a JOIN ciphertext."""
        return ADJ_SIZE

"""Training mode (§3.5.1): replay a query trace and report onion levels.

A developer provides a representative trace of queries; CryptDB replays it,
adjusting onions exactly as it would at run time, and reports the resulting
encryption level of every column plus a warning for every query that cannot
be supported over encrypted data.  The developer can then add minimum-layer
constraints, move computation into the proxy, or pre-adjust onions before
deployment (the "known query set" optimisation of §3.5.2 used for the TPC-C
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.onion import ComputationClass, SecurityLevel
from repro.core.schema import ProxySchema


@dataclass
class ColumnReport:
    """Steady-state report for one column after training."""

    table: str
    column: str
    onion_levels: dict[str, str]
    min_enc: SecurityLevel
    computations: set[ComputationClass] = field(default_factory=set)
    needs_plaintext: bool = False

    @property
    def is_high(self) -> bool:
        """The HIGH security class of §8.3 (RND/HOM, or DET without repeats).

        Repeat analysis requires the data itself, so the static report treats
        DET as not-HIGH; the security analysis module refines this per
        dataset.
        """
        return self.min_enc >= SecurityLevel.SEARCH


@dataclass
class TrainingReport:
    """The outcome of a training run."""

    columns: list[ColumnReport] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    unsupported_queries: list[str] = field(default_factory=list)

    def column_report(self, table: str, column: str) -> ColumnReport:
        for report in self.columns:
            if report.table == table and report.column == column:
                return report
        raise KeyError(f"{table}.{column} not present in the training report")

    def columns_at_level(self, level: SecurityLevel) -> list[ColumnReport]:
        return [c for c in self.columns if c.min_enc == level]

    def summary(self) -> dict[str, int]:
        """Counts per MinEnc level, as used by the Figure 9 benchmark."""
        counts = {level.name: 0 for level in SecurityLevel}
        for report in self.columns:
            counts[report.min_enc.name] += 1
        return counts


def build_report(
    schema: ProxySchema,
    computations: dict[tuple[str, str], set[ComputationClass]],
    unsupported: list[str],
) -> TrainingReport:
    """Assemble a training report from the proxy's accumulated state."""
    report = TrainingReport(unsupported_queries=list(unsupported))
    for table_name in schema.table_names():
        table_meta = schema.table(table_name)
        for column_name in table_meta.column_names():
            column = table_meta.column(column_name)
            column_computations = computations.get((table_name, column_name), set())
            needs_plaintext = ComputationClass.PLAINTEXT in column_computations
            report.columns.append(
                ColumnReport(
                    table=table_name,
                    column=column_name,
                    onion_levels={
                        onion.value: state.level.value
                        for onion, state in column.onions.items()
                    },
                    min_enc=column.min_enc(),
                    computations=column_computations,
                    needs_plaintext=needs_plaintext,
                )
            )
            if needs_plaintext:
                report.warnings.append(
                    f"column {table_name}.{column_name} requires plaintext processing"
                )
    for query in unsupported:
        report.warnings.append(f"unsupported query: {query}")
    return report

"""The CryptDB proxy: encrypted query processing (sections 3 and 8 of the paper).

* :mod:`repro.core.onion` -- onions of encryption, layers, security levels.
* :mod:`repro.core.schema` -- plaintext-to-anonymised schema mapping and
  per-column onion state.
* :mod:`repro.core.encryptor` -- value encoding and layered onion encryption.
* :mod:`repro.core.udfs` -- the server-side UDFs CryptDB installs in the DBMS.
* :mod:`repro.core.rewriter` -- query analysis and rewriting onto onions.
* :mod:`repro.core.proxy` -- the database proxy tying everything together.
* :mod:`repro.core.strawman` -- the strawman baseline of Figure 11.
* :mod:`repro.core.training` -- training mode (section 3.5.1).
* :mod:`repro.core.cache` -- ciphertext pre-computation and caching (3.5.2).
"""

from repro.core.onion import ComputationClass, EncryptionScheme, Onion, SecurityLevel
from repro.core.proxy import CryptDBProxy
from repro.core.strawman import StrawmanProxy

__all__ = [
    "CryptDBProxy",
    "StrawmanProxy",
    "Onion",
    "EncryptionScheme",
    "ComputationClass",
    "SecurityLevel",
]

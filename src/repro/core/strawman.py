"""The strawman design used as a baseline in Figure 11.

The strawman encrypts every column with RND only and, for every query,
decrypts the relevant data on the DBMS server with a UDF, evaluates the query
over the resulting plaintext, and re-encrypts when writing.  Because the
stored ciphertexts are probabilistic, the DBMS's indexes are useless, and
every predicate turns into a per-row UDF decryption -- which is why the
strawman loses to CryptDB on essentially every query type despite offering
*less* security.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.schema import ProxySchema
from repro.crypto.keys import KeyManager, MasterKey
from repro.crypto.rnd import RND
from repro.errors import ProxyError, UnsupportedQueryError
from repro.sql import ast_nodes as ast
from repro.sql.engine import Database
from repro.sql.executor import ResultSet
from repro.sql.parser import parse_sql
from repro.sql.types import BLOB, ColumnDef

_DECRYPT = "STRAWMAN_DECRYPT"


class StrawmanProxy:
    """Encrypt-everything-with-RND baseline with server-side UDF decryption."""

    def __init__(self, db: Optional[Database] = None, master_key: Optional[MasterKey] = None):
        self.db = db if db is not None else Database()
        self.master_key = master_key if master_key is not None else MasterKey.generate()
        self.keys = KeyManager(self.master_key)
        self.schema = ProxySchema(anonymize_names=True)
        self._rnd_cache: dict[tuple[str, str], RND] = {}
        self.db.register_scalar_udf(_DECRYPT, self._udf_decrypt)

    # -- helpers -----------------------------------------------------------
    def _rnd_for(self, table: str, column: str) -> RND:
        key = (table, column)
        if key not in self._rnd_cache:
            self._rnd_cache[key] = RND(self.keys.key_for(table, column, "strawman", "RND"))
        return self._rnd_cache[key]

    @staticmethod
    def _udf_decrypt(key: Optional[bytes], ciphertext: Optional[bytes], iv: Optional[bytes]):
        if ciphertext is None:
            return None
        raw = RND(key).decrypt_bytes(ciphertext, iv)
        marker, payload = raw[:1], raw[1:]
        if marker == b"i":
            return int.from_bytes(payload, "big", signed=True)
        return payload.decode("utf-8")

    def _encode(self, value) -> bytes:
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int):
            return b"i" + value.to_bytes(16, "big", signed=True)
        return b"s" + str(value).encode("utf-8")

    # -- schema --------------------------------------------------------------
    def create_table(self, sql_or_statement: Union[str, ast.CreateTable]) -> None:
        statement = (
            parse_sql(sql_or_statement) if isinstance(sql_or_statement, str) else sql_or_statement
        )
        if not isinstance(statement, ast.CreateTable):
            raise ProxyError("create_table expects a CREATE TABLE statement")
        meta = self.schema.add_table(statement.table, statement.columns)
        columns: list[ColumnDef] = []
        for column_def in statement.columns:
            column = meta.column(column_def.name)
            columns.append(ColumnDef(f"C{column.index}_data", BLOB()))
            columns.append(ColumnDef(f"C{column.index}_IV", BLOB()))
        self.db.execute(ast.CreateTable(meta.anon_name, columns, statement.if_not_exists))

    # -- execution ---------------------------------------------------------------
    def execute(self, sql_or_statement: Union[str, ast.Statement]) -> ResultSet:
        statement = (
            parse_sql(sql_or_statement)
            if isinstance(sql_or_statement, str)
            else sql_or_statement
        )
        if isinstance(statement, ast.CreateTable):
            self.create_table(statement)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, (ast.Begin, ast.Commit, ast.Rollback)):
            return self.db.execute(statement)
        raise UnsupportedQueryError(
            f"strawman does not support {type(statement).__name__} statements"
        )

    def _column_exprs(self, table: str):
        """Server-side decryption expression for every column of a table."""
        meta = self.schema.table(table)
        expressions = {}
        for name in meta.column_names():
            column = meta.column(name)
            key = self.keys.key_for(table, name, "strawman", "RND")
            expressions[name] = ast.FunctionCall(
                _DECRYPT,
                [
                    ast.Literal(key),
                    ast.ColumnRef(f"C{column.index}_data"),
                    ast.ColumnRef(f"C{column.index}_IV"),
                ],
            )
        return expressions

    def _rewrite_expr(self, expr: ast.Expression, exprs) -> ast.Expression:
        if isinstance(expr, ast.ColumnRef):
            if expr.name not in exprs:
                raise ProxyError(f"unknown column {expr.name}")
            return exprs[expr.name]
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op, self._rewrite_expr(expr.left, exprs), self._rewrite_expr(expr.right, exprs)
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, self._rewrite_expr(expr.operand, exprs))
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(
                expr.name,
                [self._rewrite_expr(a, exprs) if not isinstance(a, ast.Star) else a for a in expr.args],
                expr.distinct,
            )
        if isinstance(expr, ast.InList):
            return ast.InList(self._rewrite_expr(expr.expr, exprs), expr.items, expr.negated)
        if isinstance(expr, ast.Between):
            return ast.Between(
                self._rewrite_expr(expr.expr, exprs), expr.low, expr.high, expr.negated
            )
        if isinstance(expr, ast.Like):
            return ast.Like(self._rewrite_expr(expr.expr, exprs), expr.pattern, expr.negated)
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(self._rewrite_expr(expr.expr, exprs), expr.negated)
        return expr

    def _execute_insert(self, statement: ast.Insert) -> ResultSet:
        meta = self.schema.table(statement.table)
        columns = statement.columns or meta.column_names()
        rows = []
        anon_columns: list[str] = []
        for row in statement.rows:
            values = {}
            for name, expr in zip(columns, row):
                if not isinstance(expr, ast.Literal):
                    raise UnsupportedQueryError("strawman INSERT values must be constants")
                column = meta.column(name)
                if expr.value is None:
                    values[f"C{column.index}_data"] = None
                    values[f"C{column.index}_IV"] = None
                else:
                    iv = RND.generate_iv()
                    rnd = self._rnd_for(statement.table, name)
                    values[f"C{column.index}_data"] = rnd.encrypt_bytes(self._encode(expr.value), iv)
                    values[f"C{column.index}_IV"] = iv
            if not anon_columns:
                anon_columns = list(values)
            rows.append([ast.Literal(values[c]) for c in anon_columns])
        return self.db.execute(ast.Insert(meta.anon_name, anon_columns, rows))

    def _execute_select(self, statement: ast.Select) -> ResultSet:
        if not isinstance(statement.from_clause, ast.TableRef):
            raise UnsupportedQueryError("strawman supports single-table SELECTs only")
        table = statement.from_clause.name
        meta = self.schema.table(table)
        exprs = self._column_exprs(table)

        items = []
        names = []
        for item in statement.items:
            if isinstance(item.expr, ast.Star):
                for name in meta.column_names():
                    items.append(ast.SelectItem(exprs[name], None))
                    names.append(name)
                continue
            label = item.alias or item.expr.to_sql()
            if isinstance(item.expr, ast.ColumnRef):
                label = item.alias or item.expr.name
            items.append(ast.SelectItem(self._rewrite_expr(item.expr, exprs), None))
            names.append(label)

        where = self._rewrite_expr(statement.where, exprs) if statement.where else None
        group_by = [self._rewrite_expr(g, exprs) for g in statement.group_by]
        order_by = [
            ast.OrderItem(self._rewrite_expr(o.expr, exprs), o.ascending)
            for o in statement.order_by
        ]
        rewritten = ast.Select(
            items=items,
            from_clause=ast.TableRef(meta.anon_name, statement.from_clause.alias),
            where=where,
            group_by=group_by,
            having=self._rewrite_expr(statement.having, exprs) if statement.having else None,
            order_by=order_by,
            limit=statement.limit,
            offset=statement.offset,
            distinct=statement.distinct,
        )
        result = self.db.execute(rewritten)
        return ResultSet(names, result.rows, result.rowcount)

    def _execute_update(self, statement: ast.Update) -> ResultSet:
        meta = self.schema.table(statement.table)
        exprs = self._column_exprs(statement.table)
        assignments = []
        for name, expr in statement.assignments:
            column = meta.column(name)
            if isinstance(expr, ast.Literal):
                iv = RND.generate_iv()
                rnd = self._rnd_for(statement.table, name)
                ciphertext = (
                    None if expr.value is None else rnd.encrypt_bytes(self._encode(expr.value), iv)
                )
                assignments.append((f"C{column.index}_data", ast.Literal(ciphertext)))
                assignments.append((f"C{column.index}_IV", ast.Literal(iv)))
            else:
                # Compute over the decrypted value server-side, then the proxy
                # must re-encrypt -- approximated by a read-modify-write.
                raise UnsupportedQueryError(
                    "strawman increments require a SELECT followed by an UPDATE"
                )
        where = self._rewrite_expr(statement.where, exprs) if statement.where else None
        return self.db.execute(ast.Update(meta.anon_name, assignments, where))

    def _execute_delete(self, statement: ast.Delete) -> ResultSet:
        meta = self.schema.table(statement.table)
        exprs = self._column_exprs(statement.table)
        where = self._rewrite_expr(statement.where, exprs) if statement.where else None
        return self.db.execute(ast.Delete(meta.anon_name, where))

"""Prepared statements and the rewrite-plan cache.

Rewriting dominates the proxy's per-query cost (§8.4, Figures 9-10): every
statement is parsed, analysed against the onion schema, anonymised, and its
constants onion-encrypted.  For parameterized queries that work is identical
across executions, so the proxy rewrites each *shape* once and keeps the
result as a :class:`PreparedStatement`:

* the cache key is the statement's normalized text (whitespace/keyword-case
  insensitive, literals re-escaped), computed with a single tokenizer pass;
* entries record the :class:`~repro.core.schema.ProxySchema` version they
  were rewritten under.  Any onion adjustment, JOIN-ADJ re-keying, CREATE or
  DROP bumps that version, so stale plans -- whose baked ciphertext levels no
  longer match the server's columns -- are discarded on the next lookup;
* executing a cached plan only *binds* parameters: each ``?`` value is
  encrypted for exactly the onion/layer recorded in its
  :class:`~repro.core.rewriter.ParamSlot` and written into the rewritten
  statement's literal nodes in place.

Plans whose rewritten text embeds fresh per-execution randomness (RND IVs of
literal INSERT/UPDATE values, literal HOM increment ciphertexts) are marked
non-cacheable by the rewriter and always re-rewritten.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core.encryptor import Encryptor
from repro.core.rewriter import RewritePlan
from repro.errors import ProxyError
from repro.sql import ast_nodes as ast

#: Statement kinds used for per-type statistics and cache bookkeeping.
_KIND_BY_TYPE = {
    ast.Select: "SELECT",
    ast.Insert: "INSERT",
    ast.Update: "UPDATE",
    ast.Delete: "DELETE",
    ast.CreateTable: "CREATE TABLE",
    ast.CreateIndex: "CREATE INDEX",
    ast.DropTable: "DROP TABLE",
    ast.Begin: "BEGIN",
    ast.Commit: "COMMIT",
    ast.Rollback: "ROLLBACK",
}


def statement_kind(statement: ast.Statement) -> str:
    return _KIND_BY_TYPE.get(type(statement), type(statement).__name__.upper())


@dataclass
class PreparedStatement:
    """One rewritten statement shape, executable many times with parameters."""

    statement: ast.Statement           # the original (application) statement
    plan: Optional[RewritePlan]        # None for DDL handled by the proxy itself
    param_count: int
    schema_version: int
    kind: str
    sql_key: Optional[str] = None      # normalized text; None when prepared from an AST

    @property
    def is_ddl(self) -> bool:
        return self.plan is None


def bind_parameters(
    plan: RewritePlan, params: Sequence[Any], encryptor: Encryptor
) -> None:
    """Encrypt bound values into the plan's literal slots, in place."""
    row_values: dict[int, dict[str, Any]] = {}
    for slot in plan.param_slots:
        value = params[slot.index]
        if slot.kind == "plain":
            slot.target.value = value
        elif slot.kind == "constant":
            slot.target.value = encryptor.encrypt_constant(
                slot.column, slot.onion, slot.level, value
            )
        elif slot.kind == "row_value":
            if slot.index not in row_values:
                row_values[slot.index] = encryptor.encrypt_row_value(slot.column, value)
            slot.target.value = row_values[slot.index].get(slot.part)
        elif slot.kind == "hom_delta":
            if not isinstance(value, (int, float)):
                raise ProxyError(
                    f"parameter {slot.index} feeds a homomorphic increment and "
                    f"must be numeric, got {type(value).__name__}"
                )
            slot.target.value = encryptor.hom_delta(slot.column, slot.sign * value)
        elif slot.kind == "hom_pack":
            slot.target.value = encryptor.encrypt_hom_group(
                [column for column, _, _ in slot.pack],
                [
                    params[index] if index is not None else literal
                    for _, index, literal in slot.pack
                ],
            )
        else:  # pragma: no cover - slots are only created with known kinds
            raise ProxyError(f"unknown parameter slot kind {slot.kind}")


def bind_parameters_batch(
    plan: RewritePlan, rows: Sequence[Sequence[Any]], encryptor: Encryptor
) -> list[list[Any]]:
    """Encrypt many parameter rows column-wise through the deferred slots.

    The batched equivalent of calling :func:`bind_parameters` once per row:
    for every :class:`~repro.core.rewriter.ParamSlot` the values of all rows
    are gathered into one column and encrypted in a single batch call, so
    the deterministic layers of repeated values are computed once.  Returns
    one list per row, aligned with ``plan.param_slots``; the caller writes
    each row's values into the slot targets just before executing it.
    """
    slots = plan.param_slots
    slot_columns: list[list[Any]] = []
    row_value_parts: dict[int, dict[str, list]] = {}
    for slot in slots:
        values = [row[slot.index] for row in rows]
        if slot.kind == "plain":
            slot_columns.append(values)
        elif slot.kind == "constant":
            slot_columns.append(
                encryptor.encrypt_constants_many(
                    slot.column, slot.onion, slot.level, values
                )
            )
        elif slot.kind == "row_value":
            parts = row_value_parts.get(slot.index)
            if parts is None:
                parts = row_value_parts[slot.index] = encryptor.encrypt_column_values(
                    slot.column, values
                )
            slot_columns.append(parts.get(slot.part) or [None] * len(rows))
        elif slot.kind == "hom_delta":
            for index, value in enumerate(values):
                if not isinstance(value, (int, float)):
                    raise ProxyError(
                        f"parameter {slot.index} feeds a homomorphic increment and "
                        f"must be numeric, got {type(value).__name__} (row {index})"
                    )
            slot_columns.append(
                encryptor.hom_delta_many(slot.column, [slot.sign * v for v in values])
            )
        elif slot.kind == "hom_pack":
            slot_columns.append(
                encryptor.encrypt_hom_group_many(
                    [column for column, _, _ in slot.pack],
                    [
                        [
                            row[index] if index is not None else literal
                            for _, index, literal in slot.pack
                        ]
                        for row in rows
                    ],
                )
            )
        else:  # pragma: no cover - slots are only created with known kinds
            raise ProxyError(f"unknown parameter slot kind {slot.kind}")
    return [
        [column[row_index] for column in slot_columns]
        for row_index in range(len(rows))
    ]


class PlanCache:
    """LRU cache of :class:`PreparedStatement` keyed on normalized SQL text."""

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: OrderedDict[str, PreparedStatement] = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str, schema_version: int, stats) -> Optional[PreparedStatement]:
        """A valid cached plan, or None (counting the hit/miss/invalidation)."""
        entry = self._entries.get(key)
        if entry is not None and entry.schema_version != schema_version:
            del self._entries[key]
            stats.plan_cache_invalidations += 1
            entry = None
        if entry is None:
            stats.plan_cache_misses += 1
            return None
        self._entries.move_to_end(key)
        stats.plan_cache_hits += 1
        return entry

    def put(self, prepared: PreparedStatement) -> None:
        if not self.enabled or prepared.sql_key is None:
            return
        self._entries[prepared.sql_key] = prepared
        self._entries.move_to_end(prepared.sql_key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

"""Adjustable-join management: transitivity groups and key adjustments (§3.4).

Every column starts with its own JOIN-ADJ key, so no two columns are
joinable.  When the application issues an equi-join between two columns, the
proxy picks the join-base (the lexicographically first column of the
transitivity group), computes the key delta for the other column, and asks
the DBMS server -- via a UDF UPDATE -- to re-scale that column's JOIN-ADJ
values.  The manager tracks group membership so repeated joins require no
further adjustment, and counts adjustments for the ablation benchmark
(the paper bounds them by n(n-1)/2 for n columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import join_adj
from repro.crypto.prf import derive_key


ColumnId = tuple[str, str]


@dataclass
class JoinAdjustment:
    """One server-side JOIN-ADJ re-keying operation."""

    table: str
    column: str
    delta: int


@dataclass
class JoinManager:
    """Tracks per-column JOIN keys and transitivity groups."""

    master: bytes
    _scalars: dict[ColumnId, int] = field(default_factory=dict)
    _initial_scalars: dict[ColumnId, int] = field(default_factory=dict)
    _group_base: dict[ColumnId, ColumnId] = field(default_factory=dict)
    adjustments_performed: int = 0

    # -- key material -------------------------------------------------------
    def register_column(self, table: str, column: str) -> None:
        """Assign the column its initial (unique) JOIN-ADJ scalar key."""
        column_id = (table, column)
        if column_id in self._scalars:
            return
        scalar = join_adj.derive_scalar(self.master, table, column)
        self._scalars[column_id] = scalar
        self._initial_scalars[column_id] = scalar
        self._group_base[column_id] = column_id

    def effective_scalar(self, table: str, column: str) -> int:
        """The JOIN-ADJ scalar currently in effect for the column's stored data."""
        return self._scalars[(table, column)]

    def join_adj_for(self, table: str, column: str) -> join_adj.JoinAdj:
        """A JoinAdj object reflecting the column's *current* effective key."""
        prf_key = derive_key(self.master, "join-adj-prf", length=32)
        return join_adj.JoinAdj(self.effective_scalar(table, column), prf_key)

    def det_key(self, table: str, column: str) -> bytes:
        """Key of the DET component inside the JOIN layer."""
        return derive_key(self.master, "join-det", table, column, length=16)

    # -- transitivity groups ---------------------------------------------------
    def base_of(self, table: str, column: str) -> ColumnId:
        """Resolve the join-base of the column's transitivity group."""
        column_id = (table, column)
        base = self._group_base[column_id]
        while self._group_base[base] != base:
            base = self._group_base[base]
        self._group_base[column_id] = base
        return base

    def joinable(self, left: ColumnId, right: ColumnId) -> bool:
        """True when the two columns already share a JOIN-ADJ key."""
        return self.base_of(*left) == self.base_of(*right)

    def ensure_joinable(self, left: ColumnId, right: ColumnId) -> list[JoinAdjustment]:
        """Make two columns joinable, returning the server adjustments needed.

        The join-base is the lexicographically first column of the merged
        group (§3.4), and every column of the group whose effective key does
        not already match the base is re-keyed.
        """
        for column_id in (left, right):
            if column_id not in self._scalars:
                self.register_column(*column_id)
        base_left = self.base_of(*left)
        base_right = self.base_of(*right)
        if base_left == base_right:
            return []
        members = [
            column_id for column_id in self._scalars
            if self.base_of(*column_id) in (base_left, base_right)
        ]
        new_base = min(base_left, base_right)
        base_scalar = self._scalars[new_base]
        adjustments = []
        for column_id in members:
            self._group_base[column_id] = new_base
            current = self._scalars[column_id]
            if current != base_scalar:
                delta = base_scalar * join_adj.modinv(current, join_adj.ecc.ORDER) % join_adj.ecc.ORDER
                adjustments.append(JoinAdjustment(column_id[0], column_id[1], delta))
                self._scalars[column_id] = base_scalar
        self.adjustments_performed += len(adjustments)
        return adjustments

    # -- transaction support ----------------------------------------------------
    def snapshot(self) -> tuple[dict, dict]:
        """Capture the effective scalars and group structure for later restore."""
        return dict(self._scalars), dict(self._group_base)

    def restore(self, snapshot: tuple[dict, dict]) -> bool:
        """Rewind join keys to a snapshot (after a transaction rollback).

        Server-side JOIN-ADJ re-key UPDATEs issued inside a rolled-back
        transaction are reverted with it, so the manager's view of each
        column's effective key must rewind too.  Columns registered since the
        snapshot (CREATE TABLE inside the transaction) fall back to their
        initial, un-adjusted keys.  Returns True when anything changed.
        """
        scalars, group_base = snapshot
        changed = False
        for column_id in self._scalars:
            if column_id in scalars:
                target_scalar = scalars[column_id]
                target_base = group_base[column_id]
            else:
                target_scalar = self._initial_scalars[column_id]
                target_base = column_id
            if (
                self._scalars[column_id] != target_scalar
                or self._group_base[column_id] != target_base
            ):
                self._scalars[column_id] = target_scalar
                self._group_base[column_id] = target_base
                changed = True
        return changed

    # -- durable catalog support -------------------------------------------------
    def restore_group(self, column_id: ColumnId, base: ColumnId) -> None:
        """Recovery: re-attach a column to its logged transitivity-group base.

        The durable catalog stores only the public (column -> base)
        structure, never scalars.  A member's effective scalar is always its
        base's *initial* scalar -- ``ensure_joinable`` only merges groups
        onto a base whose own key was never re-scaled -- so the structure
        alone rebuilds every effective key from the master key.
        """
        self.register_column(*column_id)
        self.register_column(*base)
        self._group_base[column_id] = base
        self._scalars[column_id] = self._initial_scalars[base]

    def group_members(self, table: str, column: str) -> list[ColumnId]:
        """All columns currently sharing a JOIN-ADJ key with the given column."""
        base = self.base_of(table, column)
        return sorted(c for c in self._scalars if self.base_of(*c) == base)

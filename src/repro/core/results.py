"""Result-set decryption: step 4 of CryptDB's query processing.

The DBMS returns encrypted rows; the proxy walks the rewrite plan's output
specifications, decrypts each value with the corresponding onion keys
(requesting the per-row IV columns the rewriter appended when the Eq onion
was still at RND), recombines AVG from its SUM and COUNT components, applies
any in-proxy ordering, and returns plaintext rows under the application's
original column names.
"""

from __future__ import annotations

from typing import Any

from repro.core.encryptor import Encryptor
from repro.core.rewriter import OutputSpec, RewritePlan
from repro.sql.executor import ResultSet


def decrypt_results(
    plan: RewritePlan, server_result: ResultSet, encryptor: Encryptor
) -> ResultSet:
    """Decrypt a server result set according to the rewrite plan."""
    if not plan.output:
        return ResultSet([], [], server_result.rowcount)

    columns = [spec.name for spec in plan.output]
    rows: list[tuple] = []
    for server_row in server_result.rows:
        row = tuple(_decrypt_cell(spec, server_row, encryptor) for spec in plan.output)
        rows.append(row)

    if plan.proxy_order:
        rows = _proxy_sort(rows, plan.proxy_order)

    return ResultSet(columns, rows, len(rows))


def _decrypt_cell(spec: OutputSpec, server_row: tuple, encryptor: Encryptor) -> Any:
    value = server_row[spec.source_index]
    if spec.kind == "plain":
        return value
    if spec.kind == "column":
        iv = server_row[spec.iv_index] if spec.iv_index is not None else None
        return encryptor.decrypt_value(spec.column, spec.onion, spec.level, value, iv)
    if spec.kind == "hom_sum":
        return encryptor.decrypt_hom_sum(spec.column, value)
    if spec.kind == "avg":
        total = encryptor.decrypt_hom_sum(spec.column, value)
        count = server_row[spec.extra_index]
        if not count:
            return None
        return total / count
    if spec.kind == "ope_agg":
        return encryptor.decrypt_value(spec.column, spec.onion, spec.level, value, None)
    raise ValueError(f"unknown output spec kind {spec.kind}")


def _proxy_sort(rows: list[tuple], order: list[tuple[int, bool]]) -> list[tuple]:
    """In-proxy ORDER BY (§3.5.1), applied after decryption."""
    ordered = list(rows)
    # Apply sort keys from the least significant to the most significant.
    for index, ascending in reversed(order):
        ordered.sort(
            key=lambda row: (row[index] is None, row[index]),
            reverse=not ascending,
        )
    return ordered
